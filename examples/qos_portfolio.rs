//! The portfolio translation under the microscope: how one bursty
//! application's demand is split across the two classes of service as the
//! pool's resource access probability θ varies (the Fig. 3 mechanics).
//!
//! Run with: `cargo run --release -p ropus --example qos_portfolio`

use ropus::prelude::*;
use ropus_obs::ObsCtx;
use ropus_qos::portfolio::{breakpoint, normalized_max_allocation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One bursty app from the case-study fleet.
    let fleet = case_study_fleet(&FleetConfig {
        apps: 3,
        weeks: 2,
        ..FleetConfig::paper()
    });
    let app = &fleet[2];
    let band = UtilizationBand::new(0.5, 0.66)?;
    let qos = AppQos::new(band, Some(DegradationSpec::new(0.03, 0.9, Some(30))?));

    println!(
        "application: {} (D_max = {:.2} CPUs)",
        app.name,
        app.trace.peak()
    );
    println!("QoS: band (0.5, 0.66), M_degr 3%, U_degr 0.9, T_degr 30 min\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "θ", "breakpoint", "norm. A_max", "D_new_max", "CoS1 peak", "CoS2 peak", "degraded%"
    );
    for theta in [0.5, 0.6, 0.7, 0.76, 0.8, 0.9, 0.95, 1.0] {
        let cos2 = CosSpec::new(theta, 60)?;
        let translation = translate(&app.trace, &qos, &cos2, ObsCtx::none())?;
        let r = &translation.report;
        println!(
            "{theta:>5.2} {:>12.3} {:>12.3} {:>12.2} {:>12.2} {:>12.2} {:>9.2}%",
            breakpoint(band, &cos2),
            normalized_max_allocation(band, &cos2),
            r.d_new_max,
            translation.cos1.peak(),
            translation.cos2.peak(),
            100.0 * r.degraded_fraction,
        );
    }
    println!("\nHigher θ: smaller guaranteed share (breakpoint), smaller maximum");
    println!("allocation under the 30-minute degradation limit — exactly the");
    println!("trends of Fig. 3 in the paper.");
    Ok(())
}
