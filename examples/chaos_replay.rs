//! Fault-injection replay: what does a server outage *feel like*?
//!
//! The static planner (§VII) asks whether the survivors could absorb a
//! failure. This example replays an actual outage over the demand traces:
//! a mid-week failure takes a server down for three hours, the displaced
//! applications are re-placed onto the survivors under failure-mode QoS,
//! unserved demand is carried over within the CoS2 deadline, and the
//! report measures compliance, migrations, shed demand, and
//! time-to-recover.
//!
//! Run with: `cargo run --release -p ropus --example chaos_replay`

use ropus::prelude::*;

fn main() -> Result<(), FrameworkError> {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 16,
        weeks: 1,
        ..FleetConfig::paper()
    });
    let policy = QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    };
    let framework = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60)?))
        .options(ConsolidationOptions::fast(11))
        .failure_scope(FailureScope::AllApplications)
        .build();
    let apps: Vec<AppSpec> = fleet
        .into_iter()
        .map(|app| AppSpec::new(app.name, app.trace, policy))
        .collect();

    let placement = framework.plan_normal_only(&apps)?;
    println!(
        "normal mode: {} apps on {} servers",
        apps.len(),
        placement.servers_used
    );

    // Scripted scenario: the busiest server dies Wednesday afternoon for
    // three hours (36 five-minute slots).
    let horizon = apps[0].demand().len();
    let victim = placement.servers[0].server;
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: victim,
        start: horizon / 2,
        duration: 36,
    }])?;

    let report =
        framework.chaos_replay_on(&apps, &placement, &schedule, DegradationPolicy::default())?;

    println!(
        "outage: server {victim} down for {} slots ({} degraded slots total)",
        36, report.degraded_slots
    );
    for w in &report.windows {
        println!(
            "window [{}, {}): failed {:?}, {} displaced, {} migrations, {:.2} CPU·slots shed, recovery {}",
            w.start,
            w.end,
            w.failed,
            w.displaced,
            w.migrations,
            w.shed,
            match w.recovery_slots {
                Some(r) => format!("{r} slot(s)"),
                None => "not reached".to_string(),
            }
        );
    }

    println!(
        "\n{:<10} {:>9} {:>9} {:>7} {:>6} {:>8} {:>8}",
        "app", "demand", "served", "late", "shed", "migr", "degrOK"
    );
    for a in &report.apps {
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>7.1} {:>6.1} {:>8} {:>8}",
            a.name,
            a.demand_total,
            a.served_total(),
            a.served_late,
            a.shed,
            a.migrations,
            if a.degraded_compliant() { "yes" } else { "NO" }
        );
    }

    println!(
        "\nfleet: {:.1}% of demand shed, {} migrations, degraded compliance: {}",
        100.0 * report.shed_fraction(),
        report.migrations_total,
        if report.all_degraded_compliant() {
            "every app within failure-mode QoS"
        } else {
            "VIOLATED"
        }
    );
    Ok(())
}
