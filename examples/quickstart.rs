//! Quickstart: plan capacity for a small fleet end to end.
//!
//! Run with: `cargo run --release -p ropus --example quickstart`

use ropus::prelude::*;

fn main() -> Result<(), FrameworkError> {
    // 1. Demand traces. In production these come from monitoring; here we
    //    synthesize two weeks for a handful of enterprise-style apps.
    let fleet = case_study_fleet(&FleetConfig {
        apps: 8,
        weeks: 2,
        ..FleetConfig::paper()
    });

    // 2. Application QoS: the paper's running example. Normal mode allows
    //    3% of measurements to degrade (to at most U = 0.9) for no longer
    //    than 30 minutes at a time; failure mode drops the time limit so
    //    the fleet can squeeze onto fewer servers while a repair is under
    //    way.
    let policy = QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    };

    // 3. Pool commitments: CoS2 offers capacity with probability 0.95 and
    //    a 60-minute deadline for carried-over demand.
    let commitments = PoolCommitments::new(CosSpec::new(0.95, 60)?);

    // 4. Plan.
    let framework = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(commitments)
        .options(ConsolidationOptions::fast(42))
        .build();
    let apps: Vec<AppSpec> = fleet
        .into_iter()
        .map(|app| AppSpec::new(app.name, app.trace, policy))
        .collect();
    let plan = framework.plan(&apps)?;

    println!("== R-Opus capacity plan ==");
    println!("applications:          {}", plan.apps.len());
    println!("normal-mode servers:   {}", plan.normal_servers());
    println!(
        "C_requ (sum, CPUs):    {:.1}",
        plan.normal_placement.required_capacity_total
    );
    println!(
        "C_peak (sum, CPUs):    {:.1}",
        plan.normal_placement.peak_allocation_total
    );
    println!(
        "sharing savings:       {:.1}%",
        100.0 * plan.normal_placement.sharing_savings()
    );
    println!("spare server needed:   {}", plan.spare_needed());
    println!("servers to provision:  {}", plan.servers_to_provision());
    println!();
    println!("per-application translation (normal mode):");
    println!(
        "{:<10} {:>8} {:>12} {:>14}",
        "app", "D_max", "D_new_max", "cap reduction"
    );
    for app in &plan.apps {
        println!(
            "{:<10} {:>8.2} {:>12.2} {:>13.1}%",
            app.name,
            app.normal.d_max,
            app.normal.d_new_max,
            100.0 * app.normal.max_cap_reduction
        );
    }
    Ok(())
}
