//! Consolidation deep-dive: run one Table-I case on the 26-app fleet and
//! compare the genetic search against the greedy baselines.
//!
//! Run with: `cargo run --release -p ropus --example consolidation`

use ropus::case_study::{translate_fleet, CaseConfig};
use ropus::prelude::*;
use ropus_obs::ObsCtx;
use ropus_placement::greedy::{place, servers_used, GreedyStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = case_study_fleet(&FleetConfig {
        weeks: 2,
        ..FleetConfig::paper()
    });
    // Case 2: M_degr = 3%, θ = 0.6, T_degr = 30 min.
    let case = CaseConfig::table1()[1];
    println!(
        "case {}: M_degr = {:.0}%, θ = {}, T_degr = {:?}",
        case.id,
        case.m_degr * 100.0,
        case.theta,
        case.t_degr
    );

    let translated = translate_fleet(&fleet, &case)?;
    let workloads: Vec<Workload> = translated.iter().map(|t| t.workload.clone()).collect();

    // Greedy baselines: how many servers does each packing rule need?
    println!("\n-- greedy baselines --");
    for strategy in GreedyStrategy::ALL {
        let evaluator = FitEngine::new(
            &workloads,
            ServerSpec::sixteen_way(),
            case.commitments(),
            0.1,
        );
        let assignment = place(&evaluator, strategy)?;
        let n = servers_used(&assignment);
        let (score, _) = evaluator.evaluate(&assignment, n);
        println!("{strategy:?}: {n} servers, score {score:.3}");
    }

    // The R-Opus genetic search.
    println!("\n-- genetic search --");
    let consolidator = Consolidator::new(
        ServerSpec::sixteen_way(),
        case.commitments(),
        ConsolidationOptions::thorough(7),
    );
    let report = consolidator.consolidate(&workloads, ObsCtx::none())?;
    println!("servers used:      {}", report.servers_used);
    println!("score:             {:.3}", report.score);
    println!(
        "C_requ:            {:.1} CPUs",
        report.required_capacity_total
    );
    println!(
        "C_peak:            {:.1} CPUs",
        report.peak_allocation_total
    );
    println!(
        "sharing savings:   {:.1}%",
        100.0 * report.sharing_savings()
    );
    println!(
        "engine:            {} evaluations, {:.1}% cache hit rate",
        report.stats.evaluations,
        100.0 * report.stats.hit_rate()
    );
    println!("\nper-server packing:");
    for sp in &report.servers {
        let names: Vec<&str> = sp.workloads.iter().map(|&i| workloads[i].name()).collect();
        println!(
            "  server {:>2}: required {:>5.1} CPUs (U = {:.2})  [{}]",
            sp.server,
            sp.required_capacity,
            sp.utilization,
            names.join(", ")
        );
    }
    Ok(())
}
