//! Failure planning: decide whether the pool needs a spare server.
//!
//! Mirrors the paper's §VII conclusion: with normal-mode QoS (case 4,
//! strict) the fleet needs N servers; if the application owners accept the
//! weaker failure-mode QoS (case 6: 3% degradation allowed) during a
//! repair window, any single failure can be absorbed by the surviving
//! N − 1 servers — so no spare is required.
//!
//! Run with: `cargo run --release -p ropus --example failure_planning`

use ropus::case_study::CaseConfig;
use ropus::prelude::*;

fn main() -> Result<(), FrameworkError> {
    let fleet = case_study_fleet(&FleetConfig::paper());
    // Normal mode: strict QoS (case 4). Failure mode: relaxed (case 6).
    let normal_case = CaseConfig::table1()[3];
    let failure_case = CaseConfig::table1()[5];
    let policy = QosPolicy {
        normal: normal_case.app_qos(),
        failure: failure_case.app_qos(),
    };

    let framework = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(normal_case.commitments())
        .options(ConsolidationOptions::thorough(11))
        // The paper's §VII argument: during a repair window *every*
        // application runs under its failure-mode QoS.
        .failure_scope(FailureScope::AllApplications)
        .build();
    let apps: Vec<AppSpec> = fleet
        .into_iter()
        .map(|app| AppSpec::new(app.name, app.trace, policy))
        .collect();
    let plan = framework.plan(&apps)?;

    println!("normal-mode servers: {}", plan.normal_servers());
    println!("single-failure sweep:");
    for case in &plan.failure_analysis.cases {
        match &case.placement {
            Some(p) => println!(
                "  server {:>2} fails -> {} affected app(s) re-placed on {} survivors (C_requ {:.1})",
                case.failed_server,
                case.affected.len(),
                p.servers_used,
                p.required_capacity_total
            ),
            None => println!(
                "  server {:>2} fails -> {} affected app(s) CANNOT be re-placed",
                case.failed_server,
                case.affected.len()
            ),
        }
    }
    if plan.spare_needed() {
        println!(
            "\nverdict: a spare server IS needed ({} total)",
            plan.servers_to_provision()
        );
    } else {
        println!(
            "\nverdict: no spare needed — failure-mode QoS lets {} servers absorb any single failure",
            plan.normal_servers() - 1
        );
    }
    Ok(())
}
