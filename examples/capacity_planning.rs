//! Long-term capacity planning (Fig. 1's leftmost timescale): estimate
//! demand growth from trace history, then forecast when the pool runs out
//! of servers so procurement can start in time.
//!
//! Run with: `cargo run --release -p ropus --example capacity_planning`

use ropus::planning::estimate_weekly_growth;
use ropus::prelude::*;

fn main() -> Result<(), FrameworkError> {
    // Four weeks of history for a small fleet, with 5% organic growth per
    // week layered on top of the synthetic traces.
    let base = case_study_fleet(&FleetConfig {
        apps: 8,
        weeks: 4,
        ..FleetConfig::paper()
    });
    let weekly = base[0].trace.calendar().slots_per_week();
    let grown: Vec<AppSpec> = base
        .into_iter()
        .map(|app| {
            let samples: Vec<f64> = app
                .trace
                .iter()
                .enumerate()
                .map(|(i, v)| v * 1.05f64.powi((i / weekly) as i32))
                .collect();
            let trace = Trace::from_samples(app.trace.calendar(), samples)
                .expect("scaling keeps samples valid");
            AppSpec::new(
                app.name,
                trace,
                QosPolicy::uniform(AppQos::paper_default(Some(30))),
            )
        })
        .collect();

    // 1. Estimate growth from the history itself.
    let growths: Vec<f64> = grown
        .iter()
        .map(|app| estimate_weekly_growth(app.demand()))
        .collect();
    let mean_growth = growths.iter().sum::<f64>() / growths.len() as f64;
    println!("estimated weekly demand growth per app:");
    for (app, g) in grown.iter().zip(&growths) {
        println!("  {:<10} {:.2}% / week", app.name(), (g - 1.0) * 100.0);
    }
    println!(
        "fleet mean: {:.2}% / week (injected: 5%)",
        (mean_growth - 1.0) * 100.0
    );

    // 2. Forecast server needs over the next 24 weeks.
    let framework = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60)?))
        .options(ConsolidationOptions::fast(17))
        .build();
    let forecast = framework.forecast(&grown, mean_growth, 24, 4)?;

    println!(
        "\n{:>12} {:>8} {:>10} {:>10}",
        "weeks ahead", "scale", "servers", "C_requ"
    );
    for entry in &forecast.entries {
        match (entry.servers, entry.required_capacity) {
            (Some(s), Some(c)) => {
                println!(
                    "{:>12} {:>8.2} {:>10} {:>10.1}",
                    entry.weeks_ahead, entry.scale, s, c
                )
            }
            _ => println!(
                "{:>12} {:>8.2} {:>10} {:>10}",
                entry.weeks_ahead, entry.scale, "UNPLACEABLE", "-"
            ),
        }
    }

    let today = forecast.entries[0]
        .servers
        .expect("current fleet is placeable");
    match forecast.exhaustion_week(today) {
        Some(week) => println!(
            "\nthe current {today}-server pool is exhausted in ~{week} weeks — start procurement"
        ),
        None => println!("\nthe current {today}-server pool lasts the whole horizon"),
    }
    Ok(())
}
