//! Integration tests of the placement engine's concurrency and caching
//! guarantees: parallel runs must be bit-identical to serial runs under a
//! fixed seed, and cached fit evaluations must agree with uncached ones.

use ropus::case_study::translate_fleet;
use ropus::case_study::CaseConfig;
use ropus::prelude::*;
use ropus_obs::ObsCtx;
use ropus_placement::simulator::{AggregateLoad, FitOptions, FitRequest};

fn translated_fleet() -> Vec<Workload> {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 12,
        weeks: 2,
        ..FleetConfig::paper()
    });
    translate_fleet(&fleet, &CaseConfig::table1()[2])
        .unwrap()
        .into_iter()
        .map(|t| t.workload)
        .collect()
}

fn consolidate_with(threads: usize, cache_capacity: usize) -> PlacementReport {
    let workloads = translated_fleet();
    let consolidator = Consolidator::new(
        ServerSpec::sixteen_way(),
        CaseConfig::table1()[2].commitments(),
        ConsolidationOptions::fast(7)
            .with_threads(threads)
            .with_cache_capacity(cache_capacity),
    );
    consolidator
        .consolidate(&workloads, ObsCtx::none())
        .unwrap()
}

#[test]
fn parallel_consolidation_is_bit_identical_to_serial() {
    let serial = consolidate_with(1, 0);
    let parallel = consolidate_with(4, 0);
    // PlacementReport equality covers assignment, scores, and per-server
    // capacities bitwise; only the (timing-dependent) stats are excluded.
    assert_eq!(serial, parallel);
    assert_eq!(serial.assignment, parallel.assignment);
    assert_eq!(
        serial.required_capacity_total.to_bits(),
        parallel.required_capacity_total.to_bits()
    );
    assert_eq!(serial.score.to_bits(), parallel.score.to_bits());
    assert_eq!(serial.stats.threads, 1);
    assert_eq!(parallel.stats.threads, 4);
}

#[test]
fn bounded_cache_does_not_change_the_placement() {
    let unbounded = consolidate_with(1, 0);
    let bounded = consolidate_with(1, 16);
    assert_eq!(unbounded, bounded);
    // A 16-entry cache on a 12-app search must evict, so it performs at
    // least as many uncached evaluations as the unbounded run.
    assert!(bounded.stats.cache_misses >= unbounded.stats.cache_misses);
}

#[test]
fn report_carries_engine_statistics() {
    let report = consolidate_with(2, 0);
    let stats = report.stats;
    assert!(stats.evaluations > 0);
    assert_eq!(stats.evaluations, stats.cache_hits + stats.cache_misses);
    assert!(stats.cache_hits > 0, "the GA must revisit member sets");
    assert!(stats.generations > 0);
    assert!(stats.total_wall_ms > 0.0);
    assert!(stats.mean_generation_wall_ms <= stats.total_wall_ms);
    assert!((0.0..=1.0).contains(&stats.hit_rate()));
}

#[test]
fn parallel_plan_matches_serial_plan() {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 8,
        weeks: 2,
        ..FleetConfig::paper()
    });
    let policy = QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    };
    let apps: Vec<AppSpec> = fleet
        .into_iter()
        .map(|w| AppSpec::new(w.name, w.trace, policy))
        .collect();
    let build = |threads: usize| {
        Framework::builder()
            .server(ServerSpec::sixteen_way())
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(3))
            .threads(threads)
            .build()
            .plan(&apps)
            .unwrap()
    };
    let serial = build(1);
    let parallel = build(4);
    assert_eq!(serial.normal_placement, parallel.normal_placement);
    assert_eq!(
        serial.failure_analysis.cases.len(),
        parallel.failure_analysis.cases.len()
    );
    for (a, b) in serial
        .failure_analysis
        .cases
        .iter()
        .zip(&parallel.failure_analysis.cases)
    {
        assert_eq!(a.failed_server, b.failed_server);
        assert_eq!(a.affected, b.affected);
        assert_eq!(a.placement, b.placement);
    }
    assert_eq!(serial.spare_needed(), parallel.spare_needed());
}

#[test]
fn concurrent_cache_hammer_agrees_with_serial_oracle() {
    // Two threads hammer one shared engine with overlapping member-set
    // queries — racing cache insertions, admission control (the tiny
    // capacity forces compute-without-insert paths), and hits against
    // in-flight misses. Every answer must still be bit-identical to an
    // independent serial evaluation of the same set.
    let workloads = translated_fleet();
    let commitments = CaseConfig::table1()[2].commitments();
    let engine = FitEngine::new(&workloads, ServerSpec::sixteen_way(), commitments, 0.05)
        .with_cache_capacity(8);

    let n = workloads.len() as u16;
    let mut queries: Vec<Vec<u16>> = Vec::new();
    for i in 0..n {
        queries.push(vec![i]);
        queries.push(vec![i, (i + 1) % n]);
        queries.push(vec![i, (i + 3) % n, (i + 7) % n]);
        // Permuted duplicate of the pair above: must share a cache entry.
        queries.push(vec![(i + 1) % n, i]);
    }

    // Serial oracle: fresh uncached evaluation per query.
    let oracle: Vec<Option<f64>> = queries
        .iter()
        .map(|members| {
            let mut sorted = members.clone();
            sorted.sort_unstable();
            let refs: Vec<&Workload> = sorted.iter().map(|&i| &workloads[i as usize]).collect();
            let load = AggregateLoad::of(&refs).unwrap();
            FitRequest::new(&load, &engine.commitments())
                .with_options(
                    FitOptions::new()
                        .with_memory_capacity(engine.server().memory_gb())
                        .with_tolerance(0.05),
                )
                .required_capacity(engine.server().capacity())
        })
        .collect();

    let rounds = 4;
    let results: Vec<Vec<Option<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let queries = &queries;
                let engine = &engine;
                // Opposite iteration orders maximize same-key collisions.
                scope.spawn(move || {
                    let mut answers = vec![None; queries.len()];
                    for _ in 0..rounds {
                        for index in 0..queries.len() {
                            let q = if t == 0 {
                                index
                            } else {
                                queries.len() - 1 - index
                            };
                            answers[q] = engine.server_required(&queries[q]);
                        }
                    }
                    answers
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for answers in &results {
        for (got, want) in answers.iter().zip(&oracle) {
            assert_eq!(
                got.map(f64::to_bits),
                want.map(f64::to_bits),
                "hammered result diverged from the serial oracle"
            );
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.evaluations, stats.cache_hits + stats.cache_misses);
    assert!(
        stats.cache_hits > 0,
        "repeated and permuted queries must hit the cache"
    );
}

mod cached_matches_uncached {
    use super::*;
    use proptest::prelude::*;

    fn hourly() -> Calendar {
        Calendar::new(60).unwrap()
    }

    fn fleet_from(sizes: &[f64]) -> Vec<Workload> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(hourly(), 0.0, 168).unwrap(),
                    Trace::constant(hourly(), s, 168).unwrap(),
                )
                .unwrap()
            })
            .collect()
    }

    proptest! {
        #[test]
        fn engine_cache_agrees_with_direct_fit_requests(
            sizes in proptest::collection::vec(0.5f64..9.0, 2..7),
            queries in proptest::collection::vec(
                proptest::collection::vec(0usize..6, 1..5),
                1..12,
            ),
        ) {
            let workloads = fleet_from(&sizes);
            let commitments = PoolCommitments::new(CosSpec::new(0.9, 60).unwrap());
            let engine = FitEngine::new(
                &workloads,
                ServerSpec::sixteen_way(),
                commitments,
                0.05,
            );
            for query in &queries {
                let members: Vec<u16> = query
                    .iter()
                    .map(|&i| (i % workloads.len()) as u16)
                    .collect();
                // First call computes, second call answers from cache.
                let first = engine.server_required(&members);
                let cached = engine.server_required(&members);
                prop_assert_eq!(first, cached);
                // Both agree with an uncached direct evaluation.
                let mut sorted = members.clone();
                sorted.sort_unstable();
                let refs: Vec<&Workload> =
                    sorted.iter().map(|&i| &workloads[i as usize]).collect();
                let load = AggregateLoad::of(&refs).unwrap();
                let direct = FitRequest::new(&load, &engine.commitments())
                    .with_options(
                        FitOptions::new()
                            .with_memory_capacity(engine.server().memory_gb())
                            .with_tolerance(0.05),
                    )
                    .required_capacity(engine.server().capacity());
                prop_assert_eq!(first, direct);
            }
            let stats = engine.stats();
            prop_assert_eq!(stats.evaluations, stats.cache_hits + stats.cache_misses);
            prop_assert!(stats.cache_hits >= queries.len() as u64);
        }
    }
}
