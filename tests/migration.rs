//! Migration state-machine contracts at the framework boundary:
//! paced chaos replays are byte-identical across runs and `--threads`
//! settings, the zero-cost configuration reproduces the historical
//! teleport replay bit for bit, and a session rollback restores the
//! source server's aggregate load exactly.
//!
//! Uses an hourly calendar (168 slots/week) so generated traces stay
//! small while still exercising the weekly machinery.

use proptest::prelude::*;

use ropus::prelude::*;
use ropus_placement::session::EngineSession;
use ropus_placement::workload::Workload;

fn hourly() -> Calendar {
    Calendar::new(60).unwrap()
}

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(60)),
        failure: AppQos::paper_default(None),
    }
}

fn framework(seed: u64, threads: usize) -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 120).unwrap()))
        .options(ConsolidationOptions::fast(seed).with_threads(threads))
        .failure_scope(FailureScope::AllApplications)
        .build()
}

/// A small fleet of phase-shifted daily-bursting hourly demands.
fn fleet(n: usize) -> Vec<AppSpec> {
    let calendar = hourly();
    let slots = calendar.slots_per_week();
    (0..n)
        .map(|i| {
            let samples: Vec<f64> = (0..slots)
                .map(|t| {
                    let tod = (t + i * 7) % 24;
                    let base = 1.0 + 0.3 * i as f64;
                    if (8..16).contains(&tod) {
                        base + 2.5
                    } else {
                        base + 0.4
                    }
                })
                .collect();
            AppSpec::new(
                format!("app-{i}"),
                Trace::from_samples(calendar, samples).unwrap(),
                policy(),
            )
        })
        .collect()
}

/// Fails the first placed server for two days starting day one.
fn outage_for(placement: &PlacementReport) -> FailureSchedule {
    FailureSchedule::scripted(vec![FailureEvent {
        server: placement.servers[0].server,
        start: 24,
        duration: 48,
    }])
    .unwrap()
}

/// One full plan + paced chaos replay, serialized.
fn paced_run(seed: u64, threads: usize, config: MigrationConfig) -> String {
    let apps = fleet(6);
    let fw = framework(seed, threads);
    let placement = fw.plan_normal_only(&apps).unwrap();
    let schedule = outage_for(&placement);
    let report = fw
        .chaos_replay_on_with(
            &apps,
            &placement,
            &schedule,
            DegradationPolicy::default(),
            Some(config),
        )
        .unwrap();
    serde_json::to_string(&report).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite 3a: a paced migration replay is a pure function of its
    /// inputs — byte-identical across repeated runs and thread counts.
    #[test]
    fn paced_replay_is_byte_identical_across_runs_and_threads(
        seed in 0u64..100,
        drain in 0usize..3,
        transfer in 0usize..2,
        health in 0usize..3,
        cap in proptest::option::of(1usize..3),
    ) {
        let mut config = MigrationConfig {
            drain_slots: drain,
            transfer_slots: transfer,
            health_slots: health,
            ..MigrationConfig::paced()
        };
        if let Some(cap) = cap {
            config = config.with_max_in_flight(cap);
        }
        let first = paced_run(seed, 1, config);
        let again = paced_run(seed, 1, config);
        prop_assert_eq!(&first, &again, "same inputs must replay identically");
        let parallel = paced_run(seed, 4, config);
        prop_assert_eq!(&first, &parallel, "replay must not depend on --threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite 3b: the zero-cost configuration is not merely similar
    /// to the historical teleport replay — stripped of the attached
    /// migration report, the `ChaosReport` is byte-for-byte identical.
    #[test]
    fn zero_cost_config_reproduces_teleport_byte_for_byte(seed in 0u64..100) {
        let apps = fleet(6);
        let fw = framework(seed, 1);
        let placement = fw.plan_normal_only(&apps).unwrap();
        let schedule = outage_for(&placement);
        let legacy = fw
            .chaos_replay_on(&apps, &placement, &schedule, DegradationPolicy::default())
            .unwrap();
        let mut teleport = fw
            .chaos_replay_on_with(
                &apps,
                &placement,
                &schedule,
                DegradationPolicy::default(),
                Some(MigrationConfig::teleport()),
            )
            .unwrap();
        let machine = teleport.migration.take().expect("machine path attaches a report");
        prop_assert!(machine.rolled_back == 0 && machine.failed == 0);
        prop_assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&teleport).unwrap(),
            "teleport config must reproduce the legacy replay bit for bit"
        );
    }
}

fn wl(name: &str, cos1: f64, cos2: f64) -> Workload {
    Workload::new(
        name,
        Trace::constant(hourly(), cos1, hourly().slots_per_week()).unwrap(),
        Trace::constant(hourly(), cos2, hourly().slots_per_week()).unwrap(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite 3c: beginning a migration double-books the destination,
    /// and rolling it back restores both servers' aggregate loads to the
    /// exact bits they held before the move started.
    #[test]
    fn rollback_restores_aggregate_loads_bit_exactly(
        demands in proptest::collection::vec((0.2f64..2.5, 0.1f64..1.5), 2..8),
        mover in 0usize..8,
    ) {
        let mut session = EngineSession::new(
            ServerSpec::sixteen_way(),
            PoolCommitments::new(CosSpec::new(0.9, 120).unwrap()),
        );
        let mut ids = Vec::new();
        for (i, &(cos1, cos2)) in demands.iter().enumerate() {
            let (id, _) = session
                .admit(wl(&format!("w-{i}"), cos1, cos2), i % 2)
                .unwrap();
            ids.push(id);
        }
        let id = ids[mover % ids.len()];
        let src = session.assignment_of(id).unwrap();
        let dst = 1 - src;
        let before_src = session.server_required(src).map(f64::to_bits);
        let before_dst = session.server_required(dst).map(f64::to_bits);

        session.begin_migration(id, dst).unwrap();
        // Mid-flight, the destination carries the reservation.
        prop_assert_eq!(session.migrating_to(id), Some(dst));
        prop_assert!(session.server_reserved(dst).contains(&id));
        let booked_dst = session.server_required(dst);
        if let (Some(b), Some(a)) = (before_dst.map(f64::from_bits), booked_dst) {
            prop_assert!(a >= b - 1e-12, "reservation must not shrink the load");
        }

        session.rollback_migration(id).unwrap();
        prop_assert_eq!(session.migrating_to(id), None);
        prop_assert_eq!(session.assignment_of(id), Some(src));
        prop_assert_eq!(
            session.server_required(src).map(f64::to_bits),
            before_src,
            "source load must be restored bit-exactly"
        );
        prop_assert_eq!(
            session.server_required(dst).map(f64::to_bits),
            before_dst,
            "destination load must be restored bit-exactly"
        );
    }
}
