//! The PR-5 `*_observed` twins survive one release as deprecated shims.
//!
//! Each shim must forward to its unified entry point (which now takes an
//! `ObsCtx` or a `PlanRequest`) and produce identical results — callers
//! migrating gradually must not see behaviour change.
#![allow(deprecated)]

use ropus::prelude::*;
use ropus_trace::gen::{case_study_fleet, FleetConfig};

fn apps(n: usize) -> Vec<AppSpec> {
    let policy = QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    };
    case_study_fleet(&FleetConfig {
        apps: n,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|a| AppSpec::new(a.name, a.trace, policy))
    .collect()
}

fn framework(seed: u64) -> Framework {
    Framework::builder()
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
        .options(ConsolidationOptions::fast(seed))
        .build()
}

#[test]
fn translate_observed_shim_matches_unified_translate() {
    let cal = Calendar::five_minute();
    let demand = Trace::constant(cal, 2.0, cal.slots_per_week()).unwrap();
    let qos = AppQos::paper_default(Some(30));
    let cos2 = CosSpec::new(0.9, 60).unwrap();
    let obs = Obs::deterministic();
    let shim = ropus_qos::translation::translate_observed(&demand, &qos, &cos2, &obs).unwrap();
    let unified = translate(&demand, &qos, &cos2, ObsCtx::none()).unwrap();
    assert_eq!(shim.report, unified.report);
}

#[test]
fn consolidate_observed_shim_matches_unified_consolidate() {
    let fleet = apps(4);
    let fw = framework(3);
    let (_, normal, _) = fw.translate_fleet(&fleet).unwrap();
    let consolidator = Consolidator::new(fw.server(), fw.commitments(), fw.options());
    let obs = Obs::deterministic();
    let shim = consolidator.consolidate_observed(&normal, &obs).unwrap();
    let unified = consolidator.consolidate(&normal, ObsCtx::none()).unwrap();
    assert_eq!(shim, unified);
}

#[test]
fn run_observed_shim_matches_unified_run() {
    let cal = Calendar::five_minute();
    let demand = Trace::constant(cal, 2.0, 50).unwrap();
    let qos = AppQos::paper_default(None);
    let cos2 = CosSpec::new(0.9, 60).unwrap();
    let t = translate(&demand, &qos, &cos2, ObsCtx::none()).unwrap();
    let policy = ropus_wlm::manager::WlmPolicy::from_translation(&qos, &t.report);
    let hosted = vec![ropus_wlm::host::HostedWorkload::new("app", demand, policy)];
    let host = ropus_wlm::host::Host::new(16.0).unwrap();
    let obs = Obs::deterministic();
    let shim = host.run_observed(&hosted, &obs).unwrap();
    let unified = host.run(&hosted, ObsCtx::none()).unwrap();
    assert_eq!(shim, unified);
}

#[test]
fn framework_observed_shims_match_plan_request_entry_points() {
    let fleet = apps(3);
    let fw = framework(5);
    let obs = Obs::deterministic();

    let shim_plan = fw.plan_observed(&fleet, &obs).unwrap();
    let unified_plan = fw.plan(&fleet).unwrap();
    assert_eq!(shim_plan.normal_placement, unified_plan.normal_placement);
    assert_eq!(shim_plan.apps, unified_plan.apps);

    let shim_placement = fw.plan_normal_only_observed(&fleet, &obs).unwrap();
    let unified_placement = fw.plan_normal_only(&fleet).unwrap();
    assert_eq!(shim_placement, unified_placement);

    let shim_runtime = fw
        .validate_runtime_observed(&fleet, &shim_plan, &obs)
        .unwrap();
    let unified_runtime = fw.validate_runtime(&fleet, &unified_plan).unwrap();
    assert_eq!(shim_runtime, unified_runtime);
}

#[test]
fn replay_observed_shim_matches_unified_replay() {
    let fleet = apps(3);
    let fw = framework(7);
    let placement = fw.plan_normal_only(&fleet).unwrap();
    let chaos_apps = fw.chaos_fleet(&fleet).unwrap();
    let consolidator = Consolidator::new(fw.server(), fw.commitments(), fw.options());
    let horizon = fleet[0].demand().len();
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: placement.servers[0].server,
        start: horizon / 4,
        duration: 12,
    }])
    .unwrap();
    let options = ropus_chaos::ReplayOptions::default();
    let obs = Obs::deterministic();
    let shim = ropus_chaos::replay_observed(
        &consolidator,
        &placement,
        &chaos_apps,
        &schedule,
        &options,
        &obs,
    )
    .unwrap();
    let unified = ropus_chaos::replay(
        &consolidator,
        &placement,
        &chaos_apps,
        &schedule,
        &options,
        ObsCtx::none(),
    )
    .unwrap();
    assert_eq!(shim, unified);
}
