//! The serve-mode contracts: incremental delta re-fits are bit-identical
//! to cold full re-plans (across thread counts), aggregate loads
//! round-trip removal exactly, and the daemon protocol is deterministic.
//!
//! Uses an hourly calendar (168 slots/week) so generated traces stay
//! small while still exercising the weekly machinery.

use proptest::prelude::*;

use ropus::daemon::{protocol::DemandSpec, Daemon, DaemonConfig};
use ropus::prelude::*;
use ropus_placement::session::EngineSession;
use ropus_placement::simulator::{AggregateLoad, FitOptions, FitRequest};
use ropus_placement::workload::Workload;

fn hourly() -> Calendar {
    Calendar::new(60).unwrap()
}

fn commitments() -> PoolCommitments {
    PoolCommitments::new(CosSpec::new(0.9, 120).unwrap())
}

fn wl(name: &str, cos1: f64, cos2: f64) -> Workload {
    Workload::new(
        name,
        Trace::constant(hourly(), cos1, hourly().slots_per_week()).unwrap(),
        Trace::constant(hourly(), cos2, hourly().slots_per_week()).unwrap(),
    )
    .unwrap()
}

/// One step of a random session history.
#[derive(Debug, Clone)]
enum Op {
    /// Admit workload `name_ix` (if not live) onto `server`.
    Admit {
        name_ix: usize,
        server: usize,
        cos1: f64,
        cos2: f64,
    },
    /// Depart workload `name_ix` (if live).
    Depart { name_ix: usize },
    /// Move workload `name_ix` (if live) to `server`.
    Reassign { name_ix: usize, server: usize },
    /// Recompute stale servers mid-history (a serve `tick`).
    Refresh,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // kind weights: 0-3 admit, 4-5 depart, 6-7 reassign, 8 refresh.
    (
        (0usize..9, 0usize..8),
        (0usize..4, 0.0f64..2.0, 0.1f64..3.0),
    )
        .prop_map(|((kind, name_ix), (server, cos1, cos2))| match kind {
            0..=3 => Op::Admit {
                name_ix,
                server,
                cos1,
                cos2,
            },
            4 | 5 => Op::Depart { name_ix },
            6 | 7 => Op::Reassign { name_ix, server },
            _ => Op::Refresh,
        })
}

/// Replays one op history against a fresh session.
fn replay(ops: &[Op], threads: usize) -> EngineSession {
    let mut session =
        EngineSession::new(ServerSpec::sixteen_way(), commitments()).with_threads(threads);
    for op in ops {
        match op {
            Op::Admit {
                name_ix,
                server,
                cos1,
                cos2,
            } => {
                let name = format!("app-{name_ix}");
                if session.find(&name).is_none() {
                    session.admit(wl(&name, *cos1, *cos2), *server).unwrap();
                }
            }
            Op::Depart { name_ix } => {
                if let Some(id) = session.find(&format!("app-{name_ix}")) {
                    session.depart(id).unwrap();
                }
            }
            Op::Reassign { name_ix, server } => {
                if let Some(id) = session.find(&format!("app-{name_ix}")) {
                    session.reassign(id, *server).unwrap();
                }
            }
            Op::Refresh => {
                session.refresh();
            }
        }
    }
    session
}

/// Rebuilds the session's final state cold, via the bulk-assignment path.
fn cold_replan(session: &EngineSession, threads: usize) -> EngineSession {
    let live = session.live_ids();
    let workloads: Vec<Workload> = live
        .iter()
        .map(|&id| session.workload(id).unwrap().clone())
        .collect();
    let assignment: Vec<usize> = live
        .iter()
        .map(|&id| session.assignment_of(id).unwrap())
        .collect();
    EngineSession::new(ServerSpec::sixteen_way(), commitments())
        .with_threads(threads)
        .with_assignment(&workloads, &assignment)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole determinism contract: any admit/depart/reassign/tick
    /// history produces a plan byte-identical to a cold full re-plan of
    /// the final state, on 1 worker thread and on 4.
    #[test]
    fn session_delta_history_matches_cold_replan(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut incremental = replay(&ops, 1);
        if !incremental.is_empty() {
            let reference = incremental.report().unwrap();
            let reference_json = serde_json::to_string(&reference).unwrap();
            // Same history on 4 threads, and cold rebuilds on both counts.
            let mut variants = vec![replay(&ops, 4)];
            variants.push(cold_replan(&incremental, 1));
            variants.push(cold_replan(&incremental, 4));
            for mut variant in variants {
                let report = variant.report().unwrap();
                prop_assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    reference_json.clone(),
                    "plan must be a pure function of the final state"
                );
            }
        }
    }

    /// The constant-trace history above keeps every slot equal; this
    /// variant feeds arbitrary *varying* weekly traces through the same
    /// incremental columnar path, so the per-slot SumTree adds and
    /// subtracts real data and must still match a cold re-plan bitwise.
    #[test]
    fn varying_trace_history_matches_cold_replan(
        admits in proptest::collection::vec(
            (
                0usize..6,
                0usize..4,
                proptest::collection::vec(0.0f64..2.0, 168),
                proptest::collection::vec(0.01f64..4.0, 168),
            ),
            1..8,
        ),
        departs in proptest::collection::vec(0usize..6, 0..6),
    ) {
        let mut session =
            EngineSession::new(ServerSpec::sixteen_way(), commitments()).with_threads(1);
        for (name_ix, server, cos1, cos2) in &admits {
            let name = format!("vt-{name_ix}");
            if session.find(&name).is_none() {
                let w = Workload::new(
                    name,
                    Trace::from_samples(hourly(), cos1.clone()).unwrap(),
                    Trace::from_samples(hourly(), cos2.clone()).unwrap(),
                )
                .unwrap();
                session.admit(w, *server).unwrap();
            }
        }
        for name_ix in &departs {
            if let Some(id) = session.find(&format!("vt-{name_ix}")) {
                session.depart(id).unwrap();
            }
        }
        if !session.is_empty() {
            let reference = serde_json::to_string(&session.report().unwrap()).unwrap();
            for threads in [1, 4] {
                let mut cold = cold_replan(&session, threads);
                prop_assert_eq!(
                    serde_json::to_string(&cold.report().unwrap()).unwrap(),
                    reference.clone(),
                    "varying-trace plan diverged from cold re-plan at {} threads",
                    threads
                );
            }
        }
    }

    /// Satellite 3: removing a member and re-adding it leaves the
    /// aggregate bit-identical to a cold build — no subtraction residue.
    #[test]
    fn aggregate_remove_then_readd_round_trips(
        levels in proptest::collection::vec((0.0f64..3.0, 0.01f64..4.0), 2..6),
        victim in 0usize..6,
    ) {
        let workloads: Vec<Workload> = levels
            .iter()
            .enumerate()
            .map(|(i, &(c1, c2))| wl(&format!("w-{i}"), c1, c2))
            .collect();
        let refs: Vec<&Workload> = workloads.iter().collect();
        let cold = AggregateLoad::of(&refs).unwrap();
        let victim = &workloads[victim % workloads.len()];
        let mut roundtrip = cold.clone();
        let removed = roundtrip.remove(victim.name()).unwrap();
        prop_assert_eq!(removed.name(), victim.name());
        roundtrip.add(&removed).unwrap();
        prop_assert_eq!(&roundtrip, &cold);
        prop_assert_eq!(roundtrip.total_peak().to_bits(), cold.total_peak().to_bits());
        prop_assert_eq!(
            roundtrip.cos1_peak_sum().to_bits(),
            cold.cos1_peak_sum().to_bits()
        );
        // The fit decision downstream of the aggregate is unchanged too.
        let required = |load: &AggregateLoad| {
            FitRequest::new(load, &commitments())
                .with_options(FitOptions::new().with_tolerance(0.05))
                .required_capacity(16.0)
        };
        prop_assert_eq!(
            required(&roundtrip).map(f64::to_bits),
            required(&cold).map(f64::to_bits)
        );
    }
}

/// Drives one command script through a daemon and returns the response
/// lines.
fn run_script(script: &str, threads: usize) -> Vec<String> {
    let config = DaemonConfig {
        threads,
        weeks: 1,
        ..DaemonConfig::new(
            ServerSpec::sixteen_way(),
            commitments(),
            AppQos::paper_default(None),
            hourly(),
        )
    };
    let mut daemon = Daemon::new(config);
    let mut out = Vec::new();
    daemon
        .run(script.as_bytes(), &mut out, ropus_obs::ObsCtx::none())
        .unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn daemon_scripts_replay_byte_identically_across_threads() {
    let script = r#"{"cmd":"admit","name":"web","level":3.0}
{"cmd":"admit","name":"db","level":5.0}
{"cmd":"tick"}
{"cmd":"admit","name":"batch","level":4.0}
{"cmd":"depart","name":"web"}
{"cmd":"tick","slots":2}
{"cmd":"admit","name":"cache","level":2.0}
{"cmd":"tick"}
{"cmd":"snapshot"}
{"cmd":"shutdown"}
"#;
    let serial = run_script(script, 1);
    let parallel = run_script(script, 4);
    assert_eq!(
        serial, parallel,
        "thread count must never change a response"
    );
    assert!(serial.last().unwrap().contains("\"stats\""));
}

#[test]
fn daemon_snapshot_matches_cold_session_of_same_assignment() {
    let config = DaemonConfig::new(
        ServerSpec::sixteen_way(),
        commitments(),
        AppQos::paper_default(None),
        hourly(),
    );
    let mut daemon = Daemon::new(config);
    for (name, level) in [("a", 3.0), ("b", 5.0), ("c", 4.0), ("d", 2.0)] {
        let r = daemon.admit(name, &DemandSpec::Level(level), ropus_obs::ObsCtx::none());
        assert_eq!(r.decision.as_deref(), Some("accepted"), "{name}");
    }
    daemon.depart("b", ropus_obs::ObsCtx::none());
    daemon.tick(1, ropus_obs::ObsCtx::none());
    let snapshot = daemon.snapshot();
    let live_plan = snapshot.plan.expect("live plan");

    let session = daemon.session_mut();
    let live = session.live_ids();
    let workloads: Vec<Workload> = live
        .iter()
        .map(|&id| session.workload(id).unwrap().clone())
        .collect();
    let assignment: Vec<usize> = live
        .iter()
        .map(|&id| session.assignment_of(id).unwrap())
        .collect();
    let mut cold = EngineSession::new(ServerSpec::sixteen_way(), commitments())
        .with_assignment(&workloads, &assignment)
        .unwrap();
    let cold_plan = cold.report().unwrap();
    assert_eq!(
        serde_json::to_string(&live_plan).unwrap(),
        serde_json::to_string(&cold_plan).unwrap(),
        "the daemon's live plan is exactly a cold re-plan of its state"
    );
}

/// Like [`run_script`], but with a deterministic collector attached so
/// subscribe telemetry (including `watch.stream.delta` lines) flows.
fn run_script_observed(script: &str, threads: usize) -> Vec<String> {
    let config = DaemonConfig {
        threads,
        weeks: 1,
        ..DaemonConfig::new(
            ServerSpec::sixteen_way(),
            commitments(),
            AppQos::paper_default(None),
            hourly(),
        )
    };
    let mut daemon = Daemon::new(config);
    let obs = ropus_obs::Obs::deterministic();
    let mut out = Vec::new();
    daemon
        .run(script.as_bytes(), &mut out, ropus_obs::ObsCtx::from(&obs))
        .unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn subscribe_stream_is_byte_identical_across_runs_and_threads() {
    let script = r#"{"cmd":"admit","name":"web","level":3.0}
{"cmd":"subscribe"}
{"cmd":"admit","name":"db","level":5.0}
{"cmd":"tick","slots":3}
{"cmd":"admit","name":"batch","level":4.0}
{"cmd":"depart","name":"web"}
{"cmd":"tick","slots":2}
{"cmd":"snapshot"}
{"cmd":"shutdown"}
"#;
    let first = run_script_observed(script, 1);
    let second = run_script_observed(script, 1);
    assert_eq!(first, second, "same script must stream identically");
    let parallel = run_script_observed(script, 4);
    assert_eq!(
        first, parallel,
        "subscribe telemetry must be byte-identical across --threads"
    );

    // Every line is either a response (first key `ok`) or a stream line
    // (first key `kind`) — the shape split `ropus watch` relies on.
    for line in &first {
        assert!(
            line.starts_with("{\"ok\":") || line.starts_with("{\"kind\":"),
            "unexpected line shape: {line}"
        );
    }
    let events: Vec<&String> = first
        .iter()
        .filter(|l| l.contains("\"kind\":\"watch.stream.event\""))
        .collect();
    assert!(
        events
            .iter()
            .any(|l| l.contains("\"event\":\"admitted\"") && l.contains("\"name\":\"db\"")),
        "post-subscribe admission must stream: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|l| l.contains("\"event\":\"departed\"") && l.contains("\"name\":\"web\"")),
        "departure must stream: {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|l| l.contains("\"name\":\"web\"") && l.contains("\"event\":\"admitted\"")),
        "pre-subscribe activity must not stream"
    );
    let deltas = first
        .iter()
        .filter(|l| l.contains("\"kind\":\"watch.stream.delta\""))
        .count();
    assert_eq!(deltas, 2, "one metric delta per tick command");
}
