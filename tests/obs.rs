//! Integration tests for the observability layer: deterministic
//! collectors must produce byte-identical JSON across runs and thread
//! counts, reports without a collector must serialize exactly as before,
//! and counters must be commutative under concurrent updates.

use proptest::prelude::*;
use ropus::prelude::*;

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    }
}

fn framework(seed: u64, threads: usize) -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
        .options(ConsolidationOptions::fast(seed).with_threads(threads))
        .failure_scope(FailureScope::AllApplications)
        .build()
}

fn case_study_apps(n: usize) -> Vec<AppSpec> {
    case_study_fleet(&FleetConfig {
        apps: n,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|a| AppSpec::new(a.name, a.trace, policy()))
    .collect()
}

/// Runs the full observed pipeline (plan + chaos replay) and returns the
/// collector's snapshot as JSON.
fn observed_run_json(seed: u64, threads: usize) -> String {
    let apps = case_study_apps(5);
    let horizon = apps[0].demand().len();
    let fw = framework(seed, threads);
    let obs = Obs::deterministic();
    let placement = fw
        .plan_normal_only(PlanRequest::of(&apps).with_obs(&obs))
        .unwrap();
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: placement.servers[0].server,
        start: horizon / 4,
        duration: 24,
    }])
    .unwrap();
    let _report = fw
        .chaos_replay_on(
            PlanRequest::of(&apps).with_obs(&obs),
            &placement,
            &schedule,
            DegradationPolicy::default(),
        )
        .unwrap();
    serde_json::to_string(&obs.report()).unwrap()
}

#[test]
fn obs_json_is_byte_identical_across_runs_and_threads() {
    let first = observed_run_json(9, 1);
    let second = observed_run_json(9, 1);
    assert_eq!(first, second, "same seed must observe identically");

    let parallel = observed_run_json(9, 4);
    assert_eq!(
        first, parallel,
        "deterministic obs JSON must be bit-identical across --threads"
    );

    // The snapshot round-trips into the same bytes.
    let decoded: ObsReport = serde_json::from_str(&first).unwrap();
    assert_eq!(serde_json::to_string(&decoded).unwrap(), first);

    // Spot-check that every layer actually reported something.
    assert!(decoded.spans_named("pipeline.translate").count() >= 1);
    assert!(decoded.spans_named("pipeline.consolidate").count() >= 1);
    assert!(decoded.spans_named("placement.search").count() >= 1);
    assert!(decoded.spans_named("chaos.replay.slots").count() >= 1);
    assert!(
        decoded.counter("qos.translations") >= 10,
        "2 modes x 5 apps"
    );
    assert!(decoded.events_named("qos.translate.breakpoint").count() >= 10);
    assert!(decoded.events_named("chaos.window.recovery").count() >= 1);
    // NullClock suppresses every duration.
    assert!(decoded.spans.iter().all(|s| s.wall_ms == 0.0));
}

#[test]
fn reports_without_a_collector_serialize_without_an_obs_key() {
    let apps = case_study_apps(3);
    let fw = framework(3, 1);
    let placement = fw.plan_normal_only(&apps).unwrap();
    let json = serde_json::to_string(&placement).unwrap();
    assert!(
        !json.contains("\"obs\""),
        "absent collector must leave report JSON unchanged"
    );

    // Attaching a snapshot round-trips through the optional field.
    let obs = Obs::deterministic();
    obs.counter("example.counter", 3);
    let mut with_obs = placement.clone();
    with_obs.obs = Some(obs.report());
    let json = serde_json::to_string(&with_obs).unwrap();
    assert!(json.contains("\"obs\""));
    let decoded: PlacementReport = serde_json::from_str(&json).unwrap();
    assert_eq!(decoded.obs.unwrap().counter("example.counter"), 3);
}

proptest! {
    /// Counter totals are commutative: however the same deltas are
    /// spread across worker threads, the snapshot total is their sum.
    #[test]
    fn counter_totals_are_invariant_under_thread_count(
        deltas in prop::collection::vec(0u64..1_000, 1..40),
        threads in 1usize..5,
    ) {
        let expected: u64 = deltas.iter().sum();
        let obs = Obs::deterministic();
        let chunk = deltas.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in deltas.chunks(chunk) {
                let obs = &obs;
                scope.spawn(move || {
                    for &d in part {
                        obs.counter("prop.total", d);
                    }
                });
            }
        });
        prop_assert_eq!(obs.report().counter("prop.total"), expected);
    }
}

/// Bounds for the quantile/delta proptests below.
static PROP_BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 4.0, 8.0];

proptest! {
    /// Bucket-resolution quantile estimates are monotone in `q` and
    /// always land on a bucket edge, for any sample distribution —
    /// including ones that overflow the last bound.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0.0f64..20.0, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let mut qs = qs;
        let obs = Obs::deterministic();
        for &v in &values {
            obs.histogram("prop.dist", PROP_BOUNDS, v);
        }
        let report = obs.report();
        let hist = report.histogram("prop.dist").unwrap();
        prop_assert_eq!(hist.total, values.len() as u64);

        qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = qs
            .iter()
            .map(|&q| hist.quantile(q).unwrap())
            .collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {estimates:?}");
        }
        for &e in &estimates {
            prop_assert!(PROP_BOUNDS.contains(&e), "estimate {e} is not a bucket edge");
        }
        // The fixed percentile triple the CLI prints obeys the same order.
        let (p50, p95, p99) = (
            hist.quantile(0.50).unwrap(),
            hist.quantile(0.95).unwrap(),
            hist.quantile(0.99).unwrap(),
        );
        prop_assert!(p50 <= p95 && p95 <= p99);
    }

    /// `delta_since` / `absorb` are exact inverses: absorbing a delta
    /// into the earlier snapshot reproduces the later one bit-for-bit,
    /// for arbitrary two-phase recording histories.
    #[test]
    fn snapshot_deltas_absorb_back_bit_exactly(
        phase1 in prop::collection::vec((0u64..100, 0.0f64..10.0), 0..30),
        phase2 in prop::collection::vec((0u64..100, 0.0f64..10.0), 0..30),
    ) {
        let obs = Obs::deterministic();
        let record = |batch: &[(u64, f64)]| {
            for &(c, v) in batch {
                obs.counter("prop.count", c);
                obs.gauge("prop.gauge", v);
                obs.histogram("prop.dist", PROP_BOUNDS, v);
                if c % 3 == 0 {
                    obs.event("prop.event").with_u64("c", c).emit();
                }
            }
        };
        record(&phase1);
        let earlier = obs.report();
        record(&phase2);
        let later = obs.report();

        let delta = later.delta_since(&earlier);
        let mut rebuilt = earlier.clone();
        rebuilt.absorb(&delta);
        prop_assert_eq!(
            serde_json::to_string(&rebuilt).unwrap(),
            serde_json::to_string(&later).unwrap(),
            "absorb(delta_since) must reproduce the later snapshot bit-exactly"
        );
    }
}
