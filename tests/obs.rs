//! Integration tests for the observability layer: deterministic
//! collectors must produce byte-identical JSON across runs and thread
//! counts, reports without a collector must serialize exactly as before,
//! and counters must be commutative under concurrent updates.

use proptest::prelude::*;
use ropus::prelude::*;

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    }
}

fn framework(seed: u64, threads: usize) -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
        .options(ConsolidationOptions::fast(seed).with_threads(threads))
        .failure_scope(FailureScope::AllApplications)
        .build()
}

fn case_study_apps(n: usize) -> Vec<AppSpec> {
    case_study_fleet(&FleetConfig {
        apps: n,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|a| AppSpec::new(a.name, a.trace, policy()))
    .collect()
}

/// Runs the full observed pipeline (plan + chaos replay) and returns the
/// collector's snapshot as JSON.
fn observed_run_json(seed: u64, threads: usize) -> String {
    let apps = case_study_apps(5);
    let horizon = apps[0].demand().len();
    let fw = framework(seed, threads);
    let obs = Obs::deterministic();
    let placement = fw
        .plan_normal_only(PlanRequest::of(&apps).with_obs(&obs))
        .unwrap();
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: placement.servers[0].server,
        start: horizon / 4,
        duration: 24,
    }])
    .unwrap();
    let _report = fw
        .chaos_replay_on(
            PlanRequest::of(&apps).with_obs(&obs),
            &placement,
            &schedule,
            DegradationPolicy::default(),
        )
        .unwrap();
    serde_json::to_string(&obs.report()).unwrap()
}

#[test]
fn obs_json_is_byte_identical_across_runs_and_threads() {
    let first = observed_run_json(9, 1);
    let second = observed_run_json(9, 1);
    assert_eq!(first, second, "same seed must observe identically");

    let parallel = observed_run_json(9, 4);
    assert_eq!(
        first, parallel,
        "deterministic obs JSON must be bit-identical across --threads"
    );

    // The snapshot round-trips into the same bytes.
    let decoded: ObsReport = serde_json::from_str(&first).unwrap();
    assert_eq!(serde_json::to_string(&decoded).unwrap(), first);

    // Spot-check that every layer actually reported something.
    assert!(decoded.spans_named("pipeline.translate").count() >= 1);
    assert!(decoded.spans_named("pipeline.consolidate").count() >= 1);
    assert!(decoded.spans_named("placement.search").count() >= 1);
    assert!(decoded.spans_named("chaos.replay.slots").count() >= 1);
    assert!(
        decoded.counter("qos.translations") >= 10,
        "2 modes x 5 apps"
    );
    assert!(decoded.events_named("qos.translate.breakpoint").count() >= 10);
    assert!(decoded.events_named("chaos.window.recovery").count() >= 1);
    // NullClock suppresses every duration.
    assert!(decoded.spans.iter().all(|s| s.wall_ms == 0.0));
}

#[test]
fn reports_without_a_collector_serialize_without_an_obs_key() {
    let apps = case_study_apps(3);
    let fw = framework(3, 1);
    let placement = fw.plan_normal_only(&apps).unwrap();
    let json = serde_json::to_string(&placement).unwrap();
    assert!(
        !json.contains("\"obs\""),
        "absent collector must leave report JSON unchanged"
    );

    // Attaching a snapshot round-trips through the optional field.
    let obs = Obs::deterministic();
    obs.counter("example.counter", 3);
    let mut with_obs = placement.clone();
    with_obs.obs = Some(obs.report());
    let json = serde_json::to_string(&with_obs).unwrap();
    assert!(json.contains("\"obs\""));
    let decoded: PlacementReport = serde_json::from_str(&json).unwrap();
    assert_eq!(decoded.obs.unwrap().counter("example.counter"), 3);
}

proptest! {
    /// Counter totals are commutative: however the same deltas are
    /// spread across worker threads, the snapshot total is their sum.
    #[test]
    fn counter_totals_are_invariant_under_thread_count(
        deltas in prop::collection::vec(0u64..1_000, 1..40),
        threads in 1usize..5,
    ) {
        let expected: u64 = deltas.iter().sum();
        let obs = Obs::deterministic();
        let chunk = deltas.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in deltas.chunks(chunk) {
                let obs = &obs;
                scope.spawn(move || {
                    for &d in part {
                        obs.counter("prop.total", d);
                    }
                });
            }
        });
        prop_assert_eq!(obs.report().counter("prop.total"), expected);
    }
}
