//! Integration tests of the §VII case-study machinery: the Table I grid on
//! a reduced fleet (12 apps, 2 weeks) so the orderings the paper reports
//! can be checked quickly. The full-scale study runs in the bench harness.

use ropus::case_study::{run_case, translate_fleet, CaseConfig, CaseResult};
use ropus::prelude::*;
use ropus_trace::gen::AppWorkload;

fn fleet() -> Vec<AppWorkload> {
    case_study_fleet(&FleetConfig {
        apps: 12,
        weeks: 2,
        ..FleetConfig::paper()
    })
}

fn run(case: &CaseConfig, seed: u64) -> CaseResult {
    run_case(&fleet(), case, ConsolidationOptions::fast(seed))
        .unwrap()
        .0
}

#[test]
fn c_peak_is_independent_of_theta_without_time_limit() {
    // With T_degr = none the demand cap (formulas 2-3) does not involve θ,
    // so C_peak matches across θ for the same M_degr.
    let cases = CaseConfig::table1();
    let t1 = translate_fleet(&fleet(), &cases[0]).unwrap(); // Mdegr=0, θ=0.6
    let t4 = translate_fleet(&fleet(), &cases[3]).unwrap(); // Mdegr=0, θ=0.95
    for (a, b) in t1.iter().zip(t4.iter()) {
        assert!((a.report.peak_allocation - b.report.peak_allocation).abs() < 1e-9);
    }
    let t3 = translate_fleet(&fleet(), &cases[2]).unwrap(); // Mdegr=3%, θ=0.6
    let t6 = translate_fleet(&fleet(), &cases[5]).unwrap(); // Mdegr=3%, θ=0.95
    for (a, b) in t3.iter().zip(t6.iter()) {
        assert!((a.report.peak_allocation - b.report.peak_allocation).abs() < 1e-9);
    }
}

#[test]
fn m_degr_reduces_c_peak() {
    // Table I: M_degr = 3% reduces C_peak by ~24% vs M_degr = 0.
    let cases = CaseConfig::table1();
    let strict = translate_fleet(&fleet(), &cases[0]).unwrap();
    let relaxed = translate_fleet(&fleet(), &cases[2]).unwrap();
    let c_strict: f64 = strict.iter().map(|t| t.report.peak_allocation).sum();
    let c_relaxed: f64 = relaxed.iter().map(|t| t.report.peak_allocation).sum();
    assert!(
        c_relaxed < c_strict,
        "relaxed {c_relaxed} strict {c_strict}"
    );
    let reduction = 1.0 - c_relaxed / c_strict;
    assert!(reduction > 0.05, "reduction {reduction}");
    // Formula 5 bound: no app can save more than 1 - 0.66/0.9.
    assert!(reduction <= 1.0 - 0.66 / 0.9 + 1e-9);
}

#[test]
fn time_limit_hurts_low_theta_more() {
    // §V / Fig. 7: under T_degr, higher θ retains more of the M_degr
    // savings. Compare per-app caps for cases 2 (θ=0.6, 30 min) and
    // 5 (θ=0.95, 30 min).
    let cases = CaseConfig::table1();
    let low = translate_fleet(&fleet(), &cases[1]).unwrap();
    let high = translate_fleet(&fleet(), &cases[4]).unwrap();
    let c_low: f64 = low.iter().map(|t| t.report.peak_allocation).sum();
    let c_high: f64 = high.iter().map(|t| t.report.peak_allocation).sum();
    assert!(
        c_high <= c_low + 1e-9,
        "θ=0.95 C_peak {c_high} vs θ=0.6 {c_low}"
    );
}

#[test]
fn degraded_fraction_stays_within_allowance_in_every_case() {
    for case in &CaseConfig::table1()[1..3] {
        let translated = translate_fleet(&fleet(), case).unwrap();
        for t in &translated {
            assert!(
                t.report.degraded_fraction <= case.m_degr + 1e-9,
                "case {}: app {} fraction {}",
                case.id,
                t.name,
                t.report.degraded_fraction
            );
        }
    }
}

#[test]
fn time_limit_constrains_degraded_episodes() {
    let case = CaseConfig::table1()[1]; // θ=0.6, T_degr = 30 min
    let translated = translate_fleet(&fleet(), &case).unwrap();
    for t in &translated {
        assert!(
            t.report.longest_degraded_minutes <= 30,
            "app {}: {} min",
            t.name,
            t.report.longest_degraded_minutes
        );
    }
}

#[test]
fn relaxed_cases_use_no_more_servers_than_strict() {
    let cases = CaseConfig::table1();
    let strict = run(&cases[0], 21);
    let relaxed = run(&cases[2], 21);
    assert!(
        relaxed.servers <= strict.servers,
        "{relaxed:?} vs {strict:?}"
    );
    assert!(relaxed.c_peak < strict.c_peak);
}

#[test]
fn consolidation_beats_all_cos1_lower_bound() {
    // The paper's two-CoS argument: with everything in CoS1 the fleet
    // would need ceil(C_peak/16) servers; statistical multiplexing must
    // use fewer (or equal for tiny fleets).
    let row = run(&CaseConfig::table1()[0], 22);
    assert!(
        row.servers <= row.all_cos1_servers_lower_bound,
        "GA used {} servers, all-CoS1 bound {}",
        row.servers,
        row.all_cos1_servers_lower_bound
    );
    assert!(row.sharing_savings > 0.0);
}

#[test]
fn case_results_are_deterministic() {
    let a = run(&CaseConfig::table1()[1], 9);
    let b = run(&CaseConfig::table1()[1], 9);
    assert_eq!(a, b);
}
