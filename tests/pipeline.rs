//! End-to-end integration tests of the full R-Opus pipeline:
//! demand traces → QoS translation → placement → failure sweep.

use ropus::prelude::*;

fn fleet(apps: usize) -> Vec<AppSpec> {
    let policy = QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    };
    case_study_fleet(&FleetConfig {
        apps,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|app| AppSpec::new(app.name, app.trace, policy))
    .collect()
}

fn framework(theta: f64, seed: u64) -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(theta, 60).unwrap()))
        .options(ConsolidationOptions::fast(seed))
        .build()
}

#[test]
fn plan_covers_every_application_exactly_once() {
    let apps = fleet(10);
    let plan = framework(0.9, 1).plan(&apps).unwrap();
    assert_eq!(plan.apps.len(), 10);
    assert_eq!(plan.normal_placement.assignment.len(), 10);
    // Every app appears on exactly one server of the report.
    let mut count = vec![0usize; 10];
    for sp in &plan.normal_placement.servers {
        for &w in &sp.workloads {
            count[w] += 1;
        }
    }
    assert!(count.iter().all(|&c| c == 1), "{count:?}");
}

#[test]
fn required_capacity_is_within_pool_and_below_peaks() {
    let apps = fleet(10);
    let plan = framework(0.9, 2).plan(&apps).unwrap();
    let report = &plan.normal_placement;
    for sp in &report.servers {
        assert!(
            sp.required_capacity <= 16.0 + 0.2,
            "server {}: {}",
            sp.server,
            sp.required_capacity
        );
        assert!(sp.utilization <= 1.0 + 0.02);
    }
    // Statistical multiplexing must beat the sum of peaks.
    assert!(report.required_capacity_total < report.peak_allocation_total);
}

#[test]
fn failure_sweep_has_one_case_per_used_server() {
    let apps = fleet(8);
    let plan = framework(0.9, 3).plan(&apps).unwrap();
    assert_eq!(plan.failure_analysis.cases.len(), plan.normal_servers());
    for case in &plan.failure_analysis.cases {
        assert!(!case.affected.is_empty());
        if let Some(p) = &case.placement {
            assert!(p.servers_used < plan.normal_servers());
        }
    }
}

#[test]
fn plan_is_deterministic_per_seed() {
    let apps = fleet(6);
    let a = framework(0.9, 7).plan(&apps).unwrap();
    let b = framework(0.9, 7).plan(&apps).unwrap();
    assert_eq!(a.normal_placement.assignment, b.normal_placement.assignment);
    assert_eq!(
        a.normal_placement.required_capacity_total,
        b.normal_placement.required_capacity_total
    );
    assert_eq!(a.failure_analysis, b.failure_analysis);
}

#[test]
fn lower_theta_never_reduces_required_capacity() {
    // θ = 1.0 means CoS2 is effectively guaranteed: required capacity must
    // cover every aggregate peak. θ = 0.6 permits overbooking.
    let apps = fleet(8);
    let strict = framework(1.0, 4).plan(&apps).unwrap();
    let relaxed = framework(0.6, 4).plan(&apps).unwrap();
    assert!(
        relaxed.normal_placement.required_capacity_total
            <= strict.normal_placement.required_capacity_total + 0.5,
        "relaxed {} vs strict {}",
        relaxed.normal_placement.required_capacity_total,
        strict.normal_placement.required_capacity_total
    );
}

#[test]
fn translation_reports_satisfy_their_own_bounds() {
    use ropus_qos::analysis::{check_report, max_cap_reduction_bound};
    let apps = fleet(10);
    let plan = framework(0.9, 5).plan(&apps).unwrap();
    let qos = AppQos::paper_default(Some(30));
    for app in &plan.apps {
        check_report(&qos, &app.normal).unwrap();
        assert!(app.normal.max_cap_reduction <= max_cap_reduction_bound(&qos) + 1e-9);
        // Failure mode (no time limit) can only cap harder (or equal).
        assert!(app.failure.d_new_max <= app.normal.d_new_max + 1e-9);
    }
}

#[test]
fn savings_aggregate_matches_reports() {
    let apps = fleet(6);
    let plan = framework(0.9, 6).plan(&apps).unwrap();
    let total: f64 = plan.apps.iter().map(|a| a.normal.peak_allocation).sum();
    assert!((plan.savings.total_peak_allocation - total).abs() < 1e-9);
    assert_eq!(plan.savings.apps, 6);
    // And the placement's C_peak equals the translations' peak sum.
    assert!((plan.normal_placement.peak_allocation_total - total).abs() < 1e-9);
}
