//! Property-based tests over the core R-Opus invariants.
//!
//! These use an hourly calendar (24 slots/day, 168/week) so each generated
//! trace stays small while still exercising the weekly θ machinery.

use proptest::prelude::*;
use ropus_obs::ObsCtx;

use ropus::case_study::{translate_fleet_threaded, CaseConfig};
use ropus::prelude::*;
use ropus_placement::failure::{analyze_multi_failures, MultiFailureAnalysis};
use ropus_placement::simulator::{access_probability, AggregateLoad, FitOptions, FitRequest};
use ropus_placement::workload::Workload;
use ropus_placement::PlacementError;
use ropus_qos::portfolio::{breakpoint, split_demand, worst_case_utilization};
use ropus_qos::translation::translate;
use ropus_trace::gen::AppWorkload;
use ropus_trace::{kernels, stats, FleetMatrix};

fn hourly() -> Calendar {
    Calendar::new(60).unwrap()
}

/// A week of non-negative hourly demand samples.
fn demand_week() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..20.0, 168)
}

/// A valid utilization band with visible gaps between the bounds.
fn band_strategy() -> impl Strategy<Value = UtilizationBand> {
    (0.05f64..0.7, 0.05f64..0.25)
        .prop_map(|(low, gap)| UtilizationBand::new(low, (low + gap).min(0.97)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn breakpoint_is_a_probability_and_monotone_in_theta(
        band in band_strategy(),
        theta_lo in 0.01f64..1.0,
        delta in 0.0f64..0.5,
    ) {
        let theta_hi = (theta_lo + delta).min(1.0);
        let p_lo = breakpoint(band, &CosSpec::new(theta_lo, 60).unwrap());
        let p_hi = breakpoint(band, &CosSpec::new(theta_hi, 60).unwrap());
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_hi <= p_lo + 1e-12, "p({theta_hi}) = {p_hi} > p({theta_lo}) = {p_lo}");
    }

    #[test]
    fn split_reassembles_capped_demand(
        demand in 0.0f64..50.0,
        p in 0.0f64..=1.0,
        cap in 0.0f64..30.0,
    ) {
        let split = split_demand(demand, p, cap);
        prop_assert!(split.cos1 >= 0.0 && split.cos2 >= 0.0);
        prop_assert!((split.total() - demand.min(cap)).abs() < 1e-9);
        prop_assert!(split.cos1 <= p * cap + 1e-9);
    }

    #[test]
    fn worst_case_utilization_never_exceeds_u_degr_after_translation(
        samples in demand_week(),
        theta in 0.05f64..=1.0,
        t_degr in prop::option::of(1u32..240),
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let qos = AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(DegradationSpec::new(0.03, 0.9, t_degr).unwrap()),
        );
        let cos2 = CosSpec::new(theta, 60).unwrap();
        let t = translate(&trace, &qos, &cos2, ObsCtx::none()).unwrap();
        prop_assert!(t.report.max_worst_case_utilization <= 0.9 + 1e-9);
        prop_assert!(t.report.degraded_fraction <= 0.03 + 1e-9);
        prop_assert!(t.report.d_new_max <= t.report.d_max + 1e-9);
        prop_assert!(t.report.max_cap_reduction >= -1e-12);
        prop_assert!(t.report.max_cap_reduction <= 1.0 - 0.66 / 0.9 + 1e-9);
    }

    #[test]
    fn time_limit_only_raises_the_cap(
        samples in demand_week(),
        theta in 0.05f64..=1.0,
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let cos2 = CosSpec::new(theta, 60).unwrap();
        let free = AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(DegradationSpec::new(0.03, 0.9, None).unwrap()),
        );
        let limited = AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(DegradationSpec::new(0.03, 0.9, Some(120)).unwrap()),
        );
        let t_free = translate(&trace, &free, &cos2, ObsCtx::none()).unwrap();
        let t_limited = translate(&trace, &limited, &cos2, ObsCtx::none()).unwrap();
        prop_assert!(t_limited.report.d_new_max >= t_free.report.d_new_max - 1e-9);
        prop_assert_eq!(
            t_free.report.d_new_max_before_time_limit,
            t_limited.report.d_new_max_before_time_limit
        );
    }

    #[test]
    fn translation_respects_u_low_below_breakpoint_share(
        samples in demand_week(),
        theta in 0.05f64..=1.0,
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let band = UtilizationBand::new(0.5, 0.66).unwrap();
        let qos = AppQos::strict(band);
        let cos2 = CosSpec::new(theta, 60).unwrap();
        let t = translate(&trace, &qos, &cos2, ObsCtx::none()).unwrap();
        // Strict QoS: cap = D_max, so every observation's worst-case
        // utilization is at most U_high.
        for &d in trace.samples() {
            let u = worst_case_utilization(d, band, &cos2, t.report.d_new_max);
            if t.report.d_max > 0.0 {
                prop_assert!(u <= band.high() + 1e-9, "u = {u} for d = {d}");
            }
        }
    }

    #[test]
    fn access_probability_is_monotone_in_capacity(
        samples in demand_week(),
        cap_lo in 0.5f64..10.0,
        extra in 0.0f64..10.0,
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let zero = Trace::constant(hourly(), 0.0, 168).unwrap();
        let w = Workload::new("w", zero, trace).unwrap();
        let load = AggregateLoad::of(&[&w]).unwrap();
        let lo = access_probability(&load, cap_lo);
        let hi = access_probability(&load, cap_lo + extra);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!(hi >= lo - 1e-12);
    }

    #[test]
    fn required_capacity_is_minimal_and_sufficient(
        samples in demand_week(),
        theta in 0.5f64..=1.0,
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let zero = Trace::constant(hourly(), 0.0, 168).unwrap();
        let w = Workload::new("w", zero, trace).unwrap();
        let load = AggregateLoad::of(&[&w]).unwrap();
        let commitments = PoolCommitments::new(CosSpec::new(theta, 60).unwrap());
        let limit = load.total_peak().max(1.0) + 1.0;
        let request = FitRequest::new(&load, &commitments)
            .with_options(FitOptions::new().with_tolerance(0.01));
        if let Some(req) = request.required_capacity(limit) {
            prop_assert!(request.evaluate(req).fits);
            if req > 0.05 {
                prop_assert!(
                    !request.evaluate(req - 0.05).fits,
                    "required {req} is not minimal"
                );
            }
        } else {
            // Must genuinely not fit at the limit.
            prop_assert!(!request.evaluate(limit).fits);
        }
    }

    #[test]
    fn epoch_budget_never_lowers_the_cap_and_meets_the_budget(
        samples in demand_week(),
        theta in 0.05f64..=1.0,
        budget in 1u32..6,
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let cos2 = CosSpec::new(theta, 60).unwrap();
        let free = AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(DegradationSpec::new(0.03, 0.9, None).unwrap()),
        );
        let budgeted = AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(
                DegradationSpec::new(0.03, 0.9, None)
                    .unwrap()
                    .with_epoch_budget(budget)
                    .unwrap(),
            ),
        );
        let t_free = translate(&trace, &free, &cos2, ObsCtx::none()).unwrap();
        let t_budgeted = translate(&trace, &budgeted, &cos2, ObsCtx::none()).unwrap();
        prop_assert!(t_budgeted.report.d_new_max >= t_free.report.d_new_max - 1e-9);
        prop_assert!(
            t_budgeted.report.max_degraded_epochs_per_week <= budget as usize,
            "epochs {} > budget {budget}",
            t_budgeted.report.max_degraded_epochs_per_week
        );
        // All other guarantees survive the extra constraint.
        prop_assert!(t_budgeted.report.degraded_fraction <= 0.03 + 1e-9);
        prop_assert!(t_budgeted.report.max_worst_case_utilization <= 0.9 + 1e-9);
    }

    #[test]
    fn memory_attribute_only_ever_shrinks_feasibility(
        samples in demand_week(),
        memory_gb in 1.0f64..100.0,
        capacity in 8.0f64..64.0,
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let zero = Trace::constant(hourly(), 0.0, 168).unwrap();
        let memory = Trace::constant(hourly(), memory_gb, 168).unwrap();
        let plain = Workload::new("w", zero.clone(), trace.clone()).unwrap();
        let with_memory =
            Workload::new("w", zero, trace).unwrap().with_memory(memory).unwrap();
        let commitments = PoolCommitments::new(CosSpec::new(0.9, 60).unwrap());
        let plain_load = AggregateLoad::of(&[&plain]).unwrap();
        let mem_load = AggregateLoad::of(&[&with_memory]).unwrap();
        let plain_fits = FitRequest::new(&plain_load, &commitments)
            .evaluate(capacity)
            .fits;
        let mem_fits = FitRequest::new(&mem_load, &commitments)
            .with_options(FitOptions::new().with_memory_capacity(64.0))
            .evaluate(capacity)
            .fits;
        // Adding a memory requirement can only remove feasibility.
        if mem_fits {
            prop_assert!(plain_fits);
        }
        // And it is exactly the peak test.
        prop_assert_eq!(mem_fits, plain_fits && memory_gb <= 64.0 + 1e-9);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(0.0f64..100.0, 1..300),
        q1 in 0.0f64..=100.0,
        dq in 0.0f64..=50.0,
    ) {
        let q2 = (q1 + dq).min(100.0);
        let p1 = ropus_trace::stats::percentile(&samples, q1);
        let p2 = ropus_trace::stats::percentile(&samples, q2);
        prop_assert!(p1 <= p2 + 1e-12);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        prop_assert!(p1 >= min - 1e-12 && p1 <= max + 1e-12);
    }

    #[test]
    fn multi_failure_unsupported_fraction_is_monotone_in_k(
        levels in proptest::collection::vec(0.5f64..6.0, 6),
        seed in 0u64..1000,
    ) {
        // Six constant 7-CPU workloads force exactly two per 16-way in
        // normal mode (three at 21 CPUs breaks θ = 0.9); the failure-mode
        // sizes are drawn per app, so whether the survivors can absorb
        // k simultaneous failures varies case to case.
        let week = hourly().slots_per_week();
        let zero = Trace::constant(hourly(), 0.0, week).unwrap();
        let constant = |level: f64| Trace::constant(hourly(), level, week).unwrap();
        let normal: Vec<Workload> = (0..6)
            .map(|i| Workload::new(format!("w{i}"), zero.clone(), constant(7.0)).unwrap())
            .collect();
        let failure: Vec<Workload> = levels
            .iter()
            .enumerate()
            .map(|(i, &f)| Workload::new(format!("w{i}"), zero.clone(), constant(f)).unwrap())
            .collect();
        let commitments = PoolCommitments::new(CosSpec::new(0.9, 60).unwrap());
        let c = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments,
            ConsolidationOptions::fast(seed),
        );
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        prop_assert_eq!(report.servers_used, 3);

        let sweep = |k: usize| -> Result<MultiFailureAnalysis, PlacementError> {
            analyze_multi_failures(
                &c,
                &report,
                &normal,
                &failure,
                FailureScope::AllApplications,
                k,
            )
        };
        let one = sweep(1).unwrap();
        let two = sweep(2).unwrap();
        // The unsupported *fraction* never shrinks as failures compound;
        // cross-multiplied so no float division is involved.
        prop_assert!(
            two.unsupported_count() * one.cases.len()
                >= one.unsupported_count() * two.cases.len(),
            "fraction dropped: {}/{} at k=1 vs {}/{} at k=2",
            one.unsupported_count(),
            one.cases.len(),
            two.unsupported_count(),
            two.cases.len()
        );
        if one.unsupported_count() > 0 {
            prop_assert!(two.unsupported_count() > 0);
        }

        // Degenerate sweeps (no failures, or nothing left standing) are
        // rejected up front rather than reported as an empty analysis.
        for k in [0, report.servers_used, report.servers_used + 1] {
            let err = sweep(k).unwrap_err();
            prop_assert!(matches!(err, PlacementError::InvalidServer { .. }), "k = {}", k);
        }
    }

    /// Every element-wise columnar kernel is *bitwise* equal to the
    /// obvious scalar loop it replaced — not approximately, since chunked
    /// independent elements never reassociate anything.
    #[test]
    fn elementwise_kernels_are_bit_identical_to_scalar_loops(
        pairs in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), 0..200),
        cap in 0.0f64..30.0,
        factor in 0.0f64..2.0,
        p in 0.0f64..=1.0,
    ) {
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();

        let mut acc = a.clone();
        kernels::add_assign(&mut acc, &b);
        for ((&x, &y), &got) in a.iter().zip(&b).zip(&acc) {
            prop_assert_eq!((x + y).to_bits(), got.to_bits());
        }

        let mut out = Vec::new();
        kernels::sub_saturating_into(&mut out, &a, &b);
        for ((&x, &y), &got) in a.iter().zip(&b).zip(&out) {
            prop_assert_eq!((x - y).max(0.0).to_bits(), got.to_bits());
        }

        kernels::cap_scale_into(&mut out, &a, cap, factor);
        for (&x, &got) in a.iter().zip(&out) {
            prop_assert_eq!((x.min(cap) * factor).to_bits(), got.to_bits());
        }

        // The fused CoS split reproduces per-sample `split_demand` exactly.
        let mut cos1 = Vec::new();
        let mut cos2 = Vec::new();
        kernels::split_cos_into(&a, p, cap, factor, &mut cos1, &mut cos2);
        for ((&d, &c1), &c2) in a.iter().zip(&cos1).zip(&cos2) {
            let split = split_demand(d, p, cap);
            prop_assert_eq!((split.cos1 * factor).to_bits(), c1.to_bits());
            prop_assert_eq!((split.cos2 * factor).to_bits(), c2.to_bits());
        }
    }

    /// Fleet aggregation and order statistics agree bitwise across all
    /// three implementations: the slot-major `FleetMatrix` path, the
    /// `add_assign` column accumulation, and the scalar per-slot sum —
    /// and quickselect percentiles match the sorted-cache path.
    #[test]
    fn fleet_aggregation_and_percentiles_match_scalar_references(
        fleet in proptest::collection::vec(proptest::collection::vec(0.0f64..20.0, 168), 1..6),
        q in 0.0f64..=100.0,
    ) {
        let traces: Vec<Trace> = fleet
            .iter()
            .map(|s| Trace::from_samples(hourly(), s.clone()).unwrap())
            .collect();
        let matrix = FleetMatrix::from_traces(&traces).unwrap();

        let aggregate = matrix.aggregate();
        let mut columnar = vec![0.0; 168];
        for column in &fleet {
            kernels::add_assign(&mut columnar, column);
        }
        for slot in 0..168 {
            let mut scalar = 0.0;
            for column in &fleet {
                scalar += column[slot];
            }
            prop_assert_eq!(scalar.to_bits(), aggregate[slot].to_bits());
            prop_assert_eq!(scalar.to_bits(), columnar[slot].to_bits());
        }

        // Quickselect, one-shot sort, and the per-trace sorted cache all
        // return the same order statistic, bit for bit.
        let mut scratch = Vec::new();
        for (trace, column) in traces.iter().zip(&fleet) {
            let select = kernels::percentile_upper_select(column, q, &mut scratch);
            prop_assert_eq!(select.to_bits(), stats::percentile_upper(column, q).to_bits());
            prop_assert_eq!(select.to_bits(), trace.percentile_upper(q).to_bits());
        }
    }

    /// The threaded fleet translation (the 10k-plan entry point) is a pure
    /// function of the fleet: 1 worker and 4 workers produce bit-identical
    /// reports and workload columns for arbitrary demand traces.
    #[test]
    fn threaded_translation_matches_serial_on_arbitrary_fleets(
        fleet in proptest::collection::vec(proptest::collection::vec(0.0f64..20.0, 168), 1..6),
    ) {
        let apps: Vec<AppWorkload> = fleet
            .into_iter()
            .enumerate()
            .map(|(i, samples)| AppWorkload {
                name: format!("app-{i}"),
                trace: Trace::from_samples(hourly(), samples).unwrap(),
            })
            .collect();
        let case = CaseConfig::table1()[2];
        let serial = translate_fleet_threaded(&apps, &case, 1).unwrap();
        let threaded = translate_fleet_threaded(&apps, &case, 4).unwrap();
        prop_assert_eq!(&serial, &threaded);
        for (s, t) in serial.iter().zip(&threaded) {
            for (a, b) in s
                .workload
                .cos1()
                .samples()
                .iter()
                .zip(t.workload.cos1().samples())
            {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in s
                .workload
                .cos2()
                .samples()
                .iter()
                .zip(t.workload.cos2().samples())
            {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fleet_savings_aggregate_is_bounded_by_components(
        samples in demand_week(),
    ) {
        let trace = Trace::from_samples(hourly(), samples).unwrap();
        let qos = AppQos::paper_default(None);
        let cos2 = CosSpec::new(0.9, 60).unwrap();
        let r = translate(&trace, &qos, &cos2, ObsCtx::none()).unwrap().report;
        let agg = ropus_qos::analysis::FleetSavings::aggregate(&[r, r]);
        prop_assert!((agg.total_peak_allocation - 2.0 * r.peak_allocation).abs() < 1e-9);
        prop_assert!(agg.max_cap_reduction >= agg.mean_cap_reduction - 1e-12);
    }
}
