//! Integration tests of the beyond-the-paper extensions working together:
//! heterogeneous pools, the memory attribute, epoch budgets, and
//! multi-node failure sweeps.

use ropus::prelude::*;
use ropus_obs::ObsCtx;
use ropus_placement::failure::analyze_multi_failures;
use ropus_placement::ga::GaOptions;
use ropus_placement::hetero::{consolidate_hetero, seed_ffd, HeteroEvaluator};
use ropus_trace::gen::MemoryModel;
use ropus_trace::rng::Rng;

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    }
}

fn translated_fleet(apps: usize, theta: f64) -> Vec<Workload> {
    let fleet = case_study_fleet(&FleetConfig {
        apps,
        weeks: 1,
        ..FleetConfig::paper()
    });
    let cos2 = CosSpec::new(theta, 60).unwrap();
    fleet
        .into_iter()
        .map(|app| {
            let t = translate(&app.trace, &policy().normal, &cos2, ObsCtx::none()).unwrap();
            Workload::from_translation(app.name, t)
        })
        .collect()
}

#[test]
fn hetero_pool_places_case_study_apps() {
    let workloads = translated_fleet(8, 0.9);
    let pool = vec![
        ServerSpec::sixteen_way(),
        ServerSpec::sixteen_way(),
        ServerSpec::new(8, 1.0),
        ServerSpec::new(4, 1.0),
    ];
    let commitments = PoolCommitments::new(CosSpec::new(0.9, 60).unwrap());
    let eval = HeteroEvaluator::new(&workloads, pool, commitments, 0.1).unwrap();
    let report = consolidate_hetero(&eval, &GaOptions::fast(2)).unwrap();
    // Every workload placed, on a feasible assignment.
    assert_eq!(report.assignment.len(), 8);
    let (_, feasible) = eval.evaluate(&report.assignment);
    assert!(feasible);
    // The GA never scores below its FFD seed.
    let seed = seed_ffd(&eval).unwrap();
    let (seed_score, _) = eval.evaluate(&seed);
    assert!(report.score >= seed_score - 1e-9);
}

#[test]
fn hetero_matches_homogeneous_when_pool_is_uniform() {
    // On an all-16-way pool the heterogeneous path must find a placement
    // at least as good as the homogeneous consolidator's (same machinery,
    // same seeds).
    let workloads = translated_fleet(6, 0.9);
    let commitments = PoolCommitments::new(CosSpec::new(0.9, 60).unwrap());
    let homo = Consolidator::new(
        ServerSpec::sixteen_way(),
        commitments,
        ConsolidationOptions::fast(3),
    )
    .consolidate(&workloads, ObsCtx::none())
    .unwrap();
    let pool = vec![ServerSpec::sixteen_way(); homo.servers_used + 1];
    let eval = HeteroEvaluator::new(&workloads, pool, commitments, 0.1).unwrap();
    let report = consolidate_hetero(&eval, &GaOptions::fast(3)).unwrap();
    assert!(
        report.used_servers.len() <= homo.servers_used,
        "hetero {} vs homo {}",
        report.used_servers.len(),
        homo.servers_used
    );
}

#[test]
fn memory_attribute_survives_the_full_plan_pipeline() {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 5,
        weeks: 1,
        ..FleetConfig::paper()
    });
    let mut rng = Rng::seed_from_u64(77);
    let model = MemoryModel {
        base_gb: 20.0,
        per_cpu_gb: 2.0,
        ..MemoryModel::typical()
    };
    let apps: Vec<AppSpec> = fleet
        .into_iter()
        .map(|app| {
            let memory = model.generate(&app.trace, &mut rng);
            AppSpec::new(app.name, app.trace, policy())
                .with_memory(memory)
                .unwrap()
        })
        .collect();
    let framework = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
        .options(ConsolidationOptions::fast(4))
        .build();
    let plan = framework.plan(&apps).unwrap();
    // 5 apps x >= 20 GB on 64 GB servers: at least ceil(100/64) = 2 servers.
    assert!(plan.normal_servers() >= 2, "{}", plan.normal_servers());
    // Failure cases inherit the memory constraint too: any supported case
    // must respect it on the survivors.
    for case in &plan.failure_analysis.cases {
        if let Some(p) = &case.placement {
            assert!(p.servers_used >= 2);
        }
    }
}

#[test]
fn epoch_budget_tightens_the_fleet_translation() {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 6,
        weeks: 2,
        ..FleetConfig::paper()
    });
    let cos2 = CosSpec::new(0.6, 60).unwrap();
    let plain = AppQos::paper_default(None);
    let budgeted = AppQos::new(
        UtilizationBand::paper_default(),
        Some(
            DegradationSpec::paper_default(None)
                .with_epoch_budget(2)
                .unwrap(),
        ),
    );
    for app in &fleet {
        let free = translate(&app.trace, &plain, &cos2, ObsCtx::none())
            .unwrap()
            .report;
        let tight = translate(&app.trace, &budgeted, &cos2, ObsCtx::none())
            .unwrap()
            .report;
        assert!(tight.max_degraded_epochs_per_week <= 2, "{}", app.name);
        // The budget can only raise the cap (reduce savings).
        assert!(tight.d_new_max >= free.d_new_max - 1e-9);
        assert!(tight.peak_allocation >= free.peak_allocation - 1e-9);
    }
}

#[test]
fn double_failure_needs_more_relief_than_single() {
    let fleet = case_study_fleet(&FleetConfig {
        apps: 8,
        weeks: 1,
        ..FleetConfig::paper()
    });
    let cos2 = CosSpec::new(0.9, 60).unwrap();
    let normal: Vec<Workload> = fleet
        .iter()
        .map(|app| {
            let t = translate(&app.trace, &policy().normal, &cos2, ObsCtx::none()).unwrap();
            Workload::from_translation(app.name.clone(), t)
        })
        .collect();
    let failure: Vec<Workload> = fleet
        .iter()
        .map(|app| {
            let t = translate(&app.trace, &policy().failure, &cos2, ObsCtx::none()).unwrap();
            Workload::from_translation(app.name.clone(), t)
        })
        .collect();
    let consolidator = Consolidator::new(
        ServerSpec::sixteen_way(),
        PoolCommitments::new(cos2),
        ConsolidationOptions::fast(6),
    );
    let report = consolidator.consolidate(&normal, ObsCtx::none()).unwrap();
    if report.servers_used < 3 {
        // Not enough servers for a meaningful k=2 sweep on this subset.
        return;
    }
    let single = ropus_placement::failure::analyze_single_failures(
        &consolidator,
        &report,
        &normal,
        &failure,
        FailureScope::AllApplications,
    )
    .unwrap();
    let double = analyze_multi_failures(
        &consolidator,
        &report,
        &normal,
        &failure,
        FailureScope::AllApplications,
        2,
    )
    .unwrap();
    // C(n, 2) combinations, and double failures are never easier to absorb
    // than single ones.
    let n = report.servers_used;
    assert_eq!(double.cases.len(), n * (n - 1) / 2);
    if single.spare_needed() {
        assert!(!double.all_supported());
    }
}
