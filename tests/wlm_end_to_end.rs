//! Closing the loop: the QoS translation promises that an application's
//! utilization of allocation stays inside its envelope whenever the pool
//! honours its CoS commitments. These tests replay translated workloads
//! through the workload-manager host scheduler and audit the *delivered*
//! QoS against the requirement.

use ropus::prelude::*;
use ropus_obs::ObsCtx;
use ropus_wlm::host::{Host, HostedWorkload};
use ropus_wlm::manager::WlmPolicy;
use ropus_wlm::metrics::audit;

fn translated_hosted(apps: usize, theta: f64) -> (Vec<HostedWorkload>, Vec<AppQos>, Vec<Workload>) {
    let fleet = case_study_fleet(&FleetConfig {
        apps,
        weeks: 1,
        ..FleetConfig::paper()
    });
    let qos = AppQos::paper_default(Some(30));
    let cos2 = CosSpec::new(theta, 60).unwrap();
    let mut hosted = Vec::new();
    let mut requirements = Vec::new();
    let mut workloads = Vec::new();
    for app in fleet {
        let translation = translate(&app.trace, &qos, &cos2, ObsCtx::none()).unwrap();
        let policy = WlmPolicy::from_translation(&qos, &translation.report);
        workloads.push(Workload::from_translation(app.name.clone(), translation));
        hosted.push(HostedWorkload::new(app.name, app.trace, policy));
        requirements.push(qos);
    }
    (hosted, requirements, workloads)
}

#[test]
fn uncontended_host_delivers_compliant_qos() {
    let (hosted, requirements, _) = translated_hosted(3, 0.9);
    // Plenty of capacity: every allocation request is granted in full, so
    // utilization of allocation stays within the band by construction.
    let host = Host::new(64.0).unwrap();
    let outcome = host.run(&hosted, ObsCtx::none()).unwrap();
    assert_eq!(outcome.contended_slots, 0);
    for (wo, qos) in outcome.workloads.iter().zip(&requirements) {
        let a = audit(&wo.utilization, qos);
        assert!(a.is_compliant(), "{}: {:?}", wo.name, a.violations);
        // Demand above the translation's cap is served from a capped
        // allocation: utilization may exceed U_high on those (allowed)
        // degraded slots, but never U_degr.
        assert!(a.max_utilization <= qos.degradation().unwrap().u_degr() + 1e-9);
    }
}

#[test]
fn sized_host_keeps_qos_within_the_degraded_envelope() {
    use ropus_placement::simulator::{AggregateLoad, FitRequest};
    let (hosted, requirements, workloads) = translated_hosted(4, 0.9);
    // Size the host at the placement simulator's required capacity.
    let refs: Vec<&Workload> = workloads.iter().collect();
    let load = AggregateLoad::of(&refs).unwrap();
    let commitments = PoolCommitments::new(CosSpec::new(0.9, 60).unwrap());
    let capacity = FitRequest::new(&load, &commitments)
        .required_capacity(64.0)
        .unwrap();
    let host = Host::new(capacity.max(1.0)).unwrap();
    let outcome = host.run(&hosted, ObsCtx::none()).unwrap();
    for (wo, qos) in outcome.workloads.iter().zip(&requirements) {
        // θ is a weekly statistical aggregate, so isolated slots may still
        // see deep cuts; the envelope promise is that such slots are rare.
        let bound = qos.degradation().unwrap().u_degr();
        let breach_fraction = wo.utilization.fraction_above(bound);
        assert!(
            breach_fraction < 0.05,
            "{}: {:.2}% of slots above U_degr",
            wo.name,
            100.0 * breach_fraction
        );
        let a = audit(&wo.utilization, qos);
        // Most measurements sit in the acceptable band.
        assert!(
            a.acceptable_fraction > 0.9,
            "{}: {}",
            wo.name,
            a.acceptable_fraction
        );
    }
}

#[test]
fn starved_host_shows_violations_the_audit_catches() {
    let (hosted, requirements, _) = translated_hosted(4, 0.9);
    // A pathologically small host: CoS2 requests are heavily cut, so
    // served demand is capped by grants and utilization rides at 1.0
    // whenever demand exceeds the grant — the audit must flag it.
    let host = Host::new(1.0).unwrap();
    let outcome = host.run(&hosted, ObsCtx::none()).unwrap();
    assert!(outcome.contended_slots > 0);
    let any_violation = outcome
        .workloads
        .iter()
        .zip(&requirements)
        .any(|(wo, qos)| !audit(&wo.utilization, qos).is_compliant());
    assert!(any_violation, "starvation must surface as an SLO violation");
}

#[test]
fn cos1_workloads_are_insulated_from_cos2_pressure() {
    // A guaranteed-heavy workload keeps its grants even when a CoS2-heavy
    // neighbour floods the host.
    let cal = Calendar::five_minute();
    let len = cal.slots_per_week();
    let steady = HostedWorkload::new(
        "steady",
        Trace::constant(cal, 2.0, len).unwrap(),
        WlmPolicy {
            burst_factor: 2.0,
            cos1_cap: 4.0,
            total_cap: 4.0,
            min_allocation: 0.0,
            smoothing: 1.0,
        },
    );
    let noisy = HostedWorkload::new(
        "noisy",
        Trace::constant(cal, 20.0, len).unwrap(),
        WlmPolicy {
            burst_factor: 2.0,
            cos1_cap: 0.0,
            total_cap: 40.0,
            min_allocation: 0.0,
            smoothing: 1.0,
        },
    );
    let host = Host::new(10.0).unwrap();
    let outcome = host.run(&[steady, noisy], ObsCtx::none()).unwrap();
    let steady_out = &outcome.workloads[0];
    // The steady workload's 4-CPU CoS1 request is always granted in full.
    for (&g, &s) in steady_out
        .granted
        .samples()
        .iter()
        .zip(steady_out.served.samples())
    {
        assert!((g - 4.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
    }
    // The noisy workload absorbs all the contention.
    assert!(outcome.workloads[1].unmet.peak() > 0.0);
}
