//! Integration tests for the fault-injection simulator: byte-identical
//! determinism across runs and thread counts, and agreement between the
//! dynamic replay and the static single-failure planner on the §VII
//! case-study setup.

use ropus::prelude::*;

fn policy() -> QosPolicy {
    QosPolicy {
        normal: AppQos::paper_default(Some(30)),
        failure: AppQos::paper_default(None),
    }
}

fn framework(seed: u64, threads: usize) -> Framework {
    Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
        .options(ConsolidationOptions::fast(seed).with_threads(threads))
        .failure_scope(FailureScope::AllApplications)
        .build()
}

fn case_study_apps(n: usize) -> Vec<AppSpec> {
    case_study_fleet(&FleetConfig {
        apps: n,
        weeks: 1,
        ..FleetConfig::paper()
    })
    .into_iter()
    .map(|a| AppSpec::new(a.name, a.trace, policy()))
    .collect()
}

#[test]
fn chaos_report_json_is_byte_identical_across_runs_and_threads() {
    let apps = case_study_apps(6);
    let horizon = apps[0].demand().len();
    // Draw a stochastic schedule over as many servers as the placement
    // actually uses, then remap the event indices onto the real server
    // ids so every event names a server that exists in the pool.
    let placement = framework(9, 1).plan_normal_only(&apps).unwrap();
    let ids: Vec<usize> = placement.servers.iter().map(|s| s.server).collect();
    let raw = FailureSchedule::stochastic(
        &StochasticProfile {
            seed: 42,
            mtbf_slots: 700,
            mttr_slots: 48,
        },
        ids.len(),
        horizon,
    )
    .unwrap();
    let events: Vec<FailureEvent> = raw
        .events()
        .iter()
        .map(|e| FailureEvent {
            server: ids[e.server],
            ..*e
        })
        .collect();
    assert!(
        !events.is_empty(),
        "profile must produce at least one outage"
    );
    let schedule = FailureSchedule::scripted(events).unwrap();

    let run = |threads: usize| -> String {
        let fw = framework(9, threads);
        let placement = fw.plan_normal_only(&apps).unwrap();
        let report = fw
            .chaos_replay_on(&apps, &placement, &schedule, DegradationPolicy::default())
            .unwrap();
        serde_json::to_string(&report).unwrap()
    };

    let first = run(1);
    let second = run(1);
    assert_eq!(first, second, "same seed+schedule must replay identically");

    let parallel = run(4);
    assert_eq!(
        first, parallel,
        "replay must be bit-identical across --threads settings"
    );

    // The JSON round-trips into the same value.
    let decoded: ChaosReport = serde_json::from_str(&first).unwrap();
    assert_eq!(serde_json::to_string(&decoded).unwrap(), first);
}

/// A fleet engineered to be single-failure tolerant: each application
/// idles at 1.0 CPU and bursts to 6.9 CPU for eight slots a day, with the
/// burst windows disjoint across applications.
///
/// Normal mode is strict (no degradation), so each burst requests
/// `2 × 6.9 = 13.8` CPU. Two applications per 16-CPU server fit
/// (`13.8 + 2.0 = 15.8`), but a third pushes a burst slot to
/// `17.8` CPU and the measured access probability to `16/17.8 ≈ 0.899`,
/// below the pool's `θ = 0.95` — so normal mode needs one server per pair.
/// Failure mode allows 3% degradation at `U_degr = 0.9`, capping the burst
/// request at `2 × 6.9 × 0.66/0.9 ≈ 10.1` CPU, so three (even four)
/// applications share a survivor — every single failure is supported.
fn bursty_fleet(n: usize) -> Vec<AppSpec> {
    let calendar = Calendar::five_minute();
    let slots = calendar.slots_per_week();
    let per_day = calendar.slots_per_day();
    let policy = QosPolicy {
        normal: AppQos::strict(UtilizationBand::paper_default()),
        failure: AppQos::paper_default(None),
    };
    (0..n)
        .map(|i| {
            let samples: Vec<f64> = (0..slots)
                .map(|t| {
                    let tod = t % per_day;
                    if (i * 8..(i + 1) * 8).contains(&tod) {
                        6.9
                    } else {
                        1.0
                    }
                })
                .collect();
            AppSpec::new(
                format!("bursty-{i}"),
                Trace::from_samples(calendar, samples).unwrap(),
                policy,
            )
        })
        .collect()
}

/// Supported direction of the static-vs-dynamic equivalence: for every
/// single-server failure case the planner marks supported, a replay of
/// that failure over the whole horizon keeps every application within its
/// failure-mode QoS contract.
#[test]
fn replay_reproduces_supported_static_verdicts() {
    let apps = bursty_fleet(6);
    let horizon = apps[0].demand().len();
    let fw = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.95, 60).unwrap()))
        .options(ConsolidationOptions::fast(1))
        .failure_scope(FailureScope::AllApplications)
        .build();
    let plan = fw.plan(&apps).unwrap();
    assert_eq!(
        plan.normal_placement.servers_used, 3,
        "strict normal mode must spread the fleet two-per-server"
    );
    assert!(
        plan.failure_analysis.all_supported(),
        "failure-mode caps must let the survivors absorb any one server"
    );

    for case in &plan.failure_analysis.cases {
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: case.failed_server,
            start: 0,
            duration: horizon,
        }])
        .unwrap();
        // shed_immediately reproduces the planner's audit semantics
        // exactly: no carried-over demand perturbs the grants.
        let report = fw
            .chaos_replay_on(
                &apps,
                &plan.normal_placement,
                &schedule,
                DegradationPolicy::shed_immediately(),
            )
            .unwrap();
        assert_eq!(report.degraded_slots, horizon);
        assert!(
            report.all_degraded_compliant(),
            "server {} is statically supported but replay found violators: {:?}",
            case.failed_server,
            report.degraded_violators()
        );
    }
}

/// Unsupported direction: a fleet whose survivors cannot absorb a failure
/// is flagged by the static planner, and the replay of that failure
/// produces a failure-mode QoS violation.
#[test]
fn replay_reproduces_unsupported_static_verdicts() {
    // Three constant 7.8-CPU applications on 16-CPU servers: one app per
    // server in normal mode (allocation 15.6 each), but two apps on one
    // survivor would need 31.2 CPU — statically unsupported.
    let calendar = Calendar::five_minute();
    let slots = calendar.slots_per_week();
    let apps: Vec<AppSpec> = (0..3)
        .map(|i| {
            AppSpec::new(
                format!("constant-{i}"),
                Trace::constant(calendar, 7.8, slots).unwrap(),
                policy(),
            )
        })
        .collect();
    let fw = framework(1, 1);
    let plan = fw.plan(&apps).unwrap();
    assert_eq!(plan.normal_placement.servers_used, 3);
    assert!(
        plan.failure_analysis.spare_needed(),
        "two 15.6-CPU allocations cannot share a 16-CPU survivor"
    );

    let case = plan
        .failure_analysis
        .cases
        .iter()
        .find(|c| !c.is_supported())
        .expect("an unsupported case must exist");
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: case.failed_server,
        start: 0,
        duration: slots,
    }])
    .unwrap();
    let report = fw
        .chaos_replay_on(
            &apps,
            &plan.normal_placement,
            &schedule,
            DegradationPolicy::shed_immediately(),
        )
        .unwrap();
    // Best-effort packing doubled up two apps on one survivor; their
    // utilization of allocation (7.8 of a ~8-CPU share) breaks U_degr.
    assert!(
        !report.windows[0].feasible,
        "replay must fall back to best-effort packing"
    );
    assert!(
        !report.all_degraded_compliant(),
        "replay must surface the statically-predicted violation"
    );
    assert!(!report.degraded_violators().is_empty());
}

/// Recovery metrics: a mid-week outage with carry-over defers demand and
/// drains it after repair within the deadline.
#[test]
fn carry_over_defers_and_recovers() {
    let apps = case_study_apps(6);
    let horizon = apps[0].demand().len();
    let fw = framework(9, 1);
    let placement = fw.plan_normal_only(&apps).unwrap();
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: placement.servers[0].server,
        start: horizon / 3,
        duration: 36,
    }])
    .unwrap();
    let report = fw
        .chaos_replay_on(&apps, &placement, &schedule, DegradationPolicy::default())
        .unwrap();
    assert_eq!(report.windows.len(), 1);
    assert_eq!(report.degraded_slots, 36);
    // Accounting closes per app.
    for a in &report.apps {
        let balance = a.served_total() + a.shed + a.backlog_remaining;
        assert!((balance - a.demand_total).abs() < 1e-6, "{}", a.name);
    }
    // Every displaced application comes home after repair; the re-pack
    // may also shuffle unaffected applications, and a blackout (no
    // survivors) displaces without a countable outbound move, so the
    // exact total is placement-dependent.
    let displaced = report.windows[0].displaced;
    assert!(displaced > 0);
    assert!(report.migrations_total >= displaced);
    assert_eq!(report.windows[0].migrations, report.migrations_total);
    // The window reports a recovery time when the backlog drains.
    if let Some(recovery) = report.windows[0].recovery_slots {
        assert!(recovery <= report.deadline_slots);
    }
}

/// An engineered mid-week outage must surface in the replay's SLO
/// summary: per-app attainment for the whole fleet, and at least one
/// multi-window burn-rate alert that fires while planned degradation
/// spends strict apps' (empty) error budgets, then clears after the
/// windows cool.
#[test]
fn replay_surfaces_slo_attainment_and_burn_alerts() {
    let apps = bursty_fleet(6);
    let horizon = apps[0].demand().len();
    let fw = Framework::builder()
        .server(ServerSpec::sixteen_way())
        .commitments(PoolCommitments::new(CosSpec::new(0.95, 60).unwrap()))
        .options(ConsolidationOptions::fast(1))
        .failure_scope(FailureScope::AllApplications)
        .build();
    let plan = fw.plan(&apps).unwrap();
    // Six hours of outage starting at day two: every app's daily burst
    // window falls inside it, so each one runs capped at least once.
    let schedule = FailureSchedule::scripted(vec![FailureEvent {
        server: plan.failure_analysis.cases[0].failed_server,
        start: 288,
        duration: 72,
    }])
    .unwrap();
    let report = fw
        .chaos_replay_on(
            &apps,
            &plan.normal_placement,
            &schedule,
            DegradationPolicy::shed_immediately(),
        )
        .unwrap();

    let slo = report
        .slo
        .as_ref()
        .expect("replay always attaches an SLO summary");
    assert_eq!(slo.apps.len(), apps.len(), "attainment covers the fleet");
    for app in &slo.apps {
        assert_eq!(app.samples, horizon, "{}: whole-horizon coverage", app.app);
        assert!(
            app.degraded_slots <= 72,
            "{}: degradation is outage-bound",
            app.app
        );
    }
    assert!(
        !slo.all_attained(),
        "strict contracts cannot attain through a capped burst: {:?}",
        slo.apps
    );

    assert!(slo.any_fired(), "the outage must page: {:?}", slo.alerts);
    let fire = slo
        .alerts
        .iter()
        .find(|a| a.kind == AlertKind::Fire)
        .unwrap();
    assert!(
        (288..360).contains(&fire.slot),
        "first fire lands inside the outage, got slot {}",
        fire.slot
    );
    assert!(
        fire.rule == "slo.burn.fast" || fire.rule == "slo.burn.slow",
        "unexpected rule {}",
        fire.rule
    );
    assert!(fire.short_burn >= fire.long_burn.min(6.0) || fire.long_burn >= 2.0);
    assert!(
        slo.alerts
            .iter()
            .any(|a| a.kind == AlertKind::Clear && a.slot > fire.slot),
        "windows must cool after the outage: {:?}",
        slo.alerts
    );
    // The summary rides inside the report's JSON for archival.
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"slo\"") && json.contains("\"alerts\""));
}
