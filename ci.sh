#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test
# suite, in the order of fastest feedback first. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xtask lint --self-check"
# The linter proves its own rules still trip before its verdict counts.
cargo run -q -p xtask -- lint --self-check

echo "==> xtask lint"
# Exit 2 means rule violations, exit 1 means the analyzer itself broke;
# both fail CI but are reported distinctly. The JSON and SARIF reports
# are left under target/lint/ as artifacts for editors and code hosts.
mkdir -p target/lint
LINT_STATUS=0
cargo run -q -p xtask -- lint --format json > target/lint/lint.json || LINT_STATUS=$?
cargo run -q -p xtask -- lint --format sarif > target/lint/lint.sarif || true
case "$LINT_STATUS" in
    0) ;;
    2) echo "xtask lint: rule violations (see target/lint/lint.json)"; exit 2 ;;
    *) echo "xtask lint: analyzer internal error (exit $LINT_STATUS)"; exit 1 ;;
esac

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos replay smoke"
cargo run --release -q -p ropus --example chaos_replay > /dev/null

echo "==> obs smoke"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -q -p ropus-cli -- generate \
    --out "$OBS_TMP/traces.csv" --policy "$OBS_TMP/policy.json"
cargo run --release -q -p ropus-cli -- chaos \
    --traces "$OBS_TMP/traces.csv" --policy "$OBS_TMP/policy.json" \
    --fast --obs "json:$OBS_TMP/obs.json" > /dev/null
for key in '"spans"' '"events"' '"counters"' '"gauges"' '"histograms"'; do
    grep -q "$key" "$OBS_TMP/obs.json" \
        || { echo "obs.json is missing top-level key $key"; exit 1; }
done
# obs-report re-parses the snapshot through serde; a span every pipeline
# records must show up in the digest.
cargo run --release -q -p ropus-cli -- obs-report --file "$OBS_TMP/obs.json" \
    | grep -q "pipeline.consolidate"

echo "==> serve smoke"
# Drive a scripted admit/tick/depart session through the daemon twice —
# serially and on four refresh threads — and require byte-identical
# responses: the online plan must be a pure function of the command
# stream, never of scheduling.
SERVE_SCRIPT='{"cmd":"admit","name":"web","level":3.0}
{"cmd":"admit","name":"db","level":5.0}
{"cmd":"tick"}
{"cmd":"admit","name":"batch","level":4.0}
{"cmd":"depart","name":"web"}
{"cmd":"tick","slots":2}
{"cmd":"snapshot"}
{"cmd":"shutdown"}'
printf '%s\n' "$SERVE_SCRIPT" | cargo run --release -q -p ropus-cli -- serve \
    --policy "$OBS_TMP/policy.json" --threads 1 > "$OBS_TMP/serve-1.jsonl"
printf '%s\n' "$SERVE_SCRIPT" | cargo run --release -q -p ropus-cli -- serve \
    --policy "$OBS_TMP/policy.json" --threads 4 > "$OBS_TMP/serve-4.jsonl"
diff "$OBS_TMP/serve-1.jsonl" "$OBS_TMP/serve-4.jsonl" \
    || { echo "serve responses differ across --threads"; exit 1; }
grep -q '"decision":"accepted"' "$OBS_TMP/serve-1.jsonl" \
    || { echo "serve smoke admitted nothing"; exit 1; }
grep -q '"plan"' "$OBS_TMP/serve-1.jsonl" \
    || { echo "serve snapshot carried no plan"; exit 1; }
grep -q '"stats"' "$OBS_TMP/serve-1.jsonl" \
    || { echo "serve shutdown carried no stats"; exit 1; }
# The daemon's live plan must equal a batch consolidation of the same
# demand: admit two constant apps online, consolidate the identical
# traces offline, and compare the plans (engine stats excluded — cache
# tallies legitimately differ between the two paths).
python3 - "$OBS_TMP" <<'PYEOF'
import sys
t = sys.argv[1]
with open(f"{t}/serve-batch.csv", "w") as f:
    f.write("web,cache\n")
    f.writelines("3.0,2.0\n" for _ in range(2016))
PYEOF
printf '%s\n' \
    '{"cmd":"admit","name":"web","level":3.0}' \
    '{"cmd":"admit","name":"cache","level":2.0}' \
    '{"cmd":"tick"}' \
    '{"cmd":"snapshot"}' \
    '{"cmd":"shutdown"}' \
    | cargo run --release -q -p ropus-cli -- serve \
        --policy "$OBS_TMP/policy.json" > "$OBS_TMP/serve-snap.jsonl"
cargo run --release -q -p ropus-cli -- consolidate \
    --traces "$OBS_TMP/serve-batch.csv" --policy "$OBS_TMP/policy.json" \
    --fast --json > "$OBS_TMP/serve-batch.json"
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
t = sys.argv[1]
snap = None
for line in open(f"{t}/serve-snap.jsonl"):
    obj = json.loads(line)
    if obj.get("cmd") == "snapshot":
        snap = obj["plan"]
batch = json.load(open(f"{t}/serve-batch.json"))
for d in (snap, batch):
    d.pop("stats", None)
    d.pop("obs", None)
if snap != batch:
    print("serve snapshot diverged from the batch plan")
    print("serve:", json.dumps(snap, sort_keys=True))
    print("batch:", json.dumps(batch, sort_keys=True))
    sys.exit(1)
PYEOF

echo "==> subscribe smoke"
# An engineered burst fleet streamed over the subscribe protocol: a
# contiguous 50-slot burst (2.5% of the week — inside the weekly error
# budget, but concentrated enough to saturate the fast-burn short
# window) must fire a burn-rate alert mid-burst and clear after it
# passes, and the full interleaved response+telemetry stream must be
# byte-identical across --threads. The stream is archived under
# target/bench/ as a CI artifact.
mkdir -p target/bench
python3 - "$OBS_TMP" <<'PYEOF'
import json, sys
t = sys.argv[1]
# Drop the T_degr limit: with it, translation would raise the burst
# app's allocation to cover the long run, and no slot would degrade.
with open(f"{t}/policy.json") as f:
    policy = json.load(f)
policy["normal"]["degradation"]["time_limit_minutes"] = None
with open(f"{t}/subscribe-policy.json", "w") as f:
    json.dump(policy, f)
samples = [3.2 if 100 <= s < 150 else 2.0 for s in range(2016)]
with open(f"{t}/subscribe-script.jsonl", "w") as f:
    f.write('{"cmd":"admit","name":"steady","level":2.0}\n')
    f.write('{"cmd":"subscribe"}\n')
    f.write(json.dumps({"cmd": "admit", "name": "bursty", "samples": samples}) + "\n")
    f.write('{"cmd":"tick","slots":200}\n')
    f.write('{"cmd":"shutdown"}\n')
PYEOF
cargo run --release -q -p ropus-cli -- serve \
    --policy "$OBS_TMP/subscribe-policy.json" --obs det --threads 1 \
    < "$OBS_TMP/subscribe-script.jsonl" > target/bench/subscribe_smoke.jsonl
cargo run --release -q -p ropus-cli -- serve \
    --policy "$OBS_TMP/subscribe-policy.json" --obs det --threads 4 \
    < "$OBS_TMP/subscribe-script.jsonl" > "$OBS_TMP/subscribe-4.jsonl"
diff target/bench/subscribe_smoke.jsonl "$OBS_TMP/subscribe-4.jsonl" \
    || { echo "subscribe stream differs across --threads"; exit 1; }
# ropus watch must render the archived stream without choking on any line.
cargo run --release -q -p ropus-cli -- watch \
    --file target/bench/subscribe_smoke.jsonl --quiet \
    > "$OBS_TMP/subscribe-render.txt"
grep -q "ALERT" "$OBS_TMP/subscribe-render.txt" \
    || { echo "ropus watch rendered no alert line"; exit 1; }
python3 - <<'PYEOF'
import json
fire = clear = None
deltas = events = 0
for line in open("target/bench/subscribe_smoke.jsonl"):
    obj = json.loads(line)
    kind = obj.get("kind")
    if kind == "watch.stream.alert":
        alert = obj["alert"]
        if alert["kind"] == "Fire" and fire is None:
            fire = alert
        elif alert["kind"] == "Clear" and fire is not None and clear is None:
            clear = alert
    elif kind == "watch.stream.delta":
        deltas += 1
    elif kind == "watch.stream.event":
        events += 1
if events == 0:
    raise SystemExit("subscribe streamed no lifecycle events")
if deltas == 0:
    raise SystemExit("subscribe streamed no metric deltas")
if fire is None or clear is None:
    raise SystemExit("burn-rate alert did not fire and clear")
if not 100 <= fire["slot"] < 150:
    raise SystemExit(f"alert fired outside the burst: slot {fire['slot']}")
if not 150 <= clear["slot"] <= 200:
    raise SystemExit(f"alert cleared before the burst ended: slot {clear['slot']}")
print(
    f"subscribe smoke: {fire['rule']} fired at slot {fire['slot']} "
    f"(burn {fire['short_burn']:.1f}x/{fire['long_burn']:.1f}x), "
    f"cleared at slot {clear['slot']}; {events} events, {deltas} deltas"
)
PYEOF

echo "==> migration smoke"
# Storm-recovery gate: a 50-app fleet loses two servers back to back,
# and every re-placement is driven through the migration state machine.
# The capped run must pace the wave under its storm limits, stay
# byte-identical across --threads, and still commit moves; the summary
# JSONs are archived under target/bench/ as CI artifacts.
mkdir -p target/bench
cargo run --release -q -p ropus-cli -- generate \
    --out "$OBS_TMP/mig-traces.csv" --policy "$OBS_TMP/mig-policy.json" \
    --apps 50 --weeks 1
MIG_FLAGS=(--traces "$OBS_TMP/mig-traces.csv" --policy "$OBS_TMP/mig-policy.json" \
    --fast --fail 0@100+60,1@160+60 --json)
cargo run --release -q -p ropus-cli -- chaos "${MIG_FLAGS[@]}" \
    --migrate --max-inflight 2 --max-inflight-server 1 --threads 1 \
    > target/bench/migration_smoke_capped.json
cargo run --release -q -p ropus-cli -- chaos "${MIG_FLAGS[@]}" \
    --migrate --max-inflight 2 --max-inflight-server 1 --threads 4 \
    > "$OBS_TMP/mig-capped-4.json"
diff target/bench/migration_smoke_capped.json "$OBS_TMP/mig-capped-4.json" \
    || { echo "migration replay differs across --threads"; exit 1; }
cargo run --release -q -p ropus-cli -- chaos "${MIG_FLAGS[@]}" --migrate \
    > target/bench/migration_smoke_open.json
python3 - <<'PYEOF'
import json
capped = json.load(open("target/bench/migration_smoke_capped.json"))["migration"]
opened = json.load(open("target/bench/migration_smoke_open.json"))["migration"]
if capped["peak_in_flight"] > 2:
    raise SystemExit(f"storm cap breached: peak {capped['peak_in_flight']} > 2")
if capped["committed"] == 0 or opened["committed"] == 0:
    raise SystemExit("migration smoke committed no moves")
if opened["peak_in_flight"] > 2 and capped["deferred_slots"] == 0:
    raise SystemExit("storm caps bound the wave but deferred nothing")
print(
    f"migration smoke: capped peak {capped['peak_in_flight']} "
    f"({capped['committed']} committed, {capped['deferred_slots']} deferred) "
    f"vs open peak {opened['peak_in_flight']} ({opened['committed']} committed)"
)
PYEOF

echo "==> fleet_10k smoke"
# One-shot timing of the 10,000-app × 4-week plan (and the 50-app
# reference pipeline) against a generous wall-clock budget; the
# machine-readable summary is archived under target/bench/ so the
# performance trajectory is a CI artifact alongside the lint reports.
cargo run --release -q -p ropus-bench --bin fleet_smoke
test -s target/bench/fleet_10k_smoke.json \
    || { echo "fleet_smoke left no bench summary"; exit 1; }

echo "==> obs_overhead smoke"
# The SLO engine's cost at fleet scale: a 10k-app week replay with the
# collector off vs deterministic must stay under the < 3% overhead
# budget (min of 5 interleaved repeats; the summary is archived).
cargo run --release -q -p ropus-bench --bin obs_overhead
test -s target/bench/obs_overhead_10k.json \
    || { echo "obs_overhead left no bench summary"; exit 1; }

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "CI OK"
