#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test
# suite, in the order of fastest feedback first. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xtask lint"
cargo run -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos replay smoke"
cargo run --release -q -p ropus --example chaos_replay > /dev/null

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "CI OK"
