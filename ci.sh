#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test
# suite, in the order of fastest feedback first. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xtask lint"
cargo run -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos replay smoke"
cargo run --release -q -p ropus --example chaos_replay > /dev/null

echo "==> obs smoke"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -q -p ropus-cli -- generate \
    --out "$OBS_TMP/traces.csv" --policy "$OBS_TMP/policy.json"
cargo run --release -q -p ropus-cli -- chaos \
    --traces "$OBS_TMP/traces.csv" --policy "$OBS_TMP/policy.json" \
    --fast --obs "json:$OBS_TMP/obs.json" > /dev/null
for key in '"spans"' '"events"' '"counters"' '"gauges"' '"histograms"'; do
    grep -q "$key" "$OBS_TMP/obs.json" \
        || { echo "obs.json is missing top-level key $key"; exit 1; }
done
# obs-report re-parses the snapshot through serde; a span every pipeline
# records must show up in the digest.
cargo run --release -q -p ropus-cli -- obs-report --file "$OBS_TMP/obs.json" \
    | grep -q "pipeline.consolidate"

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "CI OK"
