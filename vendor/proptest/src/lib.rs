//! Offline stand-in for `proptest`.
//!
//! The real `proptest` crate is unavailable in this build environment, so
//! this crate implements the subset of its surface the workspace uses:
//! [`strategy::Strategy`] with `prop_map`, numeric range strategies, tuple
//! strategies, [`collection::vec`], [`option::of`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Deliberate simplifications relative to real proptest:
//!
//! * inputs are drawn from a fixed-seed deterministic generator, so runs
//!   are reproducible but there is no persistence file;
//! * there is no shrinking — a failing case reports the assertion message
//!   from the raw generated inputs;
//! * `prop_assert*` panic (like `assert*`) instead of returning `Err`.

pub mod test_runner {
    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated input cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic pseudo-random generator (SplitMix64) used to drive
    /// strategies. Each test case gets a distinct, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An rng whose stream is a pure function of `seed`.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The rng for the `case`-th input of a property run.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            Self::from_seed(0x00be_50b5_7ee1_f00d ^ case.wrapping_mul(0xA24B_AED4_963E_E407))
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy generating `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            self.start() + unit * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + rng.next_below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end() - self.start()) as u64 + 1;
                    self.start() + rng.next_below(span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Admissible lengths for a [`vec()`] strategy: `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.end > range.start, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy yielding `None` for about a quarter of cases and
    /// `Some` of the inner strategy's value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]`-style function running `body` over
/// `config.cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property over generated inputs; panics on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality of two expressions over generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality of two expressions over generated inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

pub mod prelude {
    //! One-stop import for property tests.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the crate root, as in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 1.5f64..9.5,
            y in 0.0f64..=1.0,
            n in 3u32..10,
            v in crate::collection::vec(0.0f64..2.0, 1..5),
            o in prop::option::of(1u32..4),
        ) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!((3..10).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|e| (0.0..2.0).contains(e)));
            if let Some(k) = o {
                prop_assert!((1..4).contains(&k));
            }
        }

        #[test]
        fn prop_map_applies(
            pair in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((0.0..2.0).contains(&pair));
        }
    }
}
