//! Offline stand-in for `criterion`.
//!
//! The real `criterion` crate is unavailable in this build environment, so
//! this crate implements the subset of its surface the workspace's benches
//! use: [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of statistical sampling and HTML reports, each benchmark is
//! warmed up briefly, timed over a fixed iteration budget, and its mean
//! wall-clock time per iteration printed to stdout. `--bench` and filter
//! arguments passed by `cargo bench` are accepted; running a subset by
//! name filter is supported.

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier, printed as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(param)) => write!(f, "{func}/{param}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(param)) => f.write_str(param),
            (None, None) => f.write_str("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

fn human(duration: Duration) -> String {
    let nanos = duration.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

const WARM_UP: Duration = Duration::from_millis(300);
const TARGET: Duration = Duration::from_secs(1);

fn run_benchmark<F: FnMut(&mut Bencher<'_>)>(name: &str, filter: Option<&str>, mut routine: F) {
    if let Some(needle) = filter {
        if !name.contains(needle) {
            return;
        }
    }
    // Warm-up: discover the per-iteration cost so the measurement pass can
    // size its iteration count to the time target.
    let mut elapsed = Duration::ZERO;
    let mut iters = 1u64;
    let warm_up_start = Instant::now();
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: &mut elapsed,
        };
        routine(&mut bencher);
        if warm_up_start.elapsed() >= WARM_UP {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let measured_iters = if per_iter > 0.0 {
        ((TARGET.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1_000_000_000)
    } else {
        1_000_000
    };
    let mut bencher = Bencher {
        iters: measured_iters,
        elapsed: &mut elapsed,
    };
    routine(&mut bencher);
    let mean = elapsed.as_secs_f64() / measured_iters as f64;
    println!(
        "{name:<60} time: {:>12}   ({measured_iters} iterations)",
        human(Duration::from_secs_f64(mean))
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes iteration counts
    /// from a wall-clock target, so the sample count is not used.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_benchmark(&name, self.criterion.filter.as_deref(), routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let name = format!("{}/{}", self.name, id.into());
        run_benchmark(&name, self.criterion.filter.as_deref(), |b| {
            routine(b, input);
        });
        self
    }

    /// Ends the group. (No summary output in the stand-in.)
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with flags such as `--bench`;
        // the first free argument, if any, is a name filter.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Returns `self`; configuration hook kept for API compatibility.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks `routine` as a stand-alone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.into().to_string();
        run_benchmark(&name, self.filter.as_deref(), routine);
        self
    }
}

/// Collects benchmark functions into a group runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $function(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching real criterion's `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("name").to_string(), "name");
    }

    #[test]
    fn human_units() {
        assert!(human(Duration::from_nanos(500)).ends_with("ns"));
        assert!(human(Duration::from_micros(500)).ends_with("µs"));
        assert!(human(Duration::from_millis(500)).ends_with("ms"));
        assert!(human(Duration::from_secs(5)).ends_with('s'));
    }
}
