//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate's `Value` data model, without `syn`/`quote`: the
//! item is parsed directly from the token stream and the impl is emitted as
//! source text.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * named-field structs;
//! * enums with unit and named-field variants (externally tagged);
//! * container attribute `#[serde(try_from = "Type")]`;
//! * field attributes `#[serde(default)]`, `#[serde(default = "path")]`,
//!   and `#[serde(skip_serializing_if = "path")]`.
//!
//! Anything else (tuple structs, generics, other attributes) panics at
//! compile time with a clear message rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field default policy parsed from `#[serde(default ...)]`.
#[derive(Clone)]
enum FieldDefault {
    /// No default: missing fields go through `Deserialize::missing_field`.
    None,
    /// `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    ty: String,
    default: FieldDefault,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`.
    skip_serializing_if: Option<String>,
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
    try_from: Option<String>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut push = String::new();
            for f in fields {
                let line = format!(
                    "fields.push((String::from(\"{n}\"), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                );
                match &f.skip_serializing_if {
                    Some(pred) => {
                        push.push_str(&format!("if !{pred}(&self.{n}) {{\n{line}}}\n", n = f.name))
                    }
                    None => push.push_str(&line),
                }
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n{push}::serde::Value::Object(fields)"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{ty}::{var} => ::serde::Value::String(String::from(\"{var}\")),\n",
                        ty = item.name,
                        var = v.name
                    )),
                    Some(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut push = String::new();
                        for f in fields {
                            let line = format!(
                                "inner.push((String::from(\"{n}\"), ::serde::Serialize::serialize({n})));\n",
                                n = f.name
                            );
                            match &f.skip_serializing_if {
                                Some(pred) => push.push_str(&format!(
                                    "if !{pred}({n}) {{\n{line}}}\n",
                                    n = f.name
                                )),
                                None => push.push_str(&line),
                            }
                        }
                        arms.push_str(&format!(
                            "{ty}::{var} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {push}\
                             ::serde::Value::Object(vec![(String::from(\"{var}\"), ::serde::Value::Object(inner))])\n\
                             }},\n",
                            ty = item.name,
                            var = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let output = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        name = item.name
    );
    output.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = if let Some(raw) = &item.try_from {
        format!(
            "let raw: {raw} = ::serde::Deserialize::deserialize(value)?;\n\
             ::core::convert::TryFrom::try_from(raw).map_err(::serde::Error::custom)"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) => struct_deserialize_body(&item.name, &item.name, fields),
            Kind::Enum(variants) => enum_deserialize_body(&item.name, variants),
        }
    };
    let output = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n",
        name = item.name
    );
    output.parse().expect("generated Deserialize impl parses")
}

/// Emits the body constructing `path { ... }` from an object `value`.
fn struct_deserialize_body(type_name: &str, path: &str, fields: &[Field]) -> String {
    let mut init = String::new();
    for f in fields {
        let missing = match &f.default {
            FieldDefault::None => format!(
                "<{ty} as ::serde::Deserialize>::missing_field(\"{n}\")?",
                ty = f.ty,
                n = f.name
            ),
            FieldDefault::Std => "::core::default::Default::default()".to_string(),
            FieldDefault::Path(p) => format!("{p}()"),
        };
        init.push_str(&format!(
            "{n}: match obj.iter().find(|(k, _)| k == \"{n}\") {{\n\
             Some((_, v)) => ::serde::Deserialize::deserialize(v)?,\n\
             None => {missing},\n\
             }},\n",
            n = f.name
        ));
    }
    format!(
        "let obj = value.as_object().ok_or_else(|| \
         ::serde::Error::custom(\"expected an object for `{type_name}`\"))?;\n\
         Ok({path} {{\n{init}}})"
    )
}

fn enum_deserialize_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!("\"{var}\" => Ok({name}::{var}),\n", var = v.name)),
            Some(fields) => {
                let body =
                    struct_deserialize_body(name, &format!("{name}::{var}", var = v.name), fields);
                tagged_arms.push_str(&format!(
                    "\"{var}\" => {{\nlet value = inner;\n{body}\n}},\n",
                    var = v.name
                ));
            }
        }
    }
    format!(
        "match value {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
         }},\n\
         ::serde::Value::Object(o) if o.len() == 1 => {{\n\
         let (tag, inner) = &o[0];\n\
         match tag.as_str() {{\n\
         {tagged_arms}\
         other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for `{name}`\"))),\n\
         }}\n\
         }},\n\
         _ => Err(::serde::Error::custom(\"expected a variant string or single-key object for `{name}`\")),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;

    // Outer attributes (doc comments arrive as attributes too).
    while i + 1 < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                if let TokenTree::Group(g) = &tokens[i + 1] {
                    scan_serde_attr(g.stream(), |key, val| {
                        if key == "try_from" {
                            try_from = val;
                        }
                    });
                }
                i += 2;
                continue;
            }
        }
        break;
    }

    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stand-in does not support generic type `{name}`");
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde derive stand-in expects a braced {keyword} body for `{name}`, found {other:?}"
        ),
    };

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde derive stand-in cannot derive for `{other}` items"),
    };
    Item {
        name,
        kind,
        try_from,
    }
}

/// Parses named fields from a brace-group stream.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = parse_field_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        expect_punct(&tokens, &mut i, ':');
        // Type tokens run to the next comma outside angle brackets.
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        fields.push(Field {
            name,
            ty,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let _ = parse_field_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive stand-in does not support tuple variant `{name}`");
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else {
                panic!("unexpected token after variant `{name}`");
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Field attributes gathered from the `#[serde(...)]` entries on a field.
struct FieldAttrs {
    default: FieldDefault,
    skip_serializing_if: Option<String>,
}

/// Consumes leading attributes, returning the field policies found in any
/// `#[serde(...)]` among them.
fn parse_field_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs {
        default: FieldDefault::None,
        skip_serializing_if: None,
    };
    while *i + 1 < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            if p.as_char() == '#' {
                if let TokenTree::Group(g) = &tokens[*i + 1] {
                    scan_serde_attr(g.stream(), |key, val| match key {
                        "default" => {
                            attrs.default = match val {
                                Some(path) => FieldDefault::Path(path),
                                None => FieldDefault::Std,
                            };
                        }
                        "skip_serializing_if" => attrs.skip_serializing_if = val,
                        _ => {}
                    });
                }
                *i += 2;
                continue;
            }
        }
        break;
    }
    attrs
}

/// If the bracketed attribute stream is `serde(...)`, reports each
/// `key` / `key = "value"` entry to `found`.
fn scan_serde_attr(stream: TokenStream, mut found: impl FnMut(&str, Option<String>)) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let TokenTree::Ident(key) = &args[i] else {
            panic!("unsupported serde attribute shape: {:?}", args[i]);
        };
        let key = key.to_string();
        i += 1;
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = args.get(i) {
            if p.as_char() == '=' {
                i += 1;
                let TokenTree::Literal(lit) = &args[i] else {
                    panic!("expected a string literal in serde attribute `{key}`");
                };
                value = Some(unquote(&lit.to_string()));
                i += 1;
            }
        }
        match key.as_str() {
            "try_from" | "default" | "skip_serializing_if" => found(&key, value),
            other => panic!("serde derive stand-in does not support attribute `{other}`"),
        }
        if let Some(TokenTree::Punct(p)) = args.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

fn unquote(literal: &str) -> String {
    literal.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected an identifier, found {other:?}"),
    }
}

fn expect_punct(tokens: &[TokenTree], i: &mut usize, ch: char) {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ch => *i += 1,
        other => panic!("expected `{ch}`, found {other:?}"),
    }
}
