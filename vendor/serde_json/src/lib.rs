//! Offline stand-in for `serde_json`.
//!
//! Parses and prints JSON text over the vendored `serde` crate's [`Value`]
//! data model. Covers the API surface this workspace uses: [`from_str`],
//! [`to_string`], [`to_string_pretty`], and [`Value`] with indexing and
//! `as_*` accessors.

pub use serde::Value;

use std::fmt;

/// JSON error: a message, with a character position for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    position: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, position: usize) -> Self {
        Error {
            message: message.into(),
            position: Some(position),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(pos) => write!(f, "{} at character {pos}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            message: e.to_string(),
            position: None,
        }
    }
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON, trailing input, or a shape
/// mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    T::deserialize(&value).map_err(Error::from)
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for this implementation; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Infallible for this implementation; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(fields) => write_seq(out, indent, depth, fields.len(), '{', '}', |out, i| {
            write_string(out, &fields[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &fields[i].1, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Writes a finite float using Rust's shortest round-trip (`Debug`)
/// formatting, which keeps a fractional part on integral floats
/// (`2.0`, not `2`), as serde_json does. Non-finite numbers
/// (unrepresentable in JSON) print as `null`.
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        out.push_str(&format!("{n:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{keyword}`"), self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        // A bare integer literal becomes `Int`; anything with a fraction
        // or exponent (or outside i64) becomes a float `Number`.
        if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or(char::REPLACEMENT_CHARACTER));
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": "x\ny"}, "e": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["b"]["d"].as_str(), Some("x\ny"));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_shortest() {
        let xs = vec![0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        // Integral floats keep a fractional part, matching serde_json.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
    }
}
