//! Offline stand-in for `serde`.
//!
//! The real `serde` crate is unavailable in this build environment, so this
//! crate implements the subset of its surface the workspace actually uses:
//! the [`Serialize`] / [`Deserialize`] traits (re-exported together with
//! their derive macros), built on a self-describing [`Value`] data model
//! that `serde_json` renders to and parses from JSON text.
//!
//! Differences from real serde are deliberate simplifications:
//!
//! * the data model is exactly the JSON data model ([`Value`]);
//! * `Serialize::serialize` produces a [`Value`] rather than driving a
//!   `Serializer`;
//! * `Deserialize::deserialize` consumes a `&Value`.
//!
//! Container attributes supported by the derives: `#[serde(try_from =
//! "Type")]`. Field attributes: `#[serde(default)]` and `#[serde(default =
//! "path")]`. `Option` fields are optional on input, as with real serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model: exactly JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON integer numbers. Kept distinct from [`Value::Number`] so
    /// integers print without a fractional part while floats keep one,
    /// as with real serde_json.
    Int(i64),
    /// JSON floating-point numbers.
    Number(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (field list), if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn serialize(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value does not match the expected
    /// shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called for a field absent from its containing object. The default
    /// is an error; `Option` overrides it to produce `None`, matching real
    /// serde's treatment of optional fields.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" [`Error`] unless overridden.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Number(*self as f64),
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| Error::custom(concat!("expected a number for ", stringify!($t))))?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(concat!(
                        "expected an integer for ",
                        stringify!($t)
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(concat!(
                        "number out of range for ",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

macro_rules! impl_tuple_serialize {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
    };
}

impl_tuple_serialize!(A: 0, B: 1);
impl_tuple_serialize!(A: 0, B: 1, C: 2);
impl_tuple_serialize!(A: 0, B: 1, C: 2, D: 3);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        assert_eq!(Option::<u32>::missing_field("x"), Ok(None));
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["b"].is_null());
    }

    #[test]
    fn number_bounds_checked() {
        assert!(u8::deserialize(&Value::Number(300.0)).is_err());
        assert!(u8::deserialize(&Value::Number(3.5)).is_err());
        assert_eq!(u8::deserialize(&Value::Number(3.0)), Ok(3));
    }
}
