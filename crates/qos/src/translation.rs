//! The QoS translation: mapping an application's demand trace onto the
//! pool's two classes of service (§V of the paper, steps 1–3).
//!
//! Given a demand trace, the application QoS requirement, and the pool's
//! CoS2 commitment, [`translate`] produces per-class *allocation
//! requirement* traces plus a [`TranslationReport`] with every intermediate
//! the paper discusses: the breakpoint `p`, the demand cap `D_new_max`
//! after the `M_degr` relaxation (formulas 2–3) and after the iterative
//! `T_degr` analysis (formulas 6–11), the realized `MaxCapReduction`
//! (formula 4), and the worst-case degraded-measurement statistics that
//! Figs. 7 and 8 report.

use serde::{Deserialize, Serialize};

use ropus_obs::ObsCtx;
use ropus_trace::runs::{first_full_window, min_in_range, runs_where};
use ropus_trace::Trace;

use crate::portfolio::{
    breakpoint, cap_for_degraded_threshold, degraded_threshold, worst_case_utilization,
};
use crate::{AppQos, CosSpec, QosError};

/// Result of translating one application's demand onto the two CoS.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// Allocation requirements placed in the guaranteed class.
    pub cos1: Trace,
    /// Allocation requirements placed in the statistical class.
    pub cos2: Trace,
    /// Every intermediate quantity of the translation.
    pub report: TranslationReport,
}

impl Translation {
    /// Total (CoS1 + CoS2) allocation-requirement trace.
    ///
    /// # Panics
    ///
    /// Never panics: both traces are produced aligned.
    pub fn total_allocation(&self) -> Trace {
        self.cos1
            .checked_add(&self.cos2)
            // lint:allow(panic-expect): `translate` produces cos1 and
            // cos2 from the same demand trace on the same calendar, so
            // the pair is aligned by construction.
            .expect("translation traces are aligned")
    }

    /// Peak of the total allocation-requirement trace — the application's
    /// contribution to the paper's `C_peak` column.
    pub fn peak_allocation(&self) -> f64 {
        self.report.peak_allocation
    }
}

/// Intermediates and outcome statistics of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TranslationReport {
    /// Breakpoint `p` from formula (1).
    pub breakpoint: f64,
    /// Peak demand `D_max` of the input trace.
    pub d_max: f64,
    /// Demand cap after the `M_degr` relaxation only (formulas 2–3).
    pub d_new_max_before_time_limit: f64,
    /// Final demand cap after the `T_degr` trace analysis (formulas 6–11).
    pub d_new_max: f64,
    /// Realized `MaxCapReduction` = `(D_max − D_new_max)/D_max` (formula 4).
    pub max_cap_reduction: f64,
    /// Iterations the `T_degr` analysis needed (0 when no limit applies).
    pub time_limit_iterations: usize,
    /// Fraction of observations that are degraded in the worst case
    /// (CoS2 delivered at exactly `θ`) — the Fig. 8 series.
    pub degraded_fraction: f64,
    /// Longest worst-case degraded episode, in minutes, after enforcement.
    pub longest_degraded_minutes: u32,
    /// Largest number of degraded epochs in any single week.
    pub max_degraded_epochs_per_week: usize,
    /// Worst-case utilization of allocation over the whole trace; bounded
    /// by `U_degr` when a degradation spec is present, else by `U_high`.
    pub max_worst_case_utilization: f64,
    /// Peak of the total requested allocation (`min(D_max, D_new_max)` ×
    /// burst factor).
    pub peak_allocation: f64,
}

/// Translates a demand trace into per-CoS allocation requirements.
///
/// Observability rides the [`ObsCtx`] parameter — pass [`ObsCtx::none`]
/// for a silent run. With a collector attached, the translation emits one
/// `qos.translate.breakpoint` event (the formula-1 `p` and `D_max`) and
/// one `qos.translate.relaxation` event (the `M_degr` cap of formulas
/// 2–3, the final cap after the `T_degr`/epoch-budget analyses of
/// formulas 6–11, and the iteration count), and bumps the
/// `qos.translations` counter.
///
/// # Errors
///
/// Returns [`QosError::DegradedBelowHigh`] for inconsistent requirements
/// and [`QosError::TimeLimitDiverged`] if the iterative analysis fails to
/// converge (which would indicate a bug, not bad input).
///
/// # Example
///
/// ```
/// use ropus_obs::ObsCtx;
/// use ropus_qos::{AppQos, CosSpec};
/// use ropus_qos::translation::translate;
/// use ropus_trace::{Calendar, Trace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let demand = Trace::from_samples(Calendar::five_minute(), vec![1.0; 2016])?;
/// let t = translate(
///     &demand,
///     &AppQos::paper_default(None),
///     &CosSpec::new(0.6, 60)?,
///     ObsCtx::none(),
/// )?;
/// // Constant demand: everything below the cap, utilization within band.
/// assert!(t.report.max_worst_case_utilization <= 0.66 + 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn translate(
    demand: &Trace,
    qos: &AppQos,
    cos2: &CosSpec,
    obs: ObsCtx<'_>,
) -> Result<Translation, QosError> {
    qos.validate()?;
    let band = qos.band();
    let p = breakpoint(band, cos2);
    let d_max = demand.peak();

    // Step 2 (formulas 2-3): the M_degr percentile relaxation.
    let d_cap_mdegr = demand_cap(demand, qos);

    // Step 3 (formulas 6-11): the T_degr contiguous-time analysis.
    let (mut d_new_max, mut iterations) =
        match qos.degradation().and_then(|d| d.time_limit_minutes()) {
            Some(minutes) if d_max > 0.0 => {
                enforce_time_limit(demand, qos, cos2, d_cap_mdegr, minutes)?
            }
            _ => (d_cap_mdegr, 0),
        };

    // Footnote-2 extension: budget on degraded epochs per week.
    if let Some(budget) = qos.degradation().and_then(|d| d.max_epochs_per_week()) {
        if d_max > 0.0 {
            let (cap, extra) = enforce_epoch_budget(demand, qos, cos2, d_new_max, budget)?;
            d_new_max = cap;
            iterations += extra;
        }
    }

    obs.counter("qos.translations", 1);
    obs.event("qos.translate.breakpoint")
        .with_f64("p", p)
        .with_f64("d_max", d_max)
        .emit();
    obs.event("qos.translate.relaxation")
        .with_f64("m_degr_cap", d_cap_mdegr)
        .with_f64("d_new_max", d_new_max)
        .with_u64("iterations", iterations as u64)
        .emit();

    // Build the per-class allocation-requirement traces.
    let burst_factor = band.burst_factor();
    let calendar = demand.calendar();
    // lint:allow(unit-float-eq): exact zero selects a bit-identical fast
    // path (the breakpoint formula clamps to literal 0.0), not a tolerance
    // comparison — an approximate test would change results.
    let (cos1, cos2_trace) = if p == 0.0 {
        // Below the breakpoint everything rides in CoS2: for every `d`,
        // `split_demand(d, 0, cap)` is `(0, min(d, cap))`, so the class
        // trace is the fused cap-and-scale kernel over the whole demand
        // buffer. `cap_scaled` shares the demand buffer when neither the
        // cap nor the burst factor binds, making this arm allocation-free
        // for already-capped demand instead of materializing two vectors.
        let cos1 = Trace::constant(calendar, 0.0, demand.len())?;
        let cos2_trace = demand.cap_scaled(d_new_max, burst_factor)?;
        (cos1, cos2_trace)
    } else {
        // The columnar CoS-split kernel performs, per slot, exactly the
        // operations of `split_demand` followed by the burst scaling, so
        // this arm is bit-identical to the scalar loop it replaced (the
        // kernel-equivalence proptests pin that down).
        let mut cos1_samples = Vec::with_capacity(demand.len());
        let mut cos2_samples = Vec::with_capacity(demand.len());
        ropus_trace::kernels::split_cos_into(
            demand.samples(),
            p,
            d_new_max,
            burst_factor,
            &mut cos1_samples,
            &mut cos2_samples,
        );
        (
            Trace::from_samples(calendar, cos1_samples)?,
            Trace::from_samples(calendar, cos2_samples)?,
        )
    };

    // Worst-case outcome statistics.
    let threshold = degraded_threshold(band, cos2, d_new_max);
    let degraded_fraction = demand.fraction_above(threshold);
    let longest_run = ropus_trace::runs::longest_run(demand.samples(), |d| d > threshold);
    let longest_degraded_minutes = (longest_run as u32) * calendar.slot_minutes();
    let max_degraded_epochs_per_week = max_epochs_in_any_week(demand, qos, cos2, d_new_max);
    let max_worst_case_utilization = if d_max > 0.0 {
        worst_case_utilization(d_max, band, cos2, d_new_max)
    } else {
        0.0
    };
    let max_cap_reduction = if d_max > 0.0 {
        (d_max - d_new_max) / d_max
    } else {
        0.0
    };
    let peak_allocation = d_max.min(d_new_max) * burst_factor;

    Ok(Translation {
        cos1,
        cos2: cos2_trace,
        report: TranslationReport {
            breakpoint: p,
            d_max,
            d_new_max_before_time_limit: d_cap_mdegr,
            d_new_max,
            max_cap_reduction,
            time_limit_iterations: iterations,
            degraded_fraction,
            longest_degraded_minutes,
            max_degraded_epochs_per_week,
            max_worst_case_utilization,
            peak_allocation,
        },
    })
}

/// The `M_degr` demand cap of formulas (2)–(3).
///
/// With no degradation allowance the cap is `D_max`. Otherwise, if the
/// allocation supporting acceptable performance at the `M`-th percentile
/// (`A_ok = D_M% / U_high`) already covers degraded performance at the peak
/// (`A_degr = D_max / U_degr`), the cap is `D_M%`; otherwise it is the
/// larger `D_max · U_high / U_degr` needed to keep the worst observation at
/// or below `U_degr`.
pub fn demand_cap(demand: &Trace, qos: &AppQos) -> f64 {
    let d_max = demand.peak();
    let Some(degr) = qos.degradation() else {
        return d_max;
    };
    let band = qos.band();
    // Upper nearest-rank percentile: guarantees at most M_degr of the
    // measurements sit strictly above the cap. Translation queries exactly
    // one percentile per demand trace, so the O(len) quickselect kernel
    // beats sorting — and skips populating the trace's sorted cache, which
    // at fleet scale would fault hundreds of MB of cold pages. The kernel
    // returns the same order statistic bit-for-bit.
    let d_m = ropus_trace::kernels::percentile_upper_select(
        demand.samples(),
        degr.acceptable_percentile(),
        &mut Vec::new(),
    );
    let a_ok = d_m / band.high();
    let a_degr = d_max / degr.u_degr();
    if a_ok >= a_degr {
        d_m
    } else {
        d_max * band.high() / degr.u_degr()
    }
}

/// The iterative `T_degr` trace analysis of formulas (6)–(11).
///
/// With `R` observations per `T_degr` minutes, any window of `R + 1`
/// contiguous *degraded* observations (worst-case utilization strictly
/// above `U_high`) violates the time limit. Each iteration finds the first
/// violating window, takes its smallest demand `D_min_degr`, and raises the
/// cap to `D_min_degr · U_low / (U_high · (p(1−θ) + θ))` — the value that
/// puts `D_min_degr` exactly at `U_high`, breaking the run. The cap rises
/// strictly each iteration, so the analysis terminates.
///
/// Returns the final cap and the number of iterations.
///
/// # Errors
///
/// Returns [`QosError::TimeLimitDiverged`] if the analysis somehow fails to
/// make progress (defensive; unreachable for valid inputs).
pub fn enforce_time_limit(
    demand: &Trace,
    qos: &AppQos,
    cos2: &CosSpec,
    initial_cap: f64,
    time_limit_minutes: u32,
) -> Result<(f64, usize), QosError> {
    let band = qos.band();
    let r = demand.calendar().slots_in_minutes(time_limit_minutes);
    let window = r + 1;
    let samples = demand.samples();

    let mut cap = initial_cap;
    let mut iterations = 0usize;
    let max_iterations = samples.len() + 1;

    loop {
        let threshold = degraded_threshold(band, cos2, cap);
        let Some(start) = first_full_window(samples, window, |d| d > threshold) else {
            return Ok((cap, iterations));
        };
        iterations += 1;
        if iterations > max_iterations {
            return Err(QosError::TimeLimitDiverged { iterations });
        }
        let d_min_degr = min_in_range(samples, start, window);
        // Formula (10); with the formula-(1) breakpoint and p > 0 this is
        // exactly d_min_degr, and with p = 0 it is formula (11). Computed
        // via the exact threshold inverse so it cannot disagree with the
        // degraded test by a rounding wobble.
        let candidate = cap_for_degraded_threshold(band, cos2, d_min_degr);
        if candidate <= cap {
            // d_min_degr > threshold guarantees candidate > cap; reaching
            // here means a floating-point degeneracy.
            return Err(QosError::TimeLimitDiverged { iterations });
        }
        cap = candidate;
    }
}

/// Enforcement of the footnote-2 epoch budget: at most
/// `max_epochs_per_week` maximal contiguous degraded runs in any week.
///
/// Raising the cap shrinks the degraded set but can *split* runs, so the
/// epoch count is not monotone in the cap; the analysis therefore
/// eliminates one epoch at a time — always the one with the smallest
/// maximum demand, since removing it costs the least capacity — until
/// every week is within budget. The cap rises strictly each iteration,
/// bounded by the week's peak demand, so the loop terminates.
///
/// Returns the final cap and the number of iterations.
///
/// # Errors
///
/// Returns [`QosError::TimeLimitDiverged`] if no progress is made
/// (defensive; unreachable for valid inputs).
pub fn enforce_epoch_budget(
    demand: &Trace,
    qos: &AppQos,
    cos2: &CosSpec,
    initial_cap: f64,
    max_epochs_per_week: u32,
) -> Result<(f64, usize), QosError> {
    let band = qos.band();
    let per_week = demand.calendar().slots_per_week();
    let mut cap = initial_cap;
    let mut iterations = 0usize;
    let max_iterations = demand.len() + 1;

    loop {
        let threshold = degraded_threshold(band, cos2, cap);
        // The epoch with the smallest maximum among weeks over budget.
        let mut cheapest_epoch_max: Option<f64> = None;
        for week in demand.samples().chunks(per_week) {
            let runs = runs_where(week, |d| d > threshold);
            if runs.len() <= max_epochs_per_week as usize {
                continue;
            }
            for run in runs {
                let run_max = week
                    .get(run.start..run.end())
                    .into_iter()
                    .flatten()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                if cheapest_epoch_max.is_none_or(|m| run_max < m) {
                    cheapest_epoch_max = Some(run_max);
                }
            }
        }
        let Some(run_max) = cheapest_epoch_max else {
            return Ok((cap, iterations));
        };
        iterations += 1;
        if iterations > max_iterations {
            return Err(QosError::TimeLimitDiverged { iterations });
        }
        // Raise the cap so this epoch's peak sits exactly at U_high,
        // eliminating the whole run (every sample in it is <= run_max).
        let candidate = cap_for_degraded_threshold(band, cos2, run_max);
        if candidate <= cap {
            return Err(QosError::TimeLimitDiverged { iterations });
        }
        cap = candidate;
    }
}

/// Maximum number of degraded epochs in any week at the given cap.
pub fn max_epochs_in_any_week(demand: &Trace, qos: &AppQos, cos2: &CosSpec, cap: f64) -> usize {
    let threshold = degraded_threshold(qos.band(), cos2, cap);
    let per_week = demand.calendar().slots_per_week();
    demand
        .samples()
        .chunks(per_week)
        .map(|week| runs_where(week, |d| d > threshold).len())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegradationSpec, UtilizationBand};
    use ropus_trace::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn band() -> UtilizationBand {
        UtilizationBand::new(0.5, 0.66).unwrap()
    }

    fn qos_no_limit() -> AppQos {
        AppQos::new(band(), Some(DegradationSpec::new(0.03, 0.9, None).unwrap()))
    }

    fn qos_strict() -> AppQos {
        AppQos::strict(band())
    }

    fn cos(theta: f64) -> CosSpec {
        CosSpec::new(theta, 60).unwrap()
    }

    /// A trace that is mostly 1.0 with a given fraction of spikes at `spike`.
    fn spiky(len: usize, spike: f64, spike_every: usize) -> Trace {
        let samples: Vec<f64> = (0..len)
            .map(|i| {
                if i % spike_every == spike_every - 1 {
                    spike
                } else {
                    1.0
                }
            })
            .collect();
        Trace::from_samples(cal(), samples).unwrap()
    }

    #[test]
    fn strict_qos_keeps_peak_demand() {
        let t = spiky(2016, 10.0, 100);
        let tr = translate(&t, &qos_strict(), &cos(0.6), ObsCtx::none()).unwrap();
        assert_eq!(tr.report.d_new_max, 10.0);
        assert_eq!(tr.report.max_cap_reduction, 0.0);
        assert_eq!(tr.report.degraded_fraction, 0.0);
        // Peak allocation = D_max * burst factor.
        assert_eq!(tr.report.peak_allocation, 20.0);
        assert!(tr.report.max_worst_case_utilization <= 0.66 + 1e-9);
    }

    #[test]
    fn partition_reassembles_capped_demand() {
        let t = spiky(2016, 10.0, 100);
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        let bf = band().burst_factor();
        let cap = tr.report.d_new_max;
        for (i, d) in t.iter().enumerate() {
            let total = tr.cos1.samples()[i] + tr.cos2.samples()[i];
            let expected = d.min(cap) * bf;
            assert!((total - expected).abs() < 1e-9, "slot {i}");
        }
    }

    #[test]
    fn cos1_share_respects_breakpoint() {
        let t = spiky(2016, 10.0, 100);
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        let p = tr.report.breakpoint;
        let cap = tr.report.d_new_max;
        let bf = band().burst_factor();
        let max_cos1 = tr.cos1.peak();
        assert!((max_cos1 - p * cap * bf).abs() < 1e-9);
    }

    #[test]
    fn high_theta_puts_everything_in_cos2() {
        let t = spiky(2016, 10.0, 100);
        let tr = translate(&t, &qos_no_limit(), &cos(0.95), ObsCtx::none()).unwrap();
        assert_eq!(tr.report.breakpoint, 0.0);
        assert_eq!(tr.cos1.peak(), 0.0);
        assert!(tr.cos2.peak() > 0.0);
    }

    #[test]
    fn mdegr_cap_uses_percentile_when_it_covers_degraded() {
        // 3% of points at 1.3, the rest at 1.0: D_97% = 1.0, A_ok = 1.515,
        // A_degr = 1.3/0.9 = 1.444 -> percentile wins.
        let t = spiky(3000, 1.3, 34);
        let cap = demand_cap(&t, &qos_no_limit());
        let d97 = t.percentile(97.0);
        assert_eq!(cap, d97);
    }

    #[test]
    fn mdegr_cap_uses_degraded_bound_for_tall_spikes() {
        // Spikes of 10x: A_degr = 10/0.9 = 11.1 > A_ok = 1/0.66.
        let t = spiky(3000, 10.0, 100);
        let cap = demand_cap(&t, &qos_no_limit());
        assert!((cap - 10.0 * 0.66 / 0.9).abs() < 1e-9);
        // This is the MaxCapReduction upper bound: 1 - U_high/U_degr.
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        assert!((tr.report.max_cap_reduction - (1.0 - 0.66 / 0.9)).abs() < 1e-9);
    }

    #[test]
    fn degraded_points_stay_below_u_degr() {
        let t = spiky(3000, 10.0, 100);
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        assert!(tr.report.max_worst_case_utilization <= 0.9 + 1e-9);
        assert!(tr.report.degraded_fraction <= 0.03 + 1e-9);
        assert!(tr.report.degraded_fraction > 0.0);
    }

    #[test]
    fn no_degradation_for_flat_demand() {
        let t = Trace::constant(cal(), 2.0, 2016).unwrap();
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        // D_97% == D_max: A_ok = 2/0.66 = 3.03 >= A_degr = 2/0.9 = 2.22.
        assert_eq!(tr.report.d_new_max, 2.0);
        assert_eq!(tr.report.degraded_fraction, 0.0);
    }

    #[test]
    fn time_limit_breaks_long_runs() {
        // A 10-slot (50-minute) plateau at 5.0 in a sea of 1.0, repeated so
        // it lands in the top 3%: the plateau would violate T_degr = 30 min.
        let mut samples = vec![1.0; 2016];
        for s in samples.iter_mut().take(300).skip(290) {
            *s = 5.0;
        }
        let t = Trace::from_samples(cal(), samples).unwrap();
        let qos = AppQos::new(
            band(),
            Some(DegradationSpec::new(0.03, 0.9, Some(30)).unwrap()),
        );
        let no_limit = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        let limited = translate(&t, &qos, &cos(0.6), ObsCtx::none()).unwrap();
        // Without the limit the plateau is entirely degraded (cap below 5).
        assert!(no_limit.report.d_new_max < 5.0);
        assert!(no_limit.report.longest_degraded_minutes > 30);
        // With the limit the cap must rise to cover the plateau.
        assert!(limited.report.d_new_max > no_limit.report.d_new_max);
        assert!(limited.report.longest_degraded_minutes <= 30);
        assert!(limited.report.time_limit_iterations >= 1);
    }

    #[test]
    fn time_limit_with_p_positive_raises_cap_to_run_min() {
        let mut samples = vec![1.0; 2016];
        // Plateau of 7 slots (35 min) with min value 4.0.
        let plateau = [4.5, 4.2, 4.0, 4.8, 5.0, 4.3, 4.6];
        samples[100..107].copy_from_slice(&plateau);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let qos = AppQos::new(
            band(),
            Some(DegradationSpec::new(0.03, 0.9, Some(30)).unwrap()),
        );
        let tr = translate(&t, &qos, &cos(0.6), ObsCtx::none()).unwrap();
        // With p > 0, the paper notes D_new_max = D_min_degr: the smallest
        // demand in the violating window. The 7-slot window min is 4.0.
        assert!(
            (tr.report.d_new_max - 4.0).abs() < 1e-9,
            "cap {}",
            tr.report.d_new_max
        );
    }

    #[test]
    fn time_limit_with_p_zero_uses_formula_eleven() {
        let mut samples = vec![1.0; 2016];
        samples[100..107].fill(4.0);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let qos = AppQos::new(
            band(),
            Some(DegradationSpec::new(0.03, 0.9, Some(30)).unwrap()),
        );
        let theta = 0.95;
        let tr = translate(&t, &qos, &cos(theta), ObsCtx::none()).unwrap();
        // Formula (11): cap = D_min_degr * U_low / (U_high * theta).
        let expected = 4.0 * 0.5 / (0.66 * theta);
        assert!(
            (tr.report.d_new_max - expected).abs() < 1e-9,
            "cap {}",
            tr.report.d_new_max
        );
        // And the plateau is no longer degraded.
        assert!(tr.report.longest_degraded_minutes <= 30);
    }

    #[test]
    fn higher_theta_needs_smaller_cap_under_time_limit() {
        // Fig. 3 / §V: with time-limiting constraints, higher theta yields a
        // smaller maximum allocation.
        let mut samples = vec![1.0; 2016];
        samples[100..110].fill(6.0);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let qos = AppQos::new(
            band(),
            Some(DegradationSpec::new(0.03, 0.9, Some(30)).unwrap()),
        );
        let lo = translate(&t, &qos, &cos(0.6), ObsCtx::none()).unwrap();
        let hi = translate(&t, &qos, &cos(0.95), ObsCtx::none()).unwrap();
        assert!(hi.report.d_new_max < lo.report.d_new_max);
        let reduction = 1.0 - hi.report.d_new_max / lo.report.d_new_max;
        assert!((reduction - 0.2).abs() < 0.03, "reduction {reduction}");
    }

    #[test]
    fn epoch_budget_eliminates_cheapest_epochs_first() {
        // Three separated spikes per week with distinct heights; budget of
        // one epoch per week must keep only the tallest.
        let mut samples = vec![1.0; 2016];
        samples[100..103].fill(3.0);
        samples[500..503].fill(4.0);
        samples[900..903].fill(5.0);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let spec = DegradationSpec::new(0.03, 0.9, None)
            .unwrap()
            .with_epoch_budget(1)
            .unwrap();
        let qos = AppQos::new(band(), Some(spec));
        let tr = translate(&t, &qos, &cos(0.6), ObsCtx::none()).unwrap();
        // With p > 0 the threshold equals the cap: the 3.0 and 4.0 spikes
        // must be below it, the 5.0 spike may stay degraded.
        assert!(
            tr.report.d_new_max >= 4.0 - 1e-9,
            "cap {}",
            tr.report.d_new_max
        );
        assert!(tr.report.d_new_max < 5.0, "cap {}", tr.report.d_new_max);
        assert_eq!(tr.report.max_degraded_epochs_per_week, 1);
        // Without the budget, the M_degr cap (5.0 * 0.66/0.9 = 3.67)
        // leaves the 4.0 and 5.0 spikes degraded.
        let free = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        assert_eq!(free.report.max_degraded_epochs_per_week, 2);
    }

    #[test]
    fn epoch_budget_counts_worst_week() {
        // Week 1 has one degraded spike, week 2 has three (the M_degr cap
        // is 5.0 * 0.66/0.9 = 3.67, so all of 4.2, 4.5 and 5.0 start out
        // degraded); a budget of two must be driven by week 2.
        let mut samples = vec![1.0; 4032];
        samples[100..103].fill(5.0);
        samples[2116..2119].fill(4.2);
        samples[2516..2519].fill(4.5);
        samples[2916..2919].fill(5.0);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let spec = DegradationSpec::new(0.03, 0.9, None)
            .unwrap()
            .with_epoch_budget(2)
            .unwrap();
        let qos = AppQos::new(band(), Some(spec));
        let tr = translate(&t, &qos, &cos(0.6), ObsCtx::none()).unwrap();
        assert_eq!(tr.report.max_degraded_epochs_per_week, 2);
        // Only the cheapest spike (4.2) needed to be absorbed.
        assert!(
            (tr.report.d_new_max - 4.2).abs() < 1e-9,
            "cap {}",
            tr.report.d_new_max
        );
    }

    #[test]
    fn epoch_budget_composes_with_time_limit() {
        let mut samples = vec![1.0; 2016];
        samples[100..110].fill(4.0); // 50-minute plateau: violates T_degr
        samples[500..503].fill(4.5); // two short spikes: violate the budget
        samples[900..903].fill(4.8);
        let t = Trace::from_samples(cal(), samples).unwrap();
        let spec = DegradationSpec::new(0.03, 0.9, Some(30))
            .unwrap()
            .with_epoch_budget(1)
            .unwrap();
        let qos = AppQos::new(band(), Some(spec));
        let tr = translate(&t, &qos, &cos(0.6), ObsCtx::none()).unwrap();
        // T_degr raised the cap to the plateau (4.0); the budget then had
        // to absorb the 4.5 spike, keeping only the 4.8 one degraded.
        assert!(tr.report.longest_degraded_minutes <= 30);
        assert_eq!(tr.report.max_degraded_epochs_per_week, 1);
        assert!(
            (tr.report.d_new_max - 4.5).abs() < 1e-9,
            "cap {}",
            tr.report.d_new_max
        );
        assert!(tr.report.time_limit_iterations >= 2);
    }

    #[test]
    fn zero_demand_trace_translates_cleanly() {
        let t = Trace::constant(cal(), 0.0, 2016).unwrap();
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        assert_eq!(tr.report.d_new_max, 0.0);
        assert_eq!(tr.report.peak_allocation, 0.0);
        assert_eq!(tr.report.max_worst_case_utilization, 0.0);
        assert_eq!(tr.report.degraded_fraction, 0.0);
    }

    #[test]
    fn inconsistent_qos_is_rejected() {
        let t = Trace::constant(cal(), 1.0, 10).unwrap();
        let qos = AppQos::new(band(), Some(DegradationSpec::new(0.03, 0.6, None).unwrap()));
        assert!(matches!(
            translate(&t, &qos, &cos(0.6), ObsCtx::none()),
            Err(QosError::DegradedBelowHigh { .. })
        ));
    }

    #[test]
    fn total_allocation_matches_sum() {
        let t = spiky(500, 3.0, 50);
        let tr = translate(&t, &qos_no_limit(), &cos(0.6), ObsCtx::none()).unwrap();
        let total = tr.total_allocation();
        for i in 0..t.len() {
            let s = tr.cos1.samples()[i] + tr.cos2.samples()[i];
            assert!((total.samples()[i] - s).abs() < 1e-12);
        }
        assert!((tr.peak_allocation() - total.peak()).abs() < 1e-9);
    }
}
