//! Burst-factor calibration — the analytic stand-in for the paper's
//! stress-testing exercise (§III).
//!
//! The paper determines `(U_low, U_high)` empirically: a synthetic workload
//! is replayed against the application in a controlled environment while
//! the burst factor is varied, searching for the factor that gives
//! *required* responsiveness (→ `U_low`) and the factor that gives barely
//! *adequate* responsiveness (→ `U_high`). We do not have the proprietary
//! application, so we model responsiveness with the same open queueing
//! approximation the paper itself uses to justify its placement score:
//! a resource with `Z` CPUs serving unit demands has mean response time
//!
//! `RT(U) = S / (1 − U^Z)`
//!
//! where `S` is the service time and `U` the utilization (of allocation).
//! Inverting this monotone relationship for a response-time target yields
//! the utilization bound, exactly what the stress test would estimate.

use serde::{Deserialize, Serialize};

use crate::{QosError, UtilizationBand};

/// The queueing responsiveness model `RT(U) = S / (1 − U^Z)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponsivenessModel {
    /// Mean service time of a request, in arbitrary time units.
    pub service_time: f64,
    /// Number of CPUs backing the allocation.
    pub cpus: u32,
}

impl ResponsivenessModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `service_time <= 0` or `cpus == 0`.
    pub fn new(service_time: f64, cpus: u32) -> Self {
        assert!(
            service_time > 0.0 && service_time.is_finite(),
            "service time must be positive"
        );
        assert!(cpus > 0, "at least one CPU is required");
        ResponsivenessModel { service_time, cpus }
    }

    /// Mean response time at utilization `u` (`0 <= u < 1`); infinite at
    /// saturation.
    pub fn response_time(&self, u: f64) -> f64 {
        if u >= 1.0 {
            return f64::INFINITY;
        }
        let u = u.max(0.0);
        self.service_time / (1.0 - u.powi(self.cpus as i32))
    }

    /// The utilization at which the mean response time equals `target`:
    /// `U = (1 − S/target)^(1/Z)`.
    ///
    /// Returns 0 when the target is unattainable even when idle
    /// (`target <= service_time`).
    pub fn utilization_for(&self, target: f64) -> f64 {
        if target <= self.service_time {
            return 0.0;
        }
        (1.0 - self.service_time / target).powf(1.0 / crate::units::count(self.cpus as usize))
    }
}

/// Outcome of a calibration run: the band plus the burst factors it implies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The calibrated acceptable utilization band.
    pub band: UtilizationBand,
    /// Burst factor for ideal performance (`1 / U_low`).
    pub ideal_burst_factor: f64,
    /// Burst factor at the adequate edge (`1 / U_high`).
    pub adequate_burst_factor: f64,
    /// Model response time at `U_low`.
    pub response_at_low: f64,
    /// Model response time at `U_high`.
    pub response_at_high: f64,
}

/// Calibrates `(U_low, U_high)` for response-time targets.
///
/// `ideal_target` is the responsiveness application users require ("good
/// but not better than necessary"); `adequate_target` is the worst
/// responsiveness they tolerate. Both are mean response times in the same
/// units as the model's service time.
///
/// # Errors
///
/// Returns [`QosError::InvalidBand`] when the targets do not produce a
/// valid band — e.g. targets below the service time, equal targets, or an
/// adequate bound at saturation.
///
/// # Example
///
/// ```
/// use ropus_qos::calibration::{calibrate, ResponsivenessModel};
///
/// // A 1-CPU container with 100 ms service time: 200 ms ideal, 400 ms worst.
/// let model = ResponsivenessModel::new(100.0, 1);
/// let cal = calibrate(&model, 200.0, 400.0)?;
/// assert!((cal.band.low() - 0.5).abs() < 1e-9);
/// assert!((cal.band.high() - 0.75).abs() < 1e-9);
/// # Ok::<(), ropus_qos::QosError>(())
/// ```
pub fn calibrate(
    model: &ResponsivenessModel,
    ideal_target: f64,
    adequate_target: f64,
) -> Result<Calibration, QosError> {
    let low = model.utilization_for(ideal_target);
    let high = model.utilization_for(adequate_target);
    let band = UtilizationBand::new(low, high)?;
    Ok(Calibration {
        band,
        ideal_burst_factor: band.burst_factor(),
        adequate_burst_factor: 1.0 / band.high(),
        response_at_low: model.response_time(low),
        response_at_high: model.response_time(high),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_is_monotone_and_saturates() {
        let m = ResponsivenessModel::new(1.0, 4);
        let mut last = 0.0;
        for u in [0.0, 0.2, 0.5, 0.8, 0.95, 0.99] {
            let rt = m.response_time(u);
            assert!(rt >= last, "rt({u}) = {rt}");
            last = rt;
        }
        assert_eq!(m.response_time(1.0), f64::INFINITY);
        assert_eq!(m.response_time(0.0), 1.0);
    }

    #[test]
    fn utilization_for_inverts_response_time() {
        let m = ResponsivenessModel::new(2.0, 8);
        for target in [2.5, 4.0, 10.0, 100.0] {
            let u = m.utilization_for(target);
            let rt = m.response_time(u);
            assert!(
                (rt - target).abs() / target < 1e-9,
                "target {target}: rt {rt}"
            );
        }
        assert_eq!(m.utilization_for(1.0), 0.0);
    }

    #[test]
    fn more_cpus_tolerate_higher_utilization() {
        // The same rationale as the paper's Z-scaled placement score.
        let small = ResponsivenessModel::new(1.0, 1);
        let big = ResponsivenessModel::new(1.0, 16);
        assert!(big.utilization_for(2.0) > small.utilization_for(2.0));
    }

    #[test]
    fn calibration_produces_paper_like_band() {
        let m = ResponsivenessModel::new(100.0, 1);
        let cal = calibrate(&m, 200.0, 300.0).unwrap();
        assert!((cal.band.low() - 0.5).abs() < 1e-9);
        assert!((cal.band.high() - 2.0 / 3.0).abs() < 1e-9);
        assert!((cal.ideal_burst_factor - 2.0).abs() < 1e-9);
        assert!((cal.response_at_high - 300.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_targets_are_rejected() {
        let m = ResponsivenessModel::new(100.0, 1);
        // Ideal target unattainable: U_low would be 0.
        assert!(calibrate(&m, 50.0, 300.0).is_err());
        // Equal targets: empty band.
        assert!(calibrate(&m, 200.0, 200.0).is_err());
        // Reversed targets: inverted band.
        assert!(calibrate(&m, 300.0, 200.0).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn model_rejects_non_positive_service_time() {
        ResponsivenessModel::new(0.0, 1);
    }
}
