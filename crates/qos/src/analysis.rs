//! Capacity-saving analysis: the `MaxCapReduction` bound (formulas 4–5)
//! and aggregate accounting across a fleet of translations.

use serde::{Deserialize, Serialize};

use crate::translation::TranslationReport;
use crate::{AppQos, QosError};

/// Upper bound on the capacity reduction from allowing degraded
/// performance (formula 5): `MaxCapReduction <= 1 − U_high / U_degr`.
///
/// The bound depends only on `U_high` and `U_degr` — not on `U_low`, `θ`,
/// or the percentile — which the paper uses to explain the plateau at
/// ~26.7% in Fig. 7 for `(U_high, U_degr) = (0.66, 0.9)`.
///
/// Returns 0 when the requirement has no degradation allowance.
///
/// # Example
///
/// ```
/// use ropus_qos::analysis::max_cap_reduction_bound;
/// use ropus_qos::AppQos;
///
/// let qos = AppQos::paper_default(None);
/// let bound = max_cap_reduction_bound(&qos);
/// assert!((bound - 0.2667).abs() < 1e-3);
/// ```
pub fn max_cap_reduction_bound(qos: &AppQos) -> f64 {
    match qos.degradation() {
        Some(degr) => 1.0 - qos.band().high() / degr.u_degr(),
        None => 0.0,
    }
}

/// Verifies that a translation respects its requirement's analytic bounds.
///
/// Checks, in order: the realized `MaxCapReduction` does not exceed the
/// formula-(5) bound; the worst-case degraded fraction does not exceed
/// `M_degr`; and the worst-case utilization stays at or below `U_degr`
/// (or `U_high` with no degradation allowance).
///
/// # Errors
///
/// Returns [`QosError::InvalidDegradation`] describing the first violated
/// bound. A violation indicates an implementation bug, but capacity
/// services prefer a diagnosable error over a panic.
pub fn check_report(qos: &AppQos, report: &TranslationReport) -> Result<(), QosError> {
    const TOL: f64 = 1e-9;
    let bound = max_cap_reduction_bound(qos);
    if report.max_cap_reduction > bound + TOL {
        return Err(QosError::InvalidDegradation {
            message: format!(
                "realized MaxCapReduction {} exceeds formula-5 bound {}",
                report.max_cap_reduction, bound
            ),
        });
    }
    let allowed_fraction = qos.degradation().map_or(0.0, |d| d.max_fraction());
    if report.degraded_fraction > allowed_fraction + TOL {
        return Err(QosError::InvalidDegradation {
            message: format!(
                "degraded fraction {} exceeds allowance {}",
                report.degraded_fraction, allowed_fraction
            ),
        });
    }
    let utilization_cap = qos.degradation().map_or(qos.band().high(), |d| d.u_degr());
    if report.max_worst_case_utilization > utilization_cap + TOL {
        return Err(QosError::InvalidDegradation {
            message: format!(
                "worst-case utilization {} exceeds cap {}",
                report.max_worst_case_utilization, utilization_cap
            ),
        });
    }
    Ok(())
}

/// Aggregate statistics over a fleet's translation reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSavings {
    /// Number of applications aggregated.
    pub apps: usize,
    /// Sum of per-application peak allocations — the paper's `C_peak`.
    pub total_peak_allocation: f64,
    /// Mean per-application `MaxCapReduction`.
    pub mean_cap_reduction: f64,
    /// Largest per-application `MaxCapReduction`.
    pub max_cap_reduction: f64,
    /// Mean worst-case degraded fraction across applications.
    pub mean_degraded_fraction: f64,
}

impl FleetSavings {
    /// Aggregates a slice of reports; all-zero for an empty slice.
    pub fn aggregate(reports: &[TranslationReport]) -> FleetSavings {
        if reports.is_empty() {
            return FleetSavings {
                apps: 0,
                total_peak_allocation: 0.0,
                mean_cap_reduction: 0.0,
                max_cap_reduction: 0.0,
                mean_degraded_fraction: 0.0,
            };
        }
        let n = crate::units::count(reports.len());
        FleetSavings {
            apps: reports.len(),
            total_peak_allocation: reports.iter().map(|r| r.peak_allocation).sum(),
            mean_cap_reduction: reports.iter().map(|r| r.max_cap_reduction).sum::<f64>() / n,
            max_cap_reduction: reports
                .iter()
                .map(|r| r.max_cap_reduction)
                .fold(0.0, f64::max),
            mean_degraded_fraction: reports.iter().map(|r| r.degraded_fraction).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translation::translate;
    use crate::{CosSpec, DegradationSpec, UtilizationBand};
    use ropus_obs::ObsCtx;
    use ropus_trace::{Calendar, Trace};

    fn paper_qos() -> AppQos {
        AppQos::paper_default(None)
    }

    #[test]
    fn bound_matches_formula_five() {
        // 1 - 0.66/0.9 = 0.2666...
        let bound = max_cap_reduction_bound(&paper_qos());
        assert!((bound - (1.0 - 0.66 / 0.9)).abs() < 1e-12);
        assert_eq!(
            max_cap_reduction_bound(&AppQos::strict(UtilizationBand::paper_default())),
            0.0
        );
    }

    #[test]
    fn bound_is_independent_of_u_low() {
        let a = AppQos::new(
            UtilizationBand::new(0.3, 0.66).unwrap(),
            Some(DegradationSpec::new(0.05, 0.9, None).unwrap()),
        );
        let b = AppQos::new(
            UtilizationBand::new(0.6, 0.66).unwrap(),
            Some(DegradationSpec::new(0.01, 0.9, None).unwrap()),
        );
        assert_eq!(max_cap_reduction_bound(&a), max_cap_reduction_bound(&b));
    }

    #[test]
    fn check_report_passes_for_real_translations() {
        let samples: Vec<f64> = (0..2016)
            .map(|i| {
                if i % 37 == 0 {
                    8.0
                } else {
                    1.0 + (i % 5) as f64 * 0.1
                }
            })
            .collect();
        let trace = Trace::from_samples(Calendar::five_minute(), samples).unwrap();
        for theta in [0.3, 0.6, 0.76, 0.95, 1.0] {
            let cos2 = CosSpec::new(theta, 60).unwrap();
            let tr = translate(&trace, &paper_qos(), &cos2, ObsCtx::none()).unwrap();
            check_report(&paper_qos(), &tr.report).unwrap();
        }
    }

    #[test]
    fn check_report_catches_violations() {
        let trace = Trace::constant(Calendar::five_minute(), 1.0, 100).unwrap();
        let cos2 = CosSpec::new(0.6, 60).unwrap();
        let tr = translate(&trace, &paper_qos(), &cos2, ObsCtx::none()).unwrap();
        let mut bad = tr.report;
        bad.max_cap_reduction = 0.5;
        assert!(check_report(&paper_qos(), &bad).is_err());
        let mut bad = tr.report;
        bad.degraded_fraction = 0.5;
        assert!(check_report(&paper_qos(), &bad).is_err());
        let mut bad = tr.report;
        bad.max_worst_case_utilization = 0.99;
        assert!(check_report(&paper_qos(), &bad).is_err());
    }

    #[test]
    fn aggregate_over_empty_and_nonempty() {
        let empty = FleetSavings::aggregate(&[]);
        assert_eq!(empty.apps, 0);
        assert_eq!(empty.total_peak_allocation, 0.0);

        let trace = Trace::constant(Calendar::five_minute(), 2.0, 100).unwrap();
        let cos2 = CosSpec::new(0.6, 60).unwrap();
        let r1 = translate(&trace, &paper_qos(), &cos2, ObsCtx::none())
            .unwrap()
            .report;
        let r2 = r1;
        let agg = FleetSavings::aggregate(&[r1, r2]);
        assert_eq!(agg.apps, 2);
        assert!((agg.total_peak_allocation - 2.0 * r1.peak_allocation).abs() < 1e-12);
        assert_eq!(agg.mean_cap_reduction, r1.max_cap_reduction);
    }
}
