//! Unit-safe numeric helpers for the QoS formula modules.
//!
//! The translation formulas mix slots, minutes, weeks, CPU fractions, and
//! probabilities. Two numeric habits reliably hide unit bugs in that mix:
//! bare `as` casts (which silently truncate or saturate) and exact float
//! equality (which turns an epsilon of arithmetic noise into a branch
//! flip). `xtask lint` bans both in `crates/qos/src` (rules
//! `unit-float-cast` and `unit-float-eq`); this module is the blessed
//! replacement.

/// Comparison tolerance shared by the QoS formula modules.
///
/// The paper's quantities (CPU shares, utilizations, θ probabilities) are
/// all order-1, so one fixed scale works; [`approx_eq`] additionally
/// scales by the operands for large magnitudes.
pub const EPSILON: f64 = 1e-9;

/// Whether `a` and `b` are equal up to [`EPSILON`] (relative for large
/// magnitudes, absolute near zero).
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON * a.abs().max(b.abs()).max(1.0)
}

/// Whether `x` is zero up to [`EPSILON`].
pub fn is_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

/// Exact conversion of a count (apps, weeks, slots, CPUs) to `f64`.
///
/// Counts in this workspace are bounded by trace lengths (≤ a few million
/// slots), far below 2^53 where `f64` stops representing integers
/// exactly; the debug assertion documents that bound.
pub fn count(n: usize) -> f64 {
    debug_assert!(n as u64 <= (1u64 << 53), "count {n} not exact in f64");
    // lint:allow(unit-float-cast): the one blessed cast site — exactness
    // is debug-asserted above and every caller routes through here.
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_arithmetic_noise() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1e12 + 1.0, 1e12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn is_zero_is_a_band_not_a_bit_pattern() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(is_zero(1e-12));
        assert!(!is_zero(1e-6));
    }

    #[test]
    fn count_is_exact_for_workspace_sizes() {
        assert_eq!(count(0), 0.0);
        assert_eq!(count(288 * 7 * 52), 104_832.0);
    }
}
