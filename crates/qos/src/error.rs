use std::fmt;

use ropus_trace::TraceError;

/// Error raised when constructing QoS specifications or translating demand.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// A utilization bound was outside `(0, 1)` or the band was inverted.
    InvalidBand {
        /// The rejected lower bound (`U_low`).
        low: f64,
        /// The rejected upper bound (`U_high`).
        high: f64,
    },
    /// A degradation spec was inconsistent (fraction outside `[0, 1)` or
    /// `U_degr` not in `(0, 1)`).
    InvalidDegradation {
        /// Reason the spec was rejected.
        message: String,
    },
    /// The degraded utilization bound must exceed the band's `U_high`.
    DegradedBelowHigh {
        /// The band's `U_high`.
        high: f64,
        /// The rejected `U_degr`.
        degraded: f64,
    },
    /// A resource access probability was outside `(0, 1]`.
    InvalidAccessProbability {
        /// The rejected `θ`.
        theta: f64,
    },
    /// The underlying demand trace was invalid.
    Trace(TraceError),
    /// The iterative `T_degr` analysis failed to converge. This indicates a
    /// logic error rather than bad input; it is kept as an error (not a
    /// panic) so long-running capacity services can skip the workload.
    TimeLimitDiverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::InvalidBand { low, high } => {
                write!(
                    f,
                    "utilization band ({low}, {high}) must satisfy 0 < low < high < 1"
                )
            }
            QosError::InvalidDegradation { message } => {
                write!(f, "invalid degradation spec: {message}")
            }
            QosError::DegradedBelowHigh { high, degraded } => {
                write!(
                    f,
                    "degraded utilization {degraded} must exceed the band's high bound {high}"
                )
            }
            QosError::InvalidAccessProbability { theta } => {
                write!(f, "resource access probability {theta} must be in (0, 1]")
            }
            QosError::Trace(e) => write!(f, "trace error: {e}"),
            QosError::TimeLimitDiverged { iterations } => {
                write!(f, "time-limited degradation analysis did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for QosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QosError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for QosError {
    fn from(err: TraceError) -> Self {
        QosError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errors: Vec<QosError> = vec![
            QosError::InvalidBand {
                low: 0.9,
                high: 0.5,
            },
            QosError::InvalidDegradation {
                message: "fraction 2 out of range".into(),
            },
            QosError::DegradedBelowHigh {
                high: 0.66,
                degraded: 0.5,
            },
            QosError::InvalidAccessProbability { theta: 1.5 },
            QosError::Trace(TraceError::Empty),
            QosError::TimeLimitDiverged { iterations: 100 },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn trace_error_converts_and_sources() {
        let err: QosError = TraceError::Empty.into();
        assert!(matches!(err, QosError::Trace(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<QosError>();
    }
}
