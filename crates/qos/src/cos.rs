use serde::{Deserialize, Serialize};

use crate::QosError;

/// A resource access QoS commitment for the pool's statistical class of
/// service (§IV).
///
/// `theta` is the *resource access probability*: the likelihood that a unit
/// of CoS2 capacity is available for allocation when needed, measured as
/// the minimum over weeks and slots-of-day of `Σ_days min(A, L) / Σ_days A`.
/// `deadline_minutes` is the paper's `s`: demand not satisfied on request
/// must be satisfied within this deadline.
///
/// # Example
///
/// ```
/// use ropus_qos::CosSpec;
///
/// let cos2 = CosSpec::new(0.95, 60)?;
/// assert_eq!(cos2.theta(), 0.95);
/// assert_eq!(cos2.deadline_minutes(), 60);
/// # Ok::<(), ropus_qos::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawCos")]
pub struct CosSpec {
    theta: f64,
    deadline_minutes: u32,
}

#[derive(Deserialize)]
struct RawCos {
    theta: f64,
    deadline_minutes: u32,
}

impl TryFrom<RawCos> for CosSpec {
    type Error = QosError;

    fn try_from(raw: RawCos) -> Result<Self, QosError> {
        CosSpec::new(raw.theta, raw.deadline_minutes)
    }
}

impl CosSpec {
    /// Creates a commitment.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidAccessProbability`] unless
    /// `0 < theta <= 1` (the paper's `1 >= θ > 0`).
    pub fn new(theta: f64, deadline_minutes: u32) -> Result<Self, QosError> {
        if !(theta.is_finite() && 0.0 < theta && theta <= 1.0) {
            return Err(QosError::InvalidAccessProbability { theta });
        }
        Ok(CosSpec {
            theta,
            deadline_minutes,
        })
    }

    /// The resource access probability `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The deadline `s` in minutes.
    pub fn deadline_minutes(&self) -> u32 {
        self.deadline_minutes
    }
}

/// The pool operator's commitments for both classes of service.
///
/// CoS1 is *guaranteed*: per server, the sum of peak CoS1 allocations never
/// exceeds capacity, so it needs no further parameters. CoS2 carries the
/// statistical commitment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCommitments {
    /// The statistical class of service.
    pub cos2: CosSpec,
}

impl PoolCommitments {
    /// Creates commitments from the CoS2 spec.
    pub fn new(cos2: CosSpec) -> Self {
        PoolCommitments { cos2 }
    }

    /// The case-study's two operating points: `θ = 0.95` and `θ = 0.6`,
    /// both with a 60-minute deadline (footnote 3 of the paper).
    ///
    /// # Panics
    ///
    /// Never panics; the constants are valid by construction.
    pub fn paper_defaults() -> (PoolCommitments, PoolCommitments) {
        // lint:allow(panic-expect): literal (θ, deadline) pairs from the
        // paper, in-range by inspection; CosSpec::new cannot reject them.
        let high = PoolCommitments::new(CosSpec::new(0.95, 60).expect("valid constant"));
        // lint:allow(panic-expect): same literal-constant invariant.
        let low = PoolCommitments::new(CosSpec::new(0.6, 60).expect("valid constant"));
        (high, low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_thetas() {
        assert!(CosSpec::new(0.95, 60).is_ok());
        assert!(CosSpec::new(0.6, 60).is_ok());
        assert!(CosSpec::new(1.0, 0).is_ok());
    }

    #[test]
    fn rejects_out_of_range_theta() {
        for theta in [0.0, -0.5, 1.01, f64::NAN, f64::INFINITY] {
            assert!(CosSpec::new(theta, 60).is_err(), "theta {theta}");
        }
    }

    #[test]
    fn paper_defaults_are_ordered() {
        let (high, low) = PoolCommitments::paper_defaults();
        assert!(high.cos2.theta() > low.cos2.theta());
        assert_eq!(high.cos2.deadline_minutes(), 60);
    }

    #[test]
    fn serde_validates() {
        let bad = r#"{"theta": 2.0, "deadline_minutes": 60}"#;
        assert!(serde_json::from_str::<CosSpec>(bad).is_err());
        let good = r#"{"theta": 0.95, "deadline_minutes": 60}"#;
        let spec: CosSpec = serde_json::from_str(good).unwrap();
        assert_eq!(spec.theta(), 0.95);
    }
}
