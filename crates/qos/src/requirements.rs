use serde::{Deserialize, Serialize};

use crate::QosError;

/// The acceptable range of *utilization of allocation* for an application
/// (§III): `U_low <= U_alloc <= U_high`.
///
/// `1/U_low` is the burst factor that sizes the ideal allocation; `U_high`
/// is the threshold beyond which performance is undesirable to users.
///
/// # Example
///
/// ```
/// use ropus_qos::UtilizationBand;
///
/// let band = UtilizationBand::new(0.5, 0.66)?;
/// assert_eq!(band.low(), 0.5);
/// assert_eq!(band.burst_factor(), 2.0);
/// # Ok::<(), ropus_qos::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawBand")]
pub struct UtilizationBand {
    low: f64,
    high: f64,
}

#[derive(Deserialize)]
struct RawBand {
    low: f64,
    high: f64,
}

impl TryFrom<RawBand> for UtilizationBand {
    type Error = QosError;

    fn try_from(raw: RawBand) -> Result<Self, QosError> {
        UtilizationBand::new(raw.low, raw.high)
    }
}

impl UtilizationBand {
    /// Creates a band.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidBand`] unless `0 < low < high < 1`.
    pub fn new(low: f64, high: f64) -> Result<Self, QosError> {
        let valid = low.is_finite() && high.is_finite() && 0.0 < low && low < high && high < 1.0;
        if !valid {
            return Err(QosError::InvalidBand { low, high });
        }
        Ok(UtilizationBand { low, high })
    }

    /// The paper's running example, `(0.5, 0.66)`.
    pub fn paper_default() -> Self {
        UtilizationBand {
            low: 0.5,
            high: 0.66,
        }
    }

    /// `U_low` — utilization of allocation for ideal performance.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// `U_high` — threshold beyond which performance degrades.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// The burst factor `1/U_low` that converts demand to ideal allocation.
    pub fn burst_factor(&self) -> f64 {
        1.0 / self.low
    }

    /// `U_low / U_high`, the quantity the breakpoint formula compares to `θ`.
    pub fn ratio(&self) -> f64 {
        self.low / self.high
    }
}

/// The degraded-performance allowance (§III): at most a fraction
/// `max_fraction` (the paper's `M_degr`) of measurements may exceed
/// `U_high`, none may exceed `U_degr`, and optionally no degraded episode
/// may persist beyond `time_limit_minutes` (the paper's `T_degr`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawDegradation")]
pub struct DegradationSpec {
    max_fraction: f64,
    u_degr: f64,
    time_limit_minutes: Option<u32>,
    max_epochs_per_week: Option<u32>,
}

#[derive(Deserialize)]
struct RawDegradation {
    max_fraction: f64,
    u_degr: f64,
    time_limit_minutes: Option<u32>,
    #[serde(default)]
    max_epochs_per_week: Option<u32>,
}

impl TryFrom<RawDegradation> for DegradationSpec {
    type Error = QosError;

    fn try_from(raw: RawDegradation) -> Result<Self, QosError> {
        let spec = DegradationSpec::new(raw.max_fraction, raw.u_degr, raw.time_limit_minutes)?;
        match raw.max_epochs_per_week {
            Some(budget) => spec.with_epoch_budget(budget),
            None => Ok(spec),
        }
    }
}

impl DegradationSpec {
    /// Creates a degradation spec.
    ///
    /// `max_fraction` is the paper's `M_degr` expressed as a fraction
    /// (0.03 for "3% of measurements"); `u_degr` bounds utilization of
    /// allocation during degradation; `time_limit_minutes` is `T_degr`
    /// (`None` = no contiguous-time limit).
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidDegradation`] unless
    /// `0 <= max_fraction < 1` and `0 < u_degr < 1`. The paper requires
    /// `U_degr < 1` so that demands are satisfied within their measurement
    /// interval.
    pub fn new(
        max_fraction: f64,
        u_degr: f64,
        time_limit_minutes: Option<u32>,
    ) -> Result<Self, QosError> {
        if !max_fraction.is_finite() || !(0.0..1.0).contains(&max_fraction) {
            return Err(QosError::InvalidDegradation {
                message: format!("max fraction {max_fraction} outside [0, 1)"),
            });
        }
        if !(u_degr.is_finite() && 0.0 < u_degr && u_degr < 1.0) {
            return Err(QosError::InvalidDegradation {
                message: format!("degraded utilization {u_degr} outside (0, 1)"),
            });
        }
        if time_limit_minutes == Some(0) {
            return Err(QosError::InvalidDegradation {
                message: "time limit of zero minutes forbids all degradation; use max_fraction = 0 instead".into(),
            });
        }
        Ok(DegradationSpec {
            max_fraction,
            u_degr,
            time_limit_minutes,
            max_epochs_per_week: None,
        })
    }

    /// Adds a budget on the *number* of degraded epochs per week — the
    /// enhancement the paper's footnote 2 sketches ("an additional
    /// constraint on the number of degraded epochs per time period, e.g.,
    /// per day or week"). An epoch is one maximal contiguous run of
    /// degraded measurements.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidDegradation`] for a zero budget with a
    /// positive `max_fraction` inconsistency (use `max_fraction = 0`
    /// instead to forbid degradation outright).
    pub fn with_epoch_budget(mut self, max_epochs_per_week: u32) -> Result<Self, QosError> {
        if max_epochs_per_week == 0 && self.max_fraction > 0.0 {
            return Err(QosError::InvalidDegradation {
                message:
                    "an epoch budget of zero forbids all degradation; use max_fraction = 0 instead"
                        .into(),
            });
        }
        self.max_epochs_per_week = Some(max_epochs_per_week);
        Ok(self)
    }

    /// The paper's case-study spec: 3% of measurements, `U_degr = 0.9`,
    /// with the given `T_degr` in minutes.
    pub fn paper_default(time_limit_minutes: Option<u32>) -> Self {
        DegradationSpec {
            max_fraction: 0.03,
            u_degr: 0.9,
            time_limit_minutes,
            max_epochs_per_week: None,
        }
    }

    /// `M_degr` as a fraction in `[0, 1)`.
    pub fn max_fraction(&self) -> f64 {
        self.max_fraction
    }

    /// The acceptable-percentile `M` in `[0, 100]` (`M = 100·(1 − M_degr)`).
    pub fn acceptable_percentile(&self) -> f64 {
        100.0 * (1.0 - self.max_fraction)
    }

    /// `U_degr` — the utilization-of-allocation cap during degradation.
    pub fn u_degr(&self) -> f64 {
        self.u_degr
    }

    /// `T_degr` in minutes, if a contiguous-time limit is set.
    pub fn time_limit_minutes(&self) -> Option<u32> {
        self.time_limit_minutes
    }

    /// Maximum number of degraded epochs per week, if budgeted
    /// (footnote 2 of the paper).
    pub fn max_epochs_per_week(&self) -> Option<u32> {
        self.max_epochs_per_week
    }
}

/// A complete application QoS requirement for one operating mode:
/// the acceptable band plus an optional degradation allowance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppQos {
    band: UtilizationBand,
    degradation: Option<DegradationSpec>,
}

impl AppQos {
    /// Combines a band with an optional degradation allowance.
    ///
    /// The cross-field constraint `U_high < U_degr` is checked lazily by
    /// [`validate`](Self::validate) and by the translation, because `serde`
    /// constructs the halves independently.
    pub fn new(band: UtilizationBand, degradation: Option<DegradationSpec>) -> Self {
        AppQos { band, degradation }
    }

    /// The paper's case-study requirement: band `(0.5, 0.66)`, 3%
    /// degradation below 0.9, with the given `T_degr`.
    pub fn paper_default(time_limit_minutes: Option<u32>) -> Self {
        AppQos {
            band: UtilizationBand::paper_default(),
            degradation: Some(DegradationSpec::paper_default(time_limit_minutes)),
        }
    }

    /// A strict requirement with no degradation allowed (`M_degr = 0`).
    pub fn strict(band: UtilizationBand) -> Self {
        AppQos {
            band,
            degradation: None,
        }
    }

    /// The acceptable utilization band.
    pub fn band(&self) -> UtilizationBand {
        self.band
    }

    /// The degradation allowance, if any.
    pub fn degradation(&self) -> Option<DegradationSpec> {
        self.degradation
    }

    /// Checks cross-field consistency (`U_high < U_degr`).
    ///
    /// # Errors
    ///
    /// Returns [`QosError::DegradedBelowHigh`] when the degraded bound does
    /// not exceed the band's high bound.
    pub fn validate(&self) -> Result<(), QosError> {
        if let Some(degr) = self.degradation {
            if degr.u_degr() <= self.band.high() {
                return Err(QosError::DegradedBelowHigh {
                    high: self.band.high(),
                    degraded: degr.u_degr(),
                });
            }
        }
        Ok(())
    }
}

/// Per-application QoS for both operating modes (§III): *normal* (all
/// planned resources available) and *failure* (one node down).
///
/// Failure-mode requirements are typically weaker, which is what lets the
/// placement service absorb a failed server's workloads onto the remaining
/// servers (§VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosPolicy {
    /// Requirement when all planned resources are available.
    pub normal: AppQos,
    /// Requirement while a single node failure is outstanding.
    pub failure: AppQos,
}

impl QosPolicy {
    /// A policy using the same requirement in both modes.
    pub fn uniform(qos: AppQos) -> Self {
        QosPolicy {
            normal: qos,
            failure: qos,
        }
    }

    /// Checks both modes' cross-field consistency.
    ///
    /// # Errors
    ///
    /// Propagates the first failing mode's error.
    pub fn validate(&self) -> Result<(), QosError> {
        self.normal.validate()?;
        self.failure.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_accepts_paper_values() {
        let band = UtilizationBand::new(0.5, 0.66).unwrap();
        assert_eq!(band.low(), 0.5);
        assert_eq!(band.high(), 0.66);
        assert_eq!(band.burst_factor(), 2.0);
        assert!((band.ratio() - 0.757575).abs() < 1e-5);
    }

    #[test]
    fn band_rejects_invalid_bounds() {
        for (low, high) in [
            (0.0, 0.5),
            (0.5, 0.5),
            (0.7, 0.6),
            (0.5, 1.0),
            (-0.1, 0.5),
            (f64::NAN, 0.5),
            (0.5, f64::INFINITY),
        ] {
            assert!(UtilizationBand::new(low, high).is_err(), "({low}, {high})");
        }
    }

    #[test]
    fn degradation_accepts_paper_values() {
        let spec = DegradationSpec::new(0.03, 0.9, Some(30)).unwrap();
        assert_eq!(spec.max_fraction(), 0.03);
        assert_eq!(spec.acceptable_percentile(), 97.0);
        assert_eq!(spec.u_degr(), 0.9);
        assert_eq!(spec.time_limit_minutes(), Some(30));
    }

    #[test]
    fn degradation_rejects_invalid() {
        assert!(DegradationSpec::new(1.0, 0.9, None).is_err());
        assert!(DegradationSpec::new(-0.1, 0.9, None).is_err());
        assert!(DegradationSpec::new(0.03, 1.0, None).is_err());
        assert!(DegradationSpec::new(0.03, 0.0, None).is_err());
        assert!(DegradationSpec::new(0.03, 0.9, Some(0)).is_err());
    }

    #[test]
    fn epoch_budget_round_trips() {
        let spec = DegradationSpec::new(0.03, 0.9, Some(30))
            .unwrap()
            .with_epoch_budget(4)
            .unwrap();
        assert_eq!(spec.max_epochs_per_week(), Some(4));
        assert!(DegradationSpec::new(0.03, 0.9, None)
            .unwrap()
            .with_epoch_budget(0)
            .is_err());
        let json = r#"{"max_fraction": 0.03, "u_degr": 0.9, "time_limit_minutes": 30, "max_epochs_per_week": 2}"#;
        let parsed: DegradationSpec = serde_json::from_str(json).unwrap();
        assert_eq!(parsed.max_epochs_per_week(), Some(2));
        // The field is optional in serialized form.
        let json = r#"{"max_fraction": 0.03, "u_degr": 0.9, "time_limit_minutes": null}"#;
        let parsed: DegradationSpec = serde_json::from_str(json).unwrap();
        assert_eq!(parsed.max_epochs_per_week(), None);
    }

    #[test]
    fn app_qos_validates_cross_field() {
        let band = UtilizationBand::new(0.5, 0.66).unwrap();
        let good = AppQos::new(band, Some(DegradationSpec::new(0.03, 0.9, None).unwrap()));
        assert!(good.validate().is_ok());
        let bad = AppQos::new(band, Some(DegradationSpec::new(0.03, 0.6, None).unwrap()));
        assert!(matches!(
            bad.validate(),
            Err(QosError::DegradedBelowHigh { .. })
        ));
        assert!(AppQos::strict(band).validate().is_ok());
    }

    #[test]
    fn policy_uniform_and_validate() {
        let policy = QosPolicy::uniform(AppQos::paper_default(Some(30)));
        assert!(policy.validate().is_ok());
        assert_eq!(policy.normal, policy.failure);
    }

    #[test]
    fn serde_rejects_invalid_band() {
        let bad = r#"{"low": 0.9, "high": 0.5}"#;
        assert!(serde_json::from_str::<UtilizationBand>(bad).is_err());
        let good = r#"{"low": 0.5, "high": 0.66}"#;
        let band: UtilizationBand = serde_json::from_str(good).unwrap();
        assert_eq!(band, UtilizationBand::paper_default());
    }

    #[test]
    fn serde_rejects_invalid_degradation() {
        let bad = r#"{"max_fraction": 1.5, "u_degr": 0.9, "time_limit_minutes": null}"#;
        assert!(serde_json::from_str::<DegradationSpec>(bad).is_err());
    }
}
