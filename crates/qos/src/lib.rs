//! Application QoS requirements, resource-pool classes of service, and the
//! portfolio-based QoS translation of the R-Opus framework.
//!
//! This crate implements §III–§V of the paper:
//!
//! * [`UtilizationBand`], [`DegradationSpec`], [`AppQos`], [`QosPolicy`] —
//!   the application owner's *normal* and *failure* mode requirements
//!   (`U_low`, `U_high`, `M_degr`, `U_degr`, `T_degr`);
//! * [`CosSpec`], [`PoolCommitments`] — the resource pool operator's
//!   per-class resource access QoS commitments (`θ` and the deadline `s`);
//! * [`portfolio`] — the breakpoint computation (formula 1) and the
//!   worst-case utilization-of-allocation model;
//! * [`translation`] — the full demand-to-allocation mapping including the
//!   `M_degr` percentile relaxation (formulas 2–3) and the iterative
//!   `T_degr` trace analysis (formulas 6–11);
//! * [`analysis`] — the `MaxCapReduction` bound (formulas 4–5) and degraded
//!   measurement accounting;
//! * [`calibration`] — an analytic queueing stand-in for the paper's
//!   stress-testing exercise that picks `(U_low, U_high)`.
//!
//! # Example
//!
//! ```
//! use ropus_qos::{AppQos, CosSpec, DegradationSpec, UtilizationBand};
//! use ropus_qos::translation::translate;
//! use ropus_obs::ObsCtx;
//! use ropus_trace::{Calendar, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example: U_low = 0.5, U_high = 0.66,
//! // M_degr = 3%, U_degr = 0.9, T_degr = 30 minutes.
//! let qos = AppQos::new(
//!     UtilizationBand::new(0.5, 0.66)?,
//!     Some(DegradationSpec::new(0.03, 0.9, Some(30))?),
//! );
//! let cos2 = CosSpec::new(0.95, 60)?;
//! let demand = Trace::constant(Calendar::five_minute(), 2.0, 2016)?;
//! let translation = translate(&demand, &qos, &cos2, ObsCtx::none())?;
//! assert!(translation.report.breakpoint >= 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

mod cos;
mod error;
mod requirements;

pub mod analysis;
pub mod calibration;
pub mod portfolio;
pub mod translation;
pub mod units;

pub use cos::{CosSpec, PoolCommitments};
pub use error::QosError;
pub use requirements::{AppQos, DegradationSpec, QosPolicy, UtilizationBand};
