//! The portfolio method for dividing demand across two classes of service
//! (§V of the paper).
//!
//! Demand below `p · D_new_max` is "invested" in the guaranteed CoS1;
//! the remainder rides the statistical CoS2 whose access probability `θ`
//! quantifies the risk. The breakpoint `p` is chosen so that even when
//! CoS2 delivers exactly its committed probability, the application's
//! utilization of allocation stays at or below `U_high`.

use crate::{CosSpec, UtilizationBand};

/// The breakpoint `p` of formula (1):
///
/// `p = (U_low/U_high − θ) / (1 − θ)`, clamped to 0 when
/// `U_low/U_high <= θ` (all demand may ride CoS2).
///
/// At `θ = 1` CoS2 is as good as guaranteed and `p = 0`.
///
/// # Example
///
/// ```
/// use ropus_qos::portfolio::breakpoint;
/// use ropus_qos::{CosSpec, UtilizationBand};
///
/// let band = UtilizationBand::new(0.5, 0.66)?;
/// let p = breakpoint(band, &CosSpec::new(0.6, 60)?);
/// assert!((p - 0.3939).abs() < 1e-3);
/// assert_eq!(breakpoint(band, &CosSpec::new(0.95, 60)?), 0.0);
/// # Ok::<(), ropus_qos::QosError>(())
/// ```
pub fn breakpoint(band: UtilizationBand, cos2: &CosSpec) -> f64 {
    let ratio = band.ratio();
    let theta = cos2.theta();
    if ratio <= theta {
        return 0.0;
    }
    // ratio > theta implies theta < 1, so the division is safe.
    ((ratio - theta) / (1.0 - theta)).clamp(0.0, 1.0)
}

/// How one observation's demand is divided across the two classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSplit {
    /// Demand satisfied by the guaranteed class.
    pub cos1: f64,
    /// Demand satisfied by the statistical class.
    pub cos2: f64,
}

impl DemandSplit {
    /// Total demand retained after the `D_new_max` cap.
    pub fn total(&self) -> f64 {
        self.cos1 + self.cos2
    }
}

/// Splits one demand observation across the classes (§V step 1):
/// demand up to `p · d_new_max` goes to CoS1; the rest — capped at
/// `d_new_max` — goes to CoS2.
///
/// # Panics
///
/// Panics (debug assertions) on negative inputs or `p` outside `[0, 1]`.
pub fn split_demand(demand: f64, p: f64, d_new_max: f64) -> DemandSplit {
    debug_assert!(demand >= 0.0 && d_new_max >= 0.0 && (0.0..=1.0).contains(&p));
    let capped = demand.min(d_new_max);
    let cos1 = capped.min(p * d_new_max);
    DemandSplit {
        cos1,
        cos2: capped - cos1,
    }
}

/// Worst-case *delivered* allocation for a demand observation: CoS1 in
/// full, CoS2 at exactly its committed probability `θ`, both scaled by the
/// burst factor `1/U_low`.
pub fn worst_case_allocation(
    demand: f64,
    band: UtilizationBand,
    cos2: &CosSpec,
    d_new_max: f64,
) -> f64 {
    let p = breakpoint(band, cos2);
    let split = split_demand(demand, p, d_new_max);
    (split.cos1 + cos2.theta() * split.cos2) * band.burst_factor()
}

/// Worst-case utilization of allocation for a demand observation.
///
/// For demand at the cap this equals `U_high` exactly (that is the
/// breakpoint's defining property); above the cap it grows linearly until
/// `U_degr` at the translated `D_max`.
pub fn worst_case_utilization(
    demand: f64,
    band: UtilizationBand,
    cos2: &CosSpec,
    d_new_max: f64,
) -> f64 {
    if crate::units::is_zero(demand) {
        return 0.0;
    }
    let allocation = worst_case_allocation(demand, band, cos2, d_new_max);
    if crate::units::is_zero(allocation) {
        // Degenerate: a zero cap with positive demand; utilization is
        // unboundedly bad, report +inf so callers detect it.
        return f64::INFINITY;
    }
    demand / allocation
}

/// The demand threshold above which an observation is *degraded* — i.e.
/// its worst-case utilization strictly exceeds `U_high`:
///
/// `threshold = D_new_max · U_high · (p + (1 − p)·θ) / U_low`.
///
/// With the formula-(1) breakpoint and `p > 0`, this is exactly
/// `D_new_max`; with `p = 0` (i.e. `θ >= U_low/U_high`) the slack in CoS2's
/// probability pushes the threshold above the cap, which is why Fig. 8
/// reports fewer degraded measurements for higher `θ`.
pub fn degraded_threshold(band: UtilizationBand, cos2: &CosSpec, d_new_max: f64) -> f64 {
    if band.ratio() > cos2.theta() {
        // p > 0: substituting formula (1) gives p + (1−p)θ = U_low/U_high
        // exactly, so the threshold is the cap itself. Using the algebraic
        // identity avoids a rounding wobble that could count observations
        // sitting exactly at the cap as degraded.
        return d_new_max;
    }
    // p = 0: the multiplier θ·U_high/U_low is algebraically >= 1 here;
    // clamp to protect the boundary case θ == U_low/U_high from rounding.
    d_new_max * (band.high() * cos2.theta() / band.low()).max(1.0)
}

/// Inverse of [`degraded_threshold`]: the smallest demand cap whose
/// degraded threshold is at least `threshold`.
///
/// Used by the trace analyses that must make a specific demand value
/// non-degraded (the `T_degr` window breaking and the epoch-budget
/// enforcement): setting the cap to `cap_for_degraded_threshold(t)` puts a
/// demand of exactly `t` at worst-case utilization `U_high`.
pub fn cap_for_degraded_threshold(band: UtilizationBand, cos2: &CosSpec, threshold: f64) -> f64 {
    if band.ratio() > cos2.theta() {
        return threshold;
    }
    threshold / (band.high() * cos2.theta() / band.low()).max(1.0)
}

/// Normalized maximum allocation as a function of `θ` (the Fig. 3 trend):
/// the factor `U_low / (U_high · (p(1−θ) + θ))` of formula (10) with the
/// breaking demand fixed at 1.
///
/// Ratios of this value across different `θ` approximate the ratios in
/// per-application `D_new_max` under time-limited degradation.
pub fn normalized_max_allocation(band: UtilizationBand, cos2: &CosSpec) -> f64 {
    let p = breakpoint(band, cos2);
    let theta = cos2.theta();
    band.low() / (band.high() * (p * (1.0 - theta) + theta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band() -> UtilizationBand {
        UtilizationBand::new(0.5, 0.66).unwrap()
    }

    fn cos(theta: f64) -> CosSpec {
        CosSpec::new(theta, 60).unwrap()
    }

    #[test]
    fn breakpoint_matches_formula_one() {
        // ratio = 0.7575...; theta = 0.6 -> p = (0.757575 - 0.6) / 0.4.
        let p = breakpoint(band(), &cos(0.6));
        assert!((p - 0.39393939).abs() < 1e-6);
    }

    #[test]
    fn breakpoint_is_zero_when_theta_covers_ratio() {
        assert_eq!(breakpoint(band(), &cos(0.76)), 0.0);
        assert_eq!(breakpoint(band(), &cos(0.95)), 0.0);
        assert_eq!(breakpoint(band(), &cos(1.0)), 0.0);
    }

    #[test]
    fn breakpoint_approaches_one_as_theta_vanishes() {
        let p = breakpoint(band(), &cos(0.01));
        assert!(p > 0.75 && p < 0.76, "p = {p}");
    }

    #[test]
    fn breakpoint_monotone_decreasing_in_theta() {
        let mut last = f64::INFINITY;
        for theta in [0.1, 0.3, 0.5, 0.6, 0.7, 0.76, 0.9, 1.0] {
            let p = breakpoint(band(), &cos(theta));
            assert!(p <= last, "p({theta}) = {p} > {last}");
            last = p;
        }
    }

    #[test]
    fn split_respects_cap_and_breakpoint() {
        let p = 0.4;
        let cap = 10.0;
        // Below the CoS1 share: all guaranteed.
        assert_eq!(
            split_demand(3.0, p, cap),
            DemandSplit {
                cos1: 3.0,
                cos2: 0.0
            }
        );
        // Between breakpoint and cap: split.
        let s = split_demand(7.0, p, cap);
        assert_eq!(s.cos1, 4.0);
        assert_eq!(s.cos2, 3.0);
        assert_eq!(s.total(), 7.0);
        // Above the cap: capped.
        let s = split_demand(15.0, p, cap);
        assert_eq!(s.cos1, 4.0);
        assert_eq!(s.cos2, 6.0);
        assert_eq!(s.total(), cap);
    }

    #[test]
    fn utilization_at_cap_is_exactly_u_high() {
        for theta in [0.3, 0.6, 0.76, 0.9, 0.95] {
            let u = worst_case_utilization(10.0, band(), &cos(theta), 10.0);
            // With p > 0 the breakpoint is chosen to land exactly on U_high;
            // with p = 0 there is slack (theta above the ratio).
            assert!(u <= band().high() + 1e-9, "theta {theta}: u = {u}");
            if breakpoint(band(), &cos(theta)) > 0.0 {
                assert!((u - band().high()).abs() < 1e-9, "theta {theta}: u = {u}");
            }
        }
    }

    #[test]
    fn utilization_below_breakpoint_share_is_u_low() {
        let theta = 0.6;
        let p = breakpoint(band(), &cos(theta));
        let d = 0.5 * p * 10.0;
        let u = worst_case_utilization(d, band(), &cos(theta), 10.0);
        assert!((u - band().low()).abs() < 1e-9);
    }

    #[test]
    fn utilization_above_cap_grows_linearly() {
        let theta = 0.6;
        let cap = 10.0;
        let u1 = worst_case_utilization(cap, band(), &cos(theta), cap);
        let u2 = worst_case_utilization(1.2 * cap, band(), &cos(theta), cap);
        assert!((u2 / u1 - 1.2).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_and_zero_cap_edges() {
        assert_eq!(worst_case_utilization(0.0, band(), &cos(0.6), 10.0), 0.0);
        assert_eq!(
            worst_case_utilization(5.0, band(), &cos(0.6), 0.0),
            f64::INFINITY
        );
    }

    #[test]
    fn degraded_threshold_is_cap_when_p_positive() {
        let t = degraded_threshold(band(), &cos(0.6), 10.0);
        assert!((t - 10.0).abs() < 1e-9, "threshold {t}");
    }

    #[test]
    fn degraded_threshold_exceeds_cap_when_p_zero() {
        let t = degraded_threshold(band(), &cos(0.95), 10.0);
        // theta(0.95) > ratio(0.7576): threshold = 10 * 0.66 * 0.95 / 0.5.
        assert!((t - 12.54).abs() < 1e-9, "threshold {t}");
        // Demands between the cap and the threshold are NOT degraded.
        let u = worst_case_utilization(11.0, band(), &cos(0.95), 10.0);
        assert!(u < band().high());
    }

    #[test]
    fn normalized_max_allocation_decreases_with_theta() {
        // Fig. 3: higher theta -> smaller max allocation requirement.
        let mut last = f64::INFINITY;
        for theta in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0] {
            let v = normalized_max_allocation(band(), &cos(theta));
            assert!(v <= last + 1e-12, "v({theta}) = {v} > {last}");
            last = v;
        }
        // Paper: theta = 0.95 needs ~20% less than theta = 0.6.
        let hi = normalized_max_allocation(band(), &cos(0.95));
        let lo = normalized_max_allocation(band(), &cos(0.6));
        let reduction = 1.0 - hi / lo;
        assert!((reduction - 0.20).abs() < 0.03, "reduction {reduction}");
    }
}
