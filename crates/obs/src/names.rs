//! The obs name registry: every span and metric name recorded by
//! production code, declared in one place.
//!
//! Names are the stable vocabulary of the observability layer
//! (DESIGN.md §5e): dashboards, tests, and docs key on them, so they
//! must not drift. The `obs-name-registry` lint rule enforces that
//! every recording call site in the workspace uses either a literal
//! declared here or a direct `names::CONST` reference; adding a new
//! instrument site therefore starts by adding its name below, grouped
//! by pipeline layer.
//!
//! The string values follow the `layer.noun.verb`/`layer.noun.metric`
//! convention established when the obs layer landed.

// --- pipeline stage spans (ropus-core framework) -------------------------

/// Span over the QoS translation stage.
pub const PIPELINE_TRANSLATE: &str = "pipeline.translate";
/// Span over the consolidation (placement search) stage.
pub const PIPELINE_CONSOLIDATE: &str = "pipeline.consolidate";
/// Span over runtime admission-control validation.
pub const PIPELINE_RUNTIME_VALIDATION: &str = "pipeline.runtime_validation";
/// Span over the failure-mode replacement sweep.
pub const PIPELINE_FAILURE_SWEEP: &str = "pipeline.failure_sweep";
/// Span over a chaos replay run.
pub const PIPELINE_CHAOS_REPLAY: &str = "pipeline.chaos_replay";
/// Count of failure cases the sweep could not evaluate.
pub const PIPELINE_FAILURE_SWEEP_UNSUPPORTED_CASES: &str =
    "pipeline.failure_sweep.unsupported_cases";

// --- qos translation -----------------------------------------------------

/// Count of per-application QoS translations performed.
pub const QOS_TRANSLATIONS: &str = "qos.translations";
/// Event: a translation relaxed its target to stay feasible.
pub const QOS_TRANSLATE_RELAXATION: &str = "qos.translate.relaxation";
/// Event: a translation hit the CoS1/CoS2 breakpoint boundary.
pub const QOS_TRANSLATE_BREAKPOINT: &str = "qos.translate.breakpoint";
/// Count of applications translated in a fleet pass.
pub const APPS_TRANSLATED: &str = "apps.translated";

// --- placement search ----------------------------------------------------

/// Span over greedy seeding.
pub const PLACEMENT_SEED: &str = "placement.seed";
/// Span over the GA search.
pub const PLACEMENT_SEARCH: &str = "placement.search";
/// Span over report assembly.
pub const PLACEMENT_REPORT: &str = "placement.report";
/// Count of fitness evaluations performed by the engine.
pub const PLACEMENT_ENGINE_EVALUATIONS: &str = "placement.engine.evaluations";
/// Count of evaluation-cache hits.
pub const PLACEMENT_ENGINE_CACHE_HITS: &str = "placement.engine.cache_hits";
/// Count of evaluation-cache misses.
pub const PLACEMENT_ENGINE_CACHE_MISSES: &str = "placement.engine.cache_misses";
/// Count of GA generations run.
pub const PLACEMENT_SEARCH_GENERATIONS: &str = "placement.search.generations";

// --- chaos replay --------------------------------------------------------

/// Span over the per-slot replay loop.
pub const CHAOS_REPLAY_SLOTS: &str = "chaos.replay.slots";
/// Span over per-segment plan construction.
pub const CHAOS_REPLAY_PLAN_SEGMENTS: &str = "chaos.replay.plan_segments";
/// Count of demand slots shed while degraded.
pub const CHAOS_REPLAY_SHED_SLOTS: &str = "chaos.replay.shed_slots";
/// Count of slots carried by degraded-mode placement.
pub const CHAOS_REPLAY_CARRIED_SLOTS: &str = "chaos.replay.carried_slots";
/// Count of slots contended under degraded capacity.
pub const CHAOS_REPLAY_CONTENDED_SLOTS: &str = "chaos.replay.contended_slots";
/// Count of segments whose degraded plan was infeasible.
pub const CHAOS_REPLAY_INFEASIBLE_SEGMENTS: &str = "chaos.replay.infeasible_segments";
/// Event: a failure segment forced a replan.
pub const CHAOS_SEGMENT_REPLAN: &str = "chaos.segment.replan";
/// Histogram of recovery-window lengths.
pub const CHAOS_WINDOW_RECOVERY: &str = "chaos.window.recovery";

// --- workload manager ----------------------------------------------------

/// Count of saturated host slots.
pub const WLM_HOST_SATURATION: &str = "wlm.host.saturation";
/// Count of CoS1 demand slots scaled by the manager.
pub const WLM_HOST_COS1_SCALED_SLOTS: &str = "wlm.host.cos1_scaled_slots";
/// Count of unmet demand slots.
pub const WLM_HOST_UNMET_SLOTS: &str = "wlm.host.unmet_slots";

// --- migration lifecycle (placement::migration) --------------------------

/// Event: a move entered a new lifecycle phase.
pub const MIGRATION_TRANSITION: &str = "migration.transition";
/// Count of moves planned.
pub const MIGRATION_PLANNED: &str = "migration.planned";
/// Count of moves committed.
pub const MIGRATION_COMMITTED: &str = "migration.committed";
/// Count of rollbacks performed (a retried move may roll back repeatedly).
pub const MIGRATION_ROLLED_BACK: &str = "migration.rolled_back";
/// Count of moves abandoned after exhausting retries.
pub const MIGRATION_FAILED: &str = "migration.failed";
/// Count of moves cancelled by a later re-plan.
pub const MIGRATION_SUPERSEDED: &str = "migration.superseded";
/// Count of retry starts after a rollback.
pub const MIGRATION_RETRIES: &str = "migration.retries";
/// Count of move-slots deferred by a storm cap.
pub const MIGRATION_STORM_DEFERRED: &str = "migration.storm.deferred";

// --- serve daemon (ropus serve) ------------------------------------------

/// Count of sessions admitted directly.
pub const SERVE_ADMIT_ACCEPTED: &str = "serve.admit.accepted";
/// Count of sessions queued for capacity.
pub const SERVE_ADMIT_QUEUED: &str = "serve.admit.queued";
/// Count of sessions rejected outright.
pub const SERVE_ADMIT_REJECTED: &str = "serve.admit.rejected";
/// Count of queued sessions later admitted.
pub const SERVE_QUEUE_ADMITTED: &str = "serve.queue.admitted";
/// Count of queued sessions that expired waiting.
pub const SERVE_QUEUE_EXPIRED: &str = "serve.queue.expired";
/// Count of session departures.
pub const SERVE_DEPART_COUNT: &str = "serve.depart.count";
/// Count of planner ticks.
pub const SERVE_TICK_COUNT: &str = "serve.tick.count";
/// Timing counter: per-tick planner latency in milliseconds.
pub const SERVE_TICK_LATENCY_MS: &str = "serve.tick.latency_ms";
/// Count of queued-admission retry attempts (backoff re-decisions).
pub const SERVE_RETRIES: &str = "serve.retries";
/// Count of migrations committed by the daemon.
pub const SERVE_MIGRATIONS: &str = "serve.migrations";

// --- SLO attainment engine (obs::slo) ------------------------------------

/// Count of utilization slots fed to the SLO engine.
pub const SLO_SAMPLES: &str = "slo.samples";
/// Count of slots degraded against the acceptable band (`U_alloc > U_high`).
pub const SLO_DEGRADED_SLOTS: &str = "slo.degraded_slots";
/// Count of slots breaching the degraded ceiling (`U_alloc > U_degr`).
pub const SLO_BREACH_SLOTS: &str = "slo.breach_slots";
/// Event: a burn-rate rule started firing.
pub const SLO_ALERT_FIRE: &str = "slo.alert.fire";
/// Event: a burn-rate rule stopped firing.
pub const SLO_ALERT_CLEAR: &str = "slo.alert.clear";
/// The fast-burn (page-worthy) alert rule.
pub const SLO_BURN_FAST: &str = "slo.burn.fast";
/// The slow-burn (ticket-worthy) alert rule.
pub const SLO_BURN_SLOW: &str = "slo.burn.slow";

// --- telemetry stream (ropus serve `subscribe` / ropus watch) -------------

/// Stream line kind: an obs metric snapshot delta for one tick.
pub const WATCH_STREAM_DELTA: &str = "watch.stream.delta";
/// Stream line kind: a daemon lifecycle event (admit/depart/migrate).
pub const WATCH_STREAM_EVENT: &str = "watch.stream.event";
/// Stream line kind: an SLO alert transition.
pub const WATCH_STREAM_ALERT: &str = "watch.stream.alert";

#[cfg(test)]
mod tests {
    /// The registry is a vocabulary: values must be unique, and every
    /// name must follow the dotted lower-case convention.
    #[test]
    fn names_are_unique_and_well_formed() {
        let all = [
            super::PIPELINE_TRANSLATE,
            super::PIPELINE_CONSOLIDATE,
            super::PIPELINE_RUNTIME_VALIDATION,
            super::PIPELINE_FAILURE_SWEEP,
            super::PIPELINE_CHAOS_REPLAY,
            super::PIPELINE_FAILURE_SWEEP_UNSUPPORTED_CASES,
            super::QOS_TRANSLATIONS,
            super::QOS_TRANSLATE_RELAXATION,
            super::QOS_TRANSLATE_BREAKPOINT,
            super::APPS_TRANSLATED,
            super::PLACEMENT_SEED,
            super::PLACEMENT_SEARCH,
            super::PLACEMENT_REPORT,
            super::PLACEMENT_ENGINE_EVALUATIONS,
            super::PLACEMENT_ENGINE_CACHE_HITS,
            super::PLACEMENT_ENGINE_CACHE_MISSES,
            super::PLACEMENT_SEARCH_GENERATIONS,
            super::CHAOS_REPLAY_SLOTS,
            super::CHAOS_REPLAY_PLAN_SEGMENTS,
            super::CHAOS_REPLAY_SHED_SLOTS,
            super::CHAOS_REPLAY_CARRIED_SLOTS,
            super::CHAOS_REPLAY_CONTENDED_SLOTS,
            super::CHAOS_REPLAY_INFEASIBLE_SEGMENTS,
            super::CHAOS_SEGMENT_REPLAN,
            super::CHAOS_WINDOW_RECOVERY,
            super::WLM_HOST_SATURATION,
            super::WLM_HOST_COS1_SCALED_SLOTS,
            super::WLM_HOST_UNMET_SLOTS,
            super::SERVE_ADMIT_ACCEPTED,
            super::SERVE_ADMIT_QUEUED,
            super::SERVE_ADMIT_REJECTED,
            super::SERVE_QUEUE_ADMITTED,
            super::SERVE_QUEUE_EXPIRED,
            super::SERVE_DEPART_COUNT,
            super::SERVE_TICK_COUNT,
            super::SERVE_TICK_LATENCY_MS,
            super::SERVE_RETRIES,
            super::SERVE_MIGRATIONS,
            super::SLO_SAMPLES,
            super::SLO_DEGRADED_SLOTS,
            super::SLO_BREACH_SLOTS,
            super::SLO_ALERT_FIRE,
            super::SLO_ALERT_CLEAR,
            super::SLO_BURN_FAST,
            super::SLO_BURN_SLOW,
            super::WATCH_STREAM_DELTA,
            super::WATCH_STREAM_EVENT,
            super::WATCH_STREAM_ALERT,
            super::MIGRATION_TRANSITION,
            super::MIGRATION_PLANNED,
            super::MIGRATION_COMMITTED,
            super::MIGRATION_ROLLED_BACK,
            super::MIGRATION_FAILED,
            super::MIGRATION_SUPERSEDED,
            super::MIGRATION_RETRIES,
            super::MIGRATION_STORM_DEFERRED,
        ];
        let unique: std::collections::BTreeSet<&str> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicate registry values");
        for name in all {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "name `{name}` breaks the dotted lower-case convention"
            );
            assert!(
                name.contains('.'),
                "name `{name}` is missing its layer prefix"
            );
        }
    }
}
