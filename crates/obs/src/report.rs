//! The serializable observability snapshot.
//!
//! [`ObsReport`] is a pure value: two deterministically ordered record
//! streams (spans and events) plus a metrics snapshot (counters, gauges,
//! fixed-bucket histograms), each sorted by name. With the
//! [`NullClock`](crate::NullClock) installed, serializing a report is a
//! pure function of the instrumented code path, so the same run produces
//! byte-identical JSON regardless of thread count.
//!
//! # JSON schema
//!
//! ```json
//! {
//!   "spans":      [ { "name": "...", "seq": 0, "thread": 0, "wall_ms": 0.0 } ],
//!   "events":     [ { "name": "...", "seq": 1, "thread": 0,
//!                     "attrs": [ { "key": "...", "value": "..." } ] } ],
//!   "counters":   [ { "name": "...", "value": 3 } ],
//!   "gauges":     [ { "name": "...", "value": 0.5 } ],
//!   "histograms": [ { "name": "...", "bounds": [0.5, 0.9],
//!                     "counts": [10, 4, 1], "total": 15 } ]
//! }
//! ```
//!
//! `counts` has one more entry than `bounds`: bucket `i` counts samples
//! `<= bounds[i]`, and the final bucket counts everything above the last
//! bound. `seq` is the global emission ordinal and `thread` the ordinal of
//! the emitting thread (first-emission order); records are sorted by
//! `(seq, thread)`.

use serde::{Deserialize, Serialize};

/// One completed span: a named phase with its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Static span name, dot-separated (`"placement.search"`).
    pub name: String,
    /// Global emission ordinal (assigned when the span *opens*).
    pub seq: u64,
    /// Ordinal of the emitting thread.
    pub thread: u64,
    /// Duration in milliseconds; exactly `0.0` under the null clock.
    pub wall_ms: f64,
    /// `seq` of the span that was open on the same thread when this one
    /// opened (`None` for roots; omitted from JSON so pre-existing
    /// reports round-trip unchanged).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent: Option<u64>,
}

/// One key/value annotation on an event.
///
/// Values are pre-rendered to strings (numbers via their shortest `Display`
/// form) so the record stream serializes identically everywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventAttr {
    /// Attribute key.
    pub key: String,
    /// Attribute value, rendered to text.
    pub value: String,
}

/// One point-in-time event with optional attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Static event name, dot-separated (`"qos.translate.breakpoint"`).
    pub name: String,
    /// Global emission ordinal.
    pub seq: u64,
    /// Ordinal of the emitting thread.
    pub thread: u64,
    /// Attributes in the order they were attached.
    pub attrs: Vec<EventAttr>,
}

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Static counter name.
    pub name: String,
    /// Accumulated value (saturating).
    pub value: u64,
}

/// A named last-write-wins gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Static gauge name.
    pub name: String,
    /// Most recently set value.
    pub value: f64,
}

/// A named fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Static histogram name.
    pub name: String,
    /// Upper bucket bounds (inclusive), strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `bounds.len() + 1` entries, the last one
    /// counting samples above the final bound.
    pub counts: Vec<u64>,
    /// Total samples observed (the sum of `counts`, saturating).
    pub total: u64,
}

impl HistogramSnapshot {
    /// Bucket-resolution quantile estimate: the inclusive upper bound of
    /// the bucket holding the sample of rank `ceil(q · total)` (rank 1
    /// for `q = 0`). Samples in the overflow bucket clamp to the last
    /// bound, so estimates are monotone in `q` and never exceed the
    /// bucket edges. Returns `None` when the histogram is empty or has
    /// no bounds.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || self.bounds.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(*count);
            if seen >= rank {
                // lint:allow(panic-slice-index): min() clamps to the last
                // index of bounds, checked non-empty at entry.
                return Some(self.bounds[i.min(self.bounds.len() - 1)]);
            }
        }
        self.bounds.last().copied()
    }
}

/// One aggregated node of the span tree: all spans sharing the same
/// root-to-node name path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTreeNode {
    /// Name path from root to this node, joined with `" / "`.
    pub path: String,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Spans aggregated into this node.
    pub count: u64,
    /// Total duration including children, milliseconds.
    pub inclusive_ms: f64,
    /// Total duration minus the children recorded in this report,
    /// milliseconds (floored at 0 in case of clock skew).
    pub exclusive_ms: f64,
}

/// A full observability snapshot: record streams plus metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObsReport {
    /// Completed spans, sorted by `(seq, thread)`.
    #[serde(default)]
    pub spans: Vec<SpanRecord>,
    /// Events, sorted by `(seq, thread)`.
    #[serde(default)]
    pub events: Vec<EventRecord>,
    /// Counters, sorted by name.
    #[serde(default)]
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    #[serde(default)]
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    #[serde(default)]
    pub histograms: Vec<HistogramSnapshot>,
}

impl ObsReport {
    /// Whether the snapshot recorded nothing at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// The value of counter `name`, or 0 if it never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name`, if any sample was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Events named `name`, in emission order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Spans named `name`, in emission order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Aggregates the span stream into a tree keyed by root-to-node name
    /// paths, with inclusive and exclusive time per node, sorted by path
    /// (lexicographic, so parents precede their children).
    ///
    /// Spans whose `parent` seq is absent from this report (e.g. in a
    /// delta) are treated as roots.
    pub fn span_rollup(&self) -> Vec<SpanTreeNode> {
        use std::collections::BTreeMap;

        // Path of each span, memoized by seq (parents always have a
        // smaller seq than their children, but the walk below does not
        // rely on it).
        let by_seq: BTreeMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.seq, s)).collect();
        let mut paths: BTreeMap<u64, (String, usize)> = BTreeMap::new();
        fn path_of(
            seq: u64,
            by_seq: &BTreeMap<u64, &SpanRecord>,
            paths: &mut BTreeMap<u64, (String, usize)>,
        ) -> (String, usize) {
            if let Some(hit) = paths.get(&seq) {
                return hit.clone();
            }
            // lint:allow(panic-expect): only called with seqs taken from
            // by_seq keys.
            let span = by_seq.get(&seq).expect("seq from by_seq");
            let value = match span.parent.and_then(|p| by_seq.get(&p).map(|_| p)) {
                Some(parent) => {
                    let (parent_path, parent_depth) = path_of(parent, by_seq, paths);
                    (format!("{parent_path} / {}", span.name), parent_depth + 1)
                }
                None => (span.name.clone(), 0),
            };
            paths.insert(seq, value.clone());
            value
        }

        // Inclusive time of each node, plus the child time charged back
        // to its parent for the exclusive figure.
        let mut nodes: BTreeMap<String, SpanTreeNode> = BTreeMap::new();
        let mut child_ms: BTreeMap<u64, f64> = BTreeMap::new();
        for span in &self.spans {
            if let Some(parent) = span.parent.filter(|p| by_seq.contains_key(p)) {
                *child_ms.entry(parent).or_insert(0.0) += span.wall_ms;
            }
        }
        for span in &self.spans {
            let (path, depth) = path_of(span.seq, &by_seq, &mut paths);
            let children = child_ms.get(&span.seq).copied().unwrap_or(0.0);
            let node = nodes.entry(path.clone()).or_insert(SpanTreeNode {
                path,
                depth,
                count: 0,
                inclusive_ms: 0.0,
                exclusive_ms: 0.0,
            });
            node.count += 1;
            node.inclusive_ms += span.wall_ms;
            node.exclusive_ms += (span.wall_ms - children).max(0.0);
        }
        nodes.into_values().collect()
    }

    /// Everything recorded in `self` but not in `earlier`, as a report:
    /// trace records are filtered by seq membership (seqs are globally
    /// unique across spans *and* events), counters and histogram buckets
    /// carry the integer difference, and gauges appear only when new or
    /// changed (bitwise). [`ObsReport::absorb`]-ing the delta into
    /// `earlier` reproduces `self` bit-exactly.
    ///
    /// `earlier` must be a previous snapshot of the same collector.
    pub fn delta_since(&self, earlier: &ObsReport) -> ObsReport {
        use std::collections::BTreeSet;

        let seen: BTreeSet<u64> = earlier
            .spans
            .iter()
            .map(|s| s.seq)
            .chain(earlier.events.iter().map(|e| e.seq))
            .collect();
        ObsReport {
            spans: self
                .spans
                .iter()
                .filter(|s| !seen.contains(&s.seq))
                .cloned()
                .collect(),
            events: self
                .events
                .iter()
                .filter(|e| !seen.contains(&e.seq))
                .cloned()
                .collect(),
            counters: self
                .counters
                .iter()
                .filter_map(|c| {
                    // lint:allow(obs-static-name): a report *lookup*, not
                    // a recording call — no vocabulary is minted here.
                    let diff = c.value.saturating_sub(earlier.counter(&c.name));
                    (diff > 0).then(|| CounterSnapshot {
                        name: c.name.clone(),
                        value: diff,
                    })
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| {
                    // lint:allow(obs-static-name): a report lookup, not a
                    // recording call.
                    let old = earlier.gauge(&g.name);
                    old.is_none_or(|old| old.to_bits() != g.value.to_bits())
                })
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|h| {
                    // lint:allow(obs-static-name): a report lookup, not a
                    // recording call.
                    let old = earlier.histogram(&h.name);
                    let counts: Vec<u64> = h
                        .counts
                        .iter()
                        .enumerate()
                        .map(|(i, c)| {
                            let before = old.and_then(|o| o.counts.get(i)).copied().unwrap_or(0);
                            c.saturating_sub(before)
                        })
                        .collect();
                    let total = h.total.saturating_sub(old.map_or(0, |o| o.total));
                    counts.iter().any(|c| *c > 0).then(|| HistogramSnapshot {
                        name: h.name.clone(),
                        bounds: h.bounds.clone(),
                        counts,
                        total,
                    })
                })
                .collect(),
        }
    }

    /// Merges a [`ObsReport::delta_since`] delta into this report,
    /// reproducing the snapshot the delta was taken from bit-exactly:
    /// trace records re-merge under the `(seq, thread)` sort, counters
    /// and histogram buckets add, gauges overwrite.
    pub fn absorb(&mut self, delta: &ObsReport) {
        self.spans.extend(delta.spans.iter().cloned());
        self.spans.sort_by_key(|s| (s.seq, s.thread));
        self.events.extend(delta.events.iter().cloned());
        self.events.sort_by_key(|e| (e.seq, e.thread));
        for c in &delta.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value = mine.value.saturating_add(c.value),
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for g in &delta.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => mine.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &delta.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => {
                    for (i, c) in h.counts.iter().enumerate() {
                        if let Some(mine_c) = mine.counts.get_mut(i) {
                            *mine_c = mine_c.saturating_add(*c);
                        }
                    }
                    mine.total = mine.total.saturating_add(h.total);
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_round_trips() {
        let report = ObsReport::default();
        assert!(report.is_empty());
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn lookup_helpers_find_records() {
        let report = ObsReport {
            counters: vec![CounterSnapshot {
                name: "a.b".to_string(),
                value: 7,
            }],
            gauges: vec![GaugeSnapshot {
                name: "g".to_string(),
                value: 0.25,
            }],
            ..ObsReport::default()
        };
        assert_eq!(report.counter("a.b"), 7);
        assert_eq!(report.counter("missing"), 0);
        assert_eq!(report.gauge("g"), Some(0.25));
        assert_eq!(report.gauge("missing"), None);
    }

    fn hist(counts: Vec<u64>) -> HistogramSnapshot {
        let total = counts.iter().sum();
        HistogramSnapshot {
            name: "h".to_string(),
            bounds: vec![0.25, 0.5, 0.75, 1.0],
            counts,
            total,
        }
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = hist(vec![10, 40, 30, 15, 5]);
        assert_eq!(h.quantile(0.0), Some(0.25));
        assert_eq!(h.quantile(0.5), Some(0.5));
        assert_eq!(h.quantile(0.95), Some(1.0));
        // Overflow bucket clamps to the last bound.
        assert_eq!(h.quantile(1.0), Some(1.0));
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        assert_eq!(hist(vec![0, 0, 0, 0, 0]).quantile(0.5), None);
    }

    fn span(name: &str, seq: u64, wall_ms: f64, parent: Option<u64>) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            seq,
            thread: 0,
            wall_ms,
            parent,
        }
    }

    #[test]
    fn span_rollup_charges_child_time_to_parents() {
        let report = ObsReport {
            spans: vec![
                span("root", 0, 10.0, None),
                span("child", 1, 4.0, Some(0)),
                span("child", 2, 3.0, Some(0)),
                span("leaf", 3, 1.0, Some(2)),
            ],
            ..ObsReport::default()
        };
        let rollup = report.span_rollup();
        assert_eq!(rollup.len(), 3);
        assert_eq!(rollup[0].path, "root");
        assert_eq!(rollup[0].depth, 0);
        assert_eq!(rollup[0].inclusive_ms, 10.0);
        assert_eq!(rollup[0].exclusive_ms, 3.0);
        assert_eq!(rollup[1].path, "root / child");
        assert_eq!(rollup[1].count, 2);
        assert_eq!(rollup[1].inclusive_ms, 7.0);
        assert_eq!(rollup[1].exclusive_ms, 6.0);
        assert_eq!(rollup[2].path, "root / child / leaf");
        assert_eq!(rollup[2].depth, 2);
    }

    #[test]
    fn span_rollup_treats_missing_parents_as_roots() {
        let report = ObsReport {
            spans: vec![span("orphan", 7, 2.0, Some(3))],
            ..ObsReport::default()
        };
        let rollup = report.span_rollup();
        assert_eq!(rollup[0].path, "orphan");
        assert_eq!(rollup[0].depth, 0);
        assert_eq!(rollup[0].exclusive_ms, 2.0);
    }

    #[test]
    fn delta_then_absorb_reproduces_the_later_snapshot() {
        use crate::Obs;

        let obs = Obs::deterministic();
        obs.counter("c", 2);
        obs.gauge("g", 1.0);
        obs.histogram("h", &[0.5], 0.2);
        {
            let _s = obs.span("phase.one");
            obs.event("e.first").with_u64("n", 1).emit();
        }
        let first = obs.report();

        obs.counter("c", 3);
        obs.counter("fresh", 1);
        obs.gauge("g", 2.0);
        obs.histogram("h", &[0.5], 0.9);
        {
            let _s = obs.span("phase.two");
            obs.event("e.second").emit();
        }
        let second = obs.report();

        let delta = second.delta_since(&first);
        assert_eq!(delta.counter("c"), 3);
        assert_eq!(delta.counter("fresh"), 1);
        assert_eq!(delta.gauge("g"), Some(2.0));
        assert_eq!(delta.spans.len(), 1);
        assert_eq!(delta.spans[0].name, "phase.two");
        assert_eq!(delta.events.len(), 1);
        assert_eq!(delta.histogram("h").unwrap().total, 1);

        let mut rebuilt = first.clone();
        rebuilt.absorb(&delta);
        assert_eq!(rebuilt, second);
        assert_eq!(
            serde_json::to_string(&rebuilt).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
    }

    #[test]
    fn unchanged_snapshot_yields_an_empty_delta() {
        use crate::Obs;

        let obs = Obs::deterministic();
        obs.counter("c", 1);
        obs.gauge("g", 0.5);
        let first = obs.report();
        let second = obs.report();
        assert!(second.delta_since(&first).is_empty());
    }
}
