//! The serializable observability snapshot.
//!
//! [`ObsReport`] is a pure value: two deterministically ordered record
//! streams (spans and events) plus a metrics snapshot (counters, gauges,
//! fixed-bucket histograms), each sorted by name. With the
//! [`NullClock`](crate::NullClock) installed, serializing a report is a
//! pure function of the instrumented code path, so the same run produces
//! byte-identical JSON regardless of thread count.
//!
//! # JSON schema
//!
//! ```json
//! {
//!   "spans":      [ { "name": "...", "seq": 0, "thread": 0, "wall_ms": 0.0 } ],
//!   "events":     [ { "name": "...", "seq": 1, "thread": 0,
//!                     "attrs": [ { "key": "...", "value": "..." } ] } ],
//!   "counters":   [ { "name": "...", "value": 3 } ],
//!   "gauges":     [ { "name": "...", "value": 0.5 } ],
//!   "histograms": [ { "name": "...", "bounds": [0.5, 0.9],
//!                     "counts": [10, 4, 1], "total": 15 } ]
//! }
//! ```
//!
//! `counts` has one more entry than `bounds`: bucket `i` counts samples
//! `<= bounds[i]`, and the final bucket counts everything above the last
//! bound. `seq` is the global emission ordinal and `thread` the ordinal of
//! the emitting thread (first-emission order); records are sorted by
//! `(seq, thread)`.

use serde::{Deserialize, Serialize};

/// One completed span: a named phase with its wall-clock duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Static span name, dot-separated (`"placement.search"`).
    pub name: String,
    /// Global emission ordinal (assigned when the span *opens*).
    pub seq: u64,
    /// Ordinal of the emitting thread.
    pub thread: u64,
    /// Duration in milliseconds; exactly `0.0` under the null clock.
    pub wall_ms: f64,
}

/// One key/value annotation on an event.
///
/// Values are pre-rendered to strings (numbers via their shortest `Display`
/// form) so the record stream serializes identically everywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventAttr {
    /// Attribute key.
    pub key: String,
    /// Attribute value, rendered to text.
    pub value: String,
}

/// One point-in-time event with optional attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Static event name, dot-separated (`"qos.translate.breakpoint"`).
    pub name: String,
    /// Global emission ordinal.
    pub seq: u64,
    /// Ordinal of the emitting thread.
    pub thread: u64,
    /// Attributes in the order they were attached.
    pub attrs: Vec<EventAttr>,
}

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Static counter name.
    pub name: String,
    /// Accumulated value (saturating).
    pub value: u64,
}

/// A named last-write-wins gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Static gauge name.
    pub name: String,
    /// Most recently set value.
    pub value: f64,
}

/// A named fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Static histogram name.
    pub name: String,
    /// Upper bucket bounds (inclusive), strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `bounds.len() + 1` entries, the last one
    /// counting samples above the final bound.
    pub counts: Vec<u64>,
    /// Total samples observed (the sum of `counts`, saturating).
    pub total: u64,
}

/// A full observability snapshot: record streams plus metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObsReport {
    /// Completed spans, sorted by `(seq, thread)`.
    #[serde(default)]
    pub spans: Vec<SpanRecord>,
    /// Events, sorted by `(seq, thread)`.
    #[serde(default)]
    pub events: Vec<EventRecord>,
    /// Counters, sorted by name.
    #[serde(default)]
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    #[serde(default)]
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    #[serde(default)]
    pub histograms: Vec<HistogramSnapshot>,
}

impl ObsReport {
    /// Whether the snapshot recorded nothing at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// The value of counter `name`, or 0 if it never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name`, if any sample was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Events named `name`, in emission order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Spans named `name`, in emission order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_round_trips() {
        let report = ObsReport::default();
        assert!(report.is_empty());
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn lookup_helpers_find_records() {
        let report = ObsReport {
            counters: vec![CounterSnapshot {
                name: "a.b".to_string(),
                value: 7,
            }],
            gauges: vec![GaugeSnapshot {
                name: "g".to_string(),
                value: 0.25,
            }],
            ..ObsReport::default()
        };
        assert_eq!(report.counter("a.b"), 7);
        assert_eq!(report.counter("missing"), 0);
        assert_eq!(report.gauge("g"), Some(0.25));
        assert_eq!(report.gauge("missing"), None);
    }
}
