//! Dependency-free observability for the R-Opus workspace.
//!
//! Three facilities behind one cheap-to-clone handle ([`Obs`]):
//!
//! * **Tracing** — named spans ([`Obs::span`]) and events ([`Obs::event`])
//!   collected into per-thread buffers and merged deterministically by a
//!   stable sort on `(seq, thread-ordinal)`;
//! * **Metrics** — a registry of saturating counters, last-write gauges,
//!   and fixed-bucket histograms keyed by `&'static str` names
//!   ([`Obs::counter`], [`Obs::gauge`], [`Obs::histogram`]);
//! * **Profiling** — span durations read from a pluggable [`Clock`]:
//!   [`WallClock`] for interactive runs, [`NullClock`] for deterministic
//!   ones, where every duration is exactly `0.0` and the serialized
//!   [`ObsReport`] is byte-identical across runs and thread counts.
//!
//! The disabled handle ([`Obs::off`]) makes every call a no-op branch, so
//! instrumented library code pays near-zero cost when observability is
//! off (the overhead budget is enforced by `crates/bench/benches/obs.rs`).
//!
//! # Determinism contract
//!
//! Spans and events must be emitted from *serial* code paths only (phase
//! boundaries, per-slot loops); parallel workers may touch **counters and
//! histograms only**, whose integer updates are commutative. Under that
//! discipline — which is how every ropus crate is instrumented — the
//! `(seq, thread)` sort key is reproducible and the report serializes
//! byte-identically for any `--threads` setting.
//!
//! # Example
//!
//! ```
//! use ropus_obs::Obs;
//!
//! let obs = Obs::deterministic();
//! {
//!     let _phase = obs.span("pipeline.translate");
//!     obs.event("qos.breakpoint").with_f64("p", 0.31).emit();
//!     obs.counter("apps.translated", 1);
//! }
//! let report = obs.report();
//! assert_eq!(report.spans[0].name, "pipeline.translate");
//! assert_eq!(report.counter("apps.translated"), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::ThreadId;

pub mod clock;
pub mod names;
pub mod report;
pub mod slo;

pub use clock::{Clock, NullClock, WallClock};
pub use report::{
    CounterSnapshot, EventAttr, EventRecord, GaugeSnapshot, HistogramSnapshot, ObsReport,
    SpanRecord, SpanTreeNode,
};
pub use slo::{
    AlertEvent, AlertKind, BurnRateRule, SloAttainment, SloContract, SloEngine, SloSummary,
};

/// One buffered trace record, before thread ordinals are attached.
enum Record {
    Span {
        name: &'static str,
        seq: u64,
        wall_ms: f64,
        parent: Option<u64>,
    },
    Event {
        name: &'static str,
        seq: u64,
        attrs: Vec<EventAttr>,
    },
}

impl Record {
    fn seq(&self) -> u64 {
        match self {
            Record::Span { seq, .. } | Record::Event { seq, .. } => *seq,
        }
    }
}

/// A registered fixed-bucket histogram.
struct Hist {
    bounds: &'static [f64],
    counts: Vec<u64>,
    total: u64,
}

/// Everything behind the mutex: per-thread record buffers plus metrics.
#[derive(Default)]
struct State {
    /// Thread-ordinal assignment, in first-emission order; a record from
    /// `threads[i]` carries thread ordinal `i`.
    threads: Vec<ThreadId>,
    /// One record buffer per registered thread.
    buffers: Vec<Vec<Record>>,
    /// Seqs of the spans currently open on each thread, innermost last;
    /// the top of a thread's stack is the parent of its next span.
    open_spans: Vec<Vec<u64>>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Hist>,
}

impl State {
    /// Ordinal of the calling thread, registering it on first contact.
    // lint:allow(det-taint): the ordinal only selects a per-thread
    // buffer; report() merges by (seq, ordinal) stable sort, so the
    // emitted snapshot is identical for any thread interleaving.
    fn ordinal(&mut self, id: ThreadId) -> usize {
        match self.threads.iter().position(|t| *t == id) {
            Some(i) => i,
            None => {
                self.threads.push(id);
                self.buffers.push(Vec::new());
                self.open_spans.push(Vec::new());
                self.threads.len() - 1
            }
        }
    }
}

struct Inner {
    clock: Box<dyn Clock>,
    /// Whether timing-dependent metrics ([`Obs::timing_counter`]) are
    /// recorded. False on deterministic collectors, whose snapshots must
    /// be byte-identical across runs and thread counts.
    timing_dependent: bool,
    seq: AtomicU64,
    state: Mutex<State>,
}

impl Inner {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, record: Record) {
        let id = std::thread::current().id();
        let mut state = self.state();
        let ordinal = state.ordinal(id);
        // lint:allow(panic-slice-index): ordinal() pushes a fresh buffer
        // for an unseen thread id before returning its index.
        state.buffers[ordinal].push(record);
    }

    /// Registers an opening span on the calling thread's open-span stack
    /// and returns the seq of the span it nests under, if any.
    fn open_span(&self, seq: u64) -> Option<u64> {
        // lint:allow(det-taint): spans are emitted from serial code only
        // (the crate contract), so the per-thread open-span stack cannot
        // make parent links depend on thread interleaving.
        let id = std::thread::current().id();
        let mut state = self.state();
        let ordinal = state.ordinal(id);
        // lint:allow(panic-slice-index): ordinal() pushes a fresh stack
        // for an unseen thread id before returning its index.
        let stack = &mut state.open_spans[ordinal];
        let parent = stack.last().copied();
        stack.push(seq);
        parent
    }

    /// Records a closing span, removing it from the calling thread's
    /// open-span stack.
    fn close_span(&self, record: Record) {
        let id = std::thread::current().id();
        let mut state = self.state();
        let ordinal = state.ordinal(id);
        let seq = record.seq();
        // lint:allow(panic-slice-index): ordinal() pushes fresh buffers
        // for an unseen thread id before returning its index.
        let stack = &mut state.open_spans[ordinal];
        if let Some(pos) = stack.iter().rposition(|open| *open == seq) {
            stack.remove(pos);
        }
        // lint:allow(panic-slice-index): ordinal() pushes a fresh buffer
        // for an unseen thread id before returning its index.
        state.buffers[ordinal].push(record);
    }
}

/// The observability handle threaded through the pipeline.
///
/// Cheap to clone (an `Option<Arc>`); [`Obs::off`] is a no-op sink, so
/// library code can instrument unconditionally and let the caller decide
/// whether anything is recorded.
#[derive(Clone)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Obs {
    /// The disabled handle, so `#[derive(Default)]` holders stay silent.
    fn default() -> Self {
        Obs::off()
    }
}

/// The shared disabled handle behind [`ObsCtx::none`].
static OFF: Obs = Obs { inner: None };

impl Obs {
    /// The disabled handle: every call is a cheap no-op.
    pub fn off() -> Obs {
        Obs { inner: None }
    }

    /// The current reading of this collector's [`Clock`], in milliseconds
    /// since the collector's epoch. Returns `0.0` on disabled handles and
    /// on [`NullClock`] collectors, so callers can time operations without
    /// touching the system clock directly (the `det-wall-clock` lint
    /// forbids wall-clock reads outside the obs clock facade).
    pub fn now_ms(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |inner| inner.clock.now_ms())
    }

    /// An enabled collector on the given clock. `timing_dependent`
    /// decides whether [`Obs::timing_counter`] records anything; pass
    /// `false` whenever the snapshot must be reproducible.
    pub fn with_clock(clock: Box<dyn Clock>, timing_dependent: bool) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                clock,
                timing_dependent,
                seq: AtomicU64::new(0),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// An enabled collector on the [`NullClock`]: fully deterministic
    /// output (all durations `0.0`, timing-dependent metrics dropped).
    pub fn deterministic() -> Obs {
        Obs::with_clock(Box::new(NullClock), false)
    }

    /// An enabled collector on the [`WallClock`]: real phase timings and
    /// timing-dependent metrics, non-reproducible output.
    pub fn wall() -> Obs {
        Obs::with_clock(Box::new(WallClock::new()), true)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a named span; the span closes (and records its duration)
    /// when the returned guard drops.
    ///
    /// `name` must be a string literal (enforced by the `obs-static-name`
    /// lint). Emit spans from serial code paths only — see the crate-level
    /// determinism contract.
    #[must_use = "a span records its duration when the guard drops"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let seq = inner.next_seq();
        let parent = inner.open_span(seq);
        let start = inner.clock.now_ms();
        SpanGuard {
            active: Some(ActiveSpan {
                inner: Arc::clone(inner),
                name,
                seq,
                parent,
                start,
            }),
        }
    }

    /// Starts building a named event; call [`EventBuilder::emit`] to
    /// record it.
    ///
    /// `name` must be a string literal (enforced by the `obs-static-name`
    /// lint). Emit events from serial code paths only.
    #[must_use = "an event is recorded only when `emit()` is called"]
    pub fn event(&self, name: &'static str) -> EventBuilder {
        EventBuilder {
            inner: self.inner.clone(),
            name,
            attrs: Vec::new(),
        }
    }

    /// Adds `delta` to the named counter (saturating at `u64::MAX`).
    ///
    /// Counter updates are commutative, so counters are safe to touch
    /// from parallel workers.
    pub fn counter(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state();
        let slot = state.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Adds `delta` to the named counter, but only on collectors that
    /// record timing-dependent values (wall-clock runs).
    ///
    /// Use this for quantities that depend on scheduling — cache hit/miss
    /// tallies under parallel scoring, retry counts under contention.
    /// Deterministic collectors drop the update entirely (the metric does
    /// not even appear in the snapshot), the counter-shaped analogue of
    /// [`NullClock`] zeroing span durations.
    pub fn timing_counter(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        if !inner.timing_dependent {
            return;
        }
        let mut state = inner.state();
        let slot = state.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    ///
    /// Gauges are *not* commutative: set them from serial code only.
    pub fn gauge(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.state().gauges.insert(name, value);
    }

    /// Records `value` into the named fixed-bucket histogram.
    ///
    /// `bounds` are inclusive upper bucket bounds, strictly increasing;
    /// the histogram gets `bounds.len() + 1` buckets, the last counting
    /// samples above the final bound. The bounds passed on the first call
    /// win; later calls only need the same slice. Histogram updates are
    /// commutative (integer bucket counts), so they are safe from
    /// parallel workers. NaN samples land in the overflow bucket.
    pub fn histogram(&self, name: &'static str, bounds: &'static [f64], value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut state = inner.state();
        let hist = state.histograms.entry(name).or_insert_with(|| Hist {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
        });
        let bucket = hist
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(hist.bounds.len());
        // lint:allow(panic-slice-index): counts holds bounds.len()+1
        // entries, and bucket is at most bounds.len() (the overflow slot).
        hist.counts[bucket] = hist.counts[bucket].saturating_add(1);
        hist.total = hist.total.saturating_add(1);
    }

    /// Snapshots everything recorded so far into a serializable report.
    ///
    /// Trace records are merged from the per-thread buffers by a stable
    /// sort on `(seq, thread-ordinal)`; metrics are sorted by name. The
    /// collector keeps recording afterwards (the snapshot does not drain).
    pub fn report(&self) -> ObsReport {
        let Some(inner) = &self.inner else {
            return ObsReport::default();
        };
        let state = inner.state();

        let mut merged: Vec<(u64, u64, &Record)> = Vec::new();
        for (thread, buffer) in state.buffers.iter().enumerate() {
            for record in buffer {
                merged.push((record.seq(), thread as u64, record));
            }
        }
        merged.sort_by_key(|(seq, thread, _)| (*seq, *thread));

        let mut spans = Vec::new();
        let mut events = Vec::new();
        for (seq, thread, record) in merged {
            match record {
                Record::Span {
                    name,
                    wall_ms,
                    parent,
                    ..
                } => spans.push(SpanRecord {
                    name: (*name).to_string(),
                    seq,
                    thread,
                    wall_ms: *wall_ms,
                    parent: *parent,
                }),
                Record::Event { name, attrs, .. } => events.push(EventRecord {
                    name: (*name).to_string(),
                    seq,
                    thread,
                    attrs: attrs.clone(),
                }),
            }
        }

        ObsReport {
            spans,
            events,
            counters: state
                .counters
                .iter()
                .map(|(name, value)| CounterSnapshot {
                    name: (*name).to_string(),
                    value: *value,
                })
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(name, value)| GaugeSnapshot {
                    name: (*name).to_string(),
                    value: *value,
                })
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(name, hist)| HistogramSnapshot {
                    name: (*name).to_string(),
                    bounds: hist.bounds.to_vec(),
                    counts: hist.counts.clone(),
                    total: hist.total,
                })
                .collect(),
        }
    }
}

/// A borrowed observability context: the single parameter unified pipeline
/// entry points take instead of `*_observed` twins.
///
/// `ObsCtx` is a `Copy` wrapper over `Option<&Obs>`. It dereferences to an
/// [`Obs`] handle — the borrowed collector when attached, a shared
/// disabled handle otherwise — so instrumented code calls
/// `ctx.span("...")` / `ctx.counter("...", 1)` exactly as it would on an
/// owned `Obs`.
///
/// Construct it with [`ObsCtx::none`] (or `ObsCtx::default()`) for silent
/// runs, or from a collector via `From`:
///
/// ```
/// use ropus_obs::{Obs, ObsCtx};
///
/// fn work(ctx: ObsCtx<'_>) {
///     ctx.counter("work.calls", 1);
/// }
///
/// work(ObsCtx::none()); // silent
/// let obs = Obs::deterministic();
/// work(ObsCtx::from(&obs)); // recorded
/// assert_eq!(obs.report().counter("work.calls"), 1);
/// ```
#[derive(Clone, Copy, Default)]
pub struct ObsCtx<'a> {
    obs: Option<&'a Obs>,
}

impl<'a> ObsCtx<'a> {
    /// The silent context: every observation is a cheap no-op.
    pub fn none() -> ObsCtx<'a> {
        ObsCtx { obs: None }
    }

    /// The underlying handle: the attached collector, or the shared
    /// disabled handle when none is attached.
    pub fn obs(&self) -> &'a Obs {
        self.obs.unwrap_or(&OFF)
    }

    /// Whether a recording collector is attached.
    pub fn is_enabled(&self) -> bool {
        self.obs.is_some_and(Obs::is_enabled)
    }
}

impl<'a> From<&'a Obs> for ObsCtx<'a> {
    fn from(obs: &'a Obs) -> ObsCtx<'a> {
        ObsCtx { obs: Some(obs) }
    }
}

impl std::ops::Deref for ObsCtx<'_> {
    type Target = Obs;

    fn deref(&self) -> &Obs {
        self.obs()
    }
}

impl std::fmt::Debug for ObsCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsCtx")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// The live half of an open span; dropping it records the duration.
struct ActiveSpan {
    inner: Arc<Inner>,
    name: &'static str,
    seq: u64,
    parent: Option<u64>,
    start: f64,
}

/// Guard returned by [`Obs::span`]; records the span when dropped.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let wall_ms = (span.inner.clock.now_ms() - span.start).max(0.0);
        span.inner.close_span(Record::Span {
            name: span.name,
            seq: span.seq,
            wall_ms,
            parent: span.parent,
        });
    }
}

/// Builder returned by [`Obs::event`]; attach attributes, then [`emit`].
///
/// [`emit`]: EventBuilder::emit
pub struct EventBuilder {
    inner: Option<Arc<Inner>>,
    name: &'static str,
    attrs: Vec<EventAttr>,
}

impl EventBuilder {
    /// Attaches a text attribute.
    pub fn with_str(mut self, key: &'static str, value: &str) -> EventBuilder {
        if self.inner.is_some() {
            self.attrs.push(EventAttr {
                key: key.to_string(),
                value: value.to_string(),
            });
        }
        self
    }

    /// Attaches an integer attribute (rendered to text).
    pub fn with_u64(self, key: &'static str, value: u64) -> EventBuilder {
        let rendered = if self.inner.is_some() {
            value.to_string()
        } else {
            String::new()
        };
        self.with_rendered(key, rendered)
    }

    /// Attaches a float attribute (rendered via shortest `Display` form,
    /// which is deterministic across platforms).
    pub fn with_f64(self, key: &'static str, value: f64) -> EventBuilder {
        let rendered = if self.inner.is_some() {
            value.to_string()
        } else {
            String::new()
        };
        self.with_rendered(key, rendered)
    }

    fn with_rendered(mut self, key: &'static str, value: String) -> EventBuilder {
        if self.inner.is_some() {
            self.attrs.push(EventAttr {
                key: key.to_string(),
                value,
            });
        }
        self
    }

    /// Records the event.
    pub fn emit(self) {
        let Some(inner) = self.inner else { return };
        let seq = inner.next_seq();
        inner.push(Record::Event {
            name: self.name,
            seq,
            attrs: self.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        {
            let _g = obs.span("ignored");
            obs.event("ignored").with_u64("k", 1).emit();
            obs.counter("ignored", 5);
            obs.gauge("ignored", 1.0);
            obs.histogram("ignored", &[1.0], 0.5);
        }
        assert!(obs.report().is_empty());
    }

    #[test]
    fn records_interleave_by_sequence() {
        let obs = Obs::deterministic();
        {
            let _outer = obs.span("outer");
            obs.event("first").emit();
            {
                let _inner = obs.span("inner");
            }
            obs.event("second").with_str("k", "v").emit();
        }
        let report = obs.report();
        // Spans take their seq at open time: outer=0, first=1, inner=2,
        // second=3.
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.spans[0].name, "outer");
        assert_eq!(report.spans[0].seq, 0);
        assert_eq!(report.spans[1].name, "inner");
        assert_eq!(report.events[0].name, "first");
        assert_eq!(report.events[1].attrs[0].key, "k");
        assert_eq!(report.events[1].attrs[0].value, "v");
        assert!(report.spans.iter().all(|s| s.wall_ms == 0.0));
    }

    #[test]
    fn nested_spans_record_their_parent_seq() {
        let obs = Obs::deterministic();
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
                let _leaf = obs.span("leaf");
            }
            let _sibling = obs.span("sibling");
        }
        let report = obs.report();
        let parent_of = |name: &str| {
            report
                .spans_named(name)
                .next()
                .and_then(|s| s.parent)
                .map(|p| {
                    report
                        .spans
                        .iter()
                        .find(|s| s.seq == p)
                        .unwrap()
                        .name
                        .clone()
                })
        };
        assert_eq!(parent_of("outer"), None);
        assert_eq!(parent_of("inner"), Some("outer".to_string()));
        assert_eq!(parent_of("leaf"), Some("inner".to_string()));
        assert_eq!(parent_of("sibling"), Some("outer".to_string()));
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let obs = Obs::deterministic();
        obs.counter("c", u64::MAX - 1);
        obs.counter("c", 5);
        assert_eq!(obs.report().counter("c"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        const BOUNDS: [f64; 2] = [0.5, 0.9];
        let obs = Obs::deterministic();
        for v in [0.1, 0.5, 0.7, 0.95, 2.0] {
            obs.histogram("h", &BOUNDS, v);
        }
        let report = obs.report();
        let hist = report.histogram("h").unwrap();
        assert_eq!(hist.bounds, vec![0.5, 0.9]);
        assert_eq!(hist.counts, vec![2, 1, 2]);
        assert_eq!(hist.total, 5);
    }

    #[test]
    fn parallel_counter_updates_from_worker_threads_accumulate() {
        let obs = Obs::deterministic();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        obs.counter("work", 1);
                        obs.histogram("load", &[0.5], 0.25);
                    }
                });
            }
        });
        let report = obs.report();
        assert_eq!(report.counter("work"), 4000);
        assert_eq!(report.histogram("load").unwrap().total, 4000);
    }

    #[test]
    fn timing_counters_are_dropped_on_deterministic_collectors() {
        let det = Obs::deterministic();
        det.timing_counter("racy", 3);
        assert!(det.report().counters.is_empty(), "not even a zero entry");

        let wall = Obs::wall();
        wall.timing_counter("racy", 3);
        assert_eq!(wall.report().counter("racy"), 3);
    }

    #[test]
    fn report_is_a_non_draining_snapshot() {
        let obs = Obs::deterministic();
        obs.counter("c", 1);
        assert_eq!(obs.report().counter("c"), 1);
        obs.counter("c", 1);
        assert_eq!(obs.report().counter("c"), 2);
    }

    #[test]
    fn obs_ctx_derefs_to_attached_or_disabled_handle() {
        let silent = ObsCtx::none();
        assert!(!silent.is_enabled());
        silent.counter("ignored", 1);
        assert!(silent.obs().report().is_empty());

        let obs = Obs::deterministic();
        let ctx = ObsCtx::from(&obs);
        assert!(ctx.is_enabled());
        ctx.counter("seen", 2);
        {
            let _g = ctx.span("phase");
        }
        assert_eq!(obs.report().counter("seen"), 2);
        assert_eq!(obs.report().spans[0].name, "phase");
    }

    #[test]
    fn obs_ctx_over_disabled_handle_reports_disabled() {
        let off = Obs::off();
        let ctx = ObsCtx::from(&off);
        assert!(!ctx.is_enabled());
    }

    #[test]
    fn now_ms_is_zero_when_off_or_deterministic() {
        assert_eq!(Obs::off().now_ms(), 0.0);
        assert_eq!(Obs::deterministic().now_ms(), 0.0);
        assert!(Obs::wall().now_ms() >= 0.0);
    }

    #[test]
    fn deterministic_reports_serialize_identically() {
        let run = || {
            let obs = Obs::deterministic();
            let _g = obs.span("phase");
            obs.event("evt").with_u64("n", 3).with_f64("x", 0.5).emit();
            obs.counter("c", 2);
            obs.gauge("g", 1.5);
            obs.histogram("h", &[1.0], 0.2);
            drop(_g);
            serde_json::to_string(&obs.report()).unwrap()
        };
        assert_eq!(run(), run());
    }
}
