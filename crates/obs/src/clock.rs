//! The clock abstraction behind every obs timestamp.
//!
//! Profiling hooks never read the system clock directly: they ask the
//! [`Clock`] installed on the collector. Deterministic runs (tier-1 tests,
//! the chaos replay determinism suite, anything that must serialize
//! byte-identically across runs and `--threads` settings) install
//! [`NullClock`], which freezes every timestamp at zero so durations
//! vanish from the output. Interactive CLI runs install [`WallClock`] for
//! real phase timings.

/// A monotonic millisecond clock.
///
/// Implementations must be cheap: `now_ms` sits on the span hot path.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since an arbitrary fixed epoch.
    fn now_ms(&self) -> f64;
}

/// The deterministic clock: every reading is `0.0`.
///
/// All span durations become exactly `0.0`, so serialized obs output is a
/// pure function of the instrumented code path — byte-identical across
/// runs, hosts, and thread counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_ms(&self) -> f64 {
        0.0
    }
}

/// The real monotonic clock, anchored at construction time.
///
/// Output that includes wall-clock durations is *not* reproducible; use it
/// only for interactive profiling, never in determinism-sensitive tests.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    // This module is the one sanctioned home of std::time reads (the
    // det-wall-clock lint exempts exactly this file); deterministic paths
    // use NullClock, and the determinism suite asserts on it.
    epoch: std::time::Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_frozen_at_zero() {
        let clock = NullClock;
        assert_eq!(clock.now_ms(), 0.0);
        assert_eq!(clock.now_ms(), 0.0);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
