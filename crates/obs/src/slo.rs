//! Deterministic per-app SLO attainment and multi-window burn-rate
//! alerting, in slot-time.
//!
//! The engine consumes the same per-slot utilization-of-allocation
//! signal the wlm/chaos replays already compute and measures it against
//! the R-Opus contract: a slot is *degraded* when `U_alloc > U_high`
//! and a *breach* when `U_alloc > U_degr`. The degradation allowance
//! `M_degr` is the error budget; burn rate is the ratio of the observed
//! degraded fraction in a window to that allowance. A rule fires when
//! both its short and long windows burn at or above its factor (the
//! classic multi-window guard against one-slot blips and stale alerts)
//! and clears when the short window cools below the factor.
//!
//! Everything here is slot-indexed integer/f64 arithmetic over values
//! the callers already compute deterministically, so the emitted
//! [`AlertEvent`] stream serializes byte-identically across runs and
//! thread counts (alerts are evaluated from serial per-slot loops only,
//! per the crate-level determinism contract).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{names, ObsCtx};

/// Comparison slack for utilization thresholds, matching the audit layer.
const EPS: f64 = 1e-9;

/// Floor for the allowance used in burn-rate division, so strict
/// contracts (allowance 0) produce large finite burns instead of
/// infinities that would not round-trip through JSON.
const MIN_BURN_ALLOWANCE: f64 = 1e-6;

/// One application's SLO contract, in slot-time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloContract {
    /// Application name.
    pub app: String,
    /// Acceptable utilization-of-allocation ceiling (`U_high`).
    pub u_high: f64,
    /// Degraded-mode utilization ceiling (`U_degr`; equal to `u_high`
    /// for strict contracts).
    pub u_degr: f64,
    /// Fraction of slots allowed above `u_high` (`M_degr`; the error
    /// budget allowance, 0 for strict contracts).
    pub allowance: f64,
    /// Longest tolerated contiguous degraded run (`T_degr`), in slots.
    pub t_degr_slots: Option<usize>,
}

impl SloContract {
    /// A contract with the given thresholds.
    pub fn new(
        app: impl Into<String>,
        u_high: f64,
        u_degr: f64,
        allowance: f64,
        t_degr_slots: Option<usize>,
    ) -> SloContract {
        SloContract {
            app: app.into(),
            u_high,
            u_degr,
            allowance,
            t_degr_slots,
        }
    }
}

/// A multi-window burn-rate alert rule.
///
/// `name` must resolve to a registry const in [`crate::names`] (the
/// `obs-name-registry` lint checks constructor call sites).
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRateRule {
    name: &'static str,
    short_slots: usize,
    long_slots: usize,
    factor: f64,
}

impl BurnRateRule {
    /// A rule firing when both the short and the long window burn the
    /// error budget at `factor`× the sustainable rate.
    pub fn new(name: &'static str, short_slots: usize, long_slots: usize, factor: f64) -> Self {
        BurnRateRule {
            name,
            short_slots: short_slots.max(1),
            long_slots: long_slots.max(short_slots.max(1)),
            factor,
        }
    }

    /// The page-worthy fast burn: 12-slot / 144-slot windows at 6×.
    pub fn fast_burn() -> Self {
        BurnRateRule::new(names::SLO_BURN_FAST, 12, 144, 6.0)
    }

    /// The ticket-worthy slow burn: 72-slot / 576-slot windows at 2×.
    pub fn slow_burn() -> Self {
        BurnRateRule::new(names::SLO_BURN_SLOW, 72, 576, 2.0)
    }

    /// The default rule pair (fast + slow burn).
    pub fn default_rules() -> Vec<BurnRateRule> {
        vec![BurnRateRule::fast_burn(), BurnRateRule::slow_burn()]
    }

    /// Rule name (a registry const value).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Short-window length, slots.
    pub fn short_slots(&self) -> usize {
        self.short_slots
    }

    /// Long-window length, slots.
    pub fn long_slots(&self) -> usize {
        self.long_slots
    }

    /// Burn-rate threshold.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

/// Whether an alert fired or cleared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// The rule started firing at this slot.
    Fire,
    /// The rule stopped firing at this slot.
    Clear,
}

/// One typed, byte-stable alert transition with its evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Rule name (a registry const value, e.g. `slo.burn.fast`).
    pub rule: String,
    /// Application the rule evaluated.
    pub app: String,
    /// Fire or clear.
    pub kind: AlertKind,
    /// Slot index at which the transition happened.
    pub slot: usize,
    /// Effective short window (clamped to samples so far), slots.
    pub short_window: usize,
    /// Effective long window (clamped to samples so far), slots.
    pub long_window: usize,
    /// Degraded slots observed inside the short window.
    pub short_bad: usize,
    /// Degraded slots observed inside the long window.
    pub long_bad: usize,
    /// Short-window burn rate (degraded fraction / allowance).
    pub short_burn: f64,
    /// Long-window burn rate.
    pub long_burn: f64,
    /// Contracted allowance (`M_degr`).
    pub allowance: f64,
    /// Fraction of the whole-session error budget still unspent
    /// (negative once overspent).
    pub budget_remaining: f64,
}

/// Rolling attainment of one application against its contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloAttainment {
    /// Application name.
    pub app: String,
    /// Slots observed.
    pub samples: usize,
    /// Slots with `U_alloc > U_high`.
    pub degraded_slots: usize,
    /// Slots with `U_alloc > U_degr`.
    pub breach_slots: usize,
    /// Fraction of slots within the acceptable band (`1` when idle).
    pub attainment: f64,
    /// Contracted allowance (`M_degr`).
    pub allowance: f64,
    /// Fraction of the error budget still unspent (negative once
    /// overspent; `1` when nothing degraded).
    pub budget_remaining: f64,
    /// Longest contiguous degraded run observed, slots.
    pub longest_degraded_run_slots: usize,
    /// Contracted run limit (`T_degr`), slots.
    pub t_degr_slots: Option<usize>,
    /// Whether some degraded run exceeded `T_degr`.
    pub t_degr_exceeded: bool,
}

impl SloAttainment {
    /// Whether the application stayed inside every contract clause the
    /// engine tracks (fraction allowance, breach ceiling, run limit).
    pub fn is_attained(&self) -> bool {
        let frac = if self.samples > 0 {
            self.degraded_slots as f64 / self.samples as f64
        } else {
            0.0
        };
        frac <= self.allowance + EPS && self.breach_slots == 0 && !self.t_degr_exceeded
    }
}

/// The SLO outcome of a whole run: per-app attainment plus the full
/// alert transition log, in evaluation order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SloSummary {
    /// Per-application attainment, in registration order.
    pub apps: Vec<SloAttainment>,
    /// Alert transitions, in slot order.
    pub alerts: Vec<AlertEvent>,
}

impl SloSummary {
    /// Whether any rule fired for any application.
    pub fn any_fired(&self) -> bool {
        self.alerts.iter().any(|a| a.kind == AlertKind::Fire)
    }

    /// Whether every application attained its contract.
    pub fn all_attained(&self) -> bool {
        self.apps.iter().all(SloAttainment::is_attained)
    }
}

/// Per-(app, rule) incremental window state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    short_bad: usize,
    long_bad: usize,
    firing: bool,
}

/// Per-app rolling state.
#[derive(Debug, Clone)]
struct AppState {
    contract: SloContract,
    /// Degraded flags, newest at the back, trimmed to the longest rule
    /// window.
    history: VecDeque<bool>,
    samples: usize,
    degraded: usize,
    breaches: usize,
    current_run: usize,
    longest_run: usize,
    rules: Vec<RuleState>,
}

/// The deterministic SLO attainment engine.
///
/// Register one [`SloContract`] per application, then feed each app's
/// per-slot utilization of allocation through [`SloEngine::observe`]
/// from a *serial* loop. Alerts accumulate in evaluation order; drain
/// them for streaming or take the whole [`SloSummary`] at the end.
#[derive(Debug, Clone)]
pub struct SloEngine {
    rules: Vec<BurnRateRule>,
    apps: Vec<AppState>,
    alerts: Vec<AlertEvent>,
    drained: usize,
    max_window: usize,
}

impl SloEngine {
    /// An engine evaluating the given rules (commonly
    /// [`BurnRateRule::default_rules`]).
    pub fn new(rules: Vec<BurnRateRule>) -> SloEngine {
        let max_window = rules.iter().map(|r| r.long_slots).max().unwrap_or(1);
        SloEngine {
            rules,
            apps: Vec::new(),
            alerts: Vec::new(),
            drained: 0,
            max_window,
        }
    }

    /// Registers an application contract; returns its index for
    /// [`SloEngine::observe`].
    pub fn register(&mut self, contract: SloContract) -> usize {
        self.apps.push(AppState {
            contract,
            history: VecDeque::new(),
            samples: 0,
            degraded: 0,
            breaches: 0,
            current_run: 0,
            longest_run: 0,
            rules: vec![RuleState::default(); self.rules.len()],
        });
        self.apps.len() - 1
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Feeds one slot's utilization of allocation for app `app` and
    /// evaluates every rule. Call from serial code only; `slot` must be
    /// monotonically non-decreasing per app.
    ///
    /// Fire/clear transitions are appended to the alert log and echoed
    /// as `slo.alert.fire` / `slo.alert.clear` obs events.
    pub fn observe(&mut self, app: usize, slot: usize, u: f64, obs: ObsCtx<'_>) {
        let Some(state) = self.apps.get_mut(app) else {
            return;
        };
        let bad = u > state.contract.u_high + EPS;
        let breach = u > state.contract.u_degr + EPS;
        state.samples += 1;
        if bad {
            state.degraded += 1;
            state.current_run += 1;
            state.longest_run = state.longest_run.max(state.current_run);
        } else {
            state.current_run = 0;
        }
        if breach {
            state.breaches += 1;
        }
        state.history.push_back(bad);

        let allowance = state.contract.allowance.max(MIN_BURN_ALLOWANCE);
        let budget_remaining =
            budget_remaining(state.degraded, state.samples, state.contract.allowance);
        for (rule, rs) in self.rules.iter().zip(state.rules.iter_mut()) {
            if bad {
                rs.short_bad += 1;
                rs.long_bad += 1;
            }
            let len = state.history.len();
            // lint:allow(panic-slice-index): history keeps max_window ≥
            // long_slots ≥ short_slots entries, and samples > window
            // implies len > window, so len - 1 - window is in range.
            if state.samples > rule.short_slots && state.history[len - 1 - rule.short_slots] {
                rs.short_bad -= 1;
            }
            // lint:allow(panic-slice-index): same bound as above for the
            // long window.
            if state.samples > rule.long_slots && state.history[len - 1 - rule.long_slots] {
                rs.long_bad -= 1;
            }

            let short_window = rule.short_slots.min(state.samples);
            let long_window = rule.long_slots.min(state.samples);
            let short_burn = rs.short_bad as f64 / short_window as f64 / allowance;
            let long_burn = rs.long_bad as f64 / long_window as f64 / allowance;

            // Hold evaluation until the short window has filled once, so
            // a single early sample cannot page.
            let armed = state.samples >= rule.short_slots;
            let transition =
                if !rs.firing && armed && short_burn >= rule.factor && long_burn >= rule.factor {
                    rs.firing = true;
                    Some(AlertKind::Fire)
                } else if rs.firing && short_burn < rule.factor {
                    rs.firing = false;
                    Some(AlertKind::Clear)
                } else {
                    None
                };
            if let Some(kind) = transition {
                let alert = AlertEvent {
                    rule: rule.name.to_string(),
                    app: state.contract.app.clone(),
                    kind,
                    slot,
                    short_window,
                    long_window,
                    short_bad: rs.short_bad,
                    long_bad: rs.long_bad,
                    short_burn,
                    long_burn,
                    allowance: state.contract.allowance,
                    budget_remaining,
                };
                let event_name = match kind {
                    AlertKind::Fire => names::SLO_ALERT_FIRE,
                    AlertKind::Clear => names::SLO_ALERT_CLEAR,
                };
                // lint:allow(obs-static-name): selects between exactly two
                // registry constants — no dynamic vocabulary.
                obs.event(event_name)
                    .with_str("rule", &alert.rule)
                    .with_str("app", &alert.app)
                    .with_u64("slot", slot as u64)
                    .with_f64("short_burn", alert.short_burn)
                    .emit();
                self.alerts.push(alert);
            }
        }

        if state.history.len() > self.max_window {
            state.history.pop_front();
        }
    }

    /// Alerts accumulated since the last drain (for streaming).
    pub fn drain_alerts(&mut self) -> Vec<AlertEvent> {
        // lint:allow(panic-slice-index): drained only ever advances to
        // alerts.len(), which never shrinks.
        let fresh = self.alerts[self.drained..].to_vec();
        self.drained = self.alerts.len();
        fresh
    }

    /// The full alert log, in evaluation order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Per-app attainment so far, in registration order.
    pub fn attainment(&self) -> Vec<SloAttainment> {
        self.apps
            .iter()
            .map(|s| SloAttainment {
                app: s.contract.app.clone(),
                samples: s.samples,
                degraded_slots: s.degraded,
                breach_slots: s.breaches,
                attainment: if s.samples > 0 {
                    1.0 - s.degraded as f64 / s.samples as f64
                } else {
                    1.0
                },
                allowance: s.contract.allowance,
                budget_remaining: budget_remaining(s.degraded, s.samples, s.contract.allowance),
                longest_degraded_run_slots: s.longest_run,
                t_degr_slots: s.contract.t_degr_slots,
                t_degr_exceeded: s
                    .contract
                    .t_degr_slots
                    .is_some_and(|limit| s.longest_run > limit),
            })
            .collect()
    }

    /// Aggregate totals into the slo.* counters (one batch, not per
    /// slot, to keep the observe path off the metrics mutex).
    pub fn record_counters(&self, obs: ObsCtx<'_>) {
        let (mut samples, mut degraded, mut breaches) = (0u64, 0u64, 0u64);
        for s in &self.apps {
            samples += s.samples as u64;
            degraded += s.degraded as u64;
            breaches += s.breaches as u64;
        }
        if samples > 0 {
            obs.counter(names::SLO_SAMPLES, samples);
        }
        if degraded > 0 {
            obs.counter(names::SLO_DEGRADED_SLOTS, degraded);
        }
        if breaches > 0 {
            obs.counter(names::SLO_BREACH_SLOTS, breaches);
        }
    }

    /// The final summary: attainment plus the full alert log.
    pub fn summary(&self) -> SloSummary {
        SloSummary {
            apps: self.attainment(),
            alerts: self.alerts.clone(),
        }
    }
}

/// Unspent fraction of the whole-session error budget.
fn budget_remaining(degraded: usize, samples: usize, allowance: f64) -> f64 {
    let budget = allowance * samples as f64;
    if budget > 0.0 {
        (budget - degraded as f64) / budget
    } else if degraded == 0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn engine() -> SloEngine {
        // Small windows so tests stay readable: fire at 4× over 4/16.
        let mut e = SloEngine::new(vec![BurnRateRule::new("slo.burn.fast", 4, 16, 4.0)]);
        e.register(SloContract::new("app", 0.66, 0.9, 0.05, Some(3)));
        e
    }

    #[test]
    fn clean_run_never_alerts_and_attains() {
        let mut e = engine();
        for slot in 0..32 {
            e.observe(0, slot, 0.5, ObsCtx::none());
        }
        assert!(e.alerts().is_empty());
        let a = &e.attainment()[0];
        assert_eq!(a.samples, 32);
        assert_eq!(a.degraded_slots, 0);
        assert_eq!(a.attainment, 1.0);
        assert_eq!(a.budget_remaining, 1.0);
        assert!(a.is_attained());
    }

    #[test]
    fn sustained_burst_fires_then_clears() {
        let mut e = engine();
        // 8 clean, 8 degraded, 12 clean.
        for slot in 0..28 {
            let u = if (8..16).contains(&slot) { 0.8 } else { 0.5 };
            e.observe(0, slot, u, ObsCtx::none());
        }
        let alerts = e.alerts();
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::Fire);
        assert_eq!(alerts[1].kind, AlertKind::Clear);
        // The short window burns past 4× on the first degraded slot, but
        // the long window (clamped to the 10 samples seen) needs a second
        // one: fire lands at slot 9.
        assert_eq!(alerts[0].slot, 9);
        assert!(alerts[0].short_burn >= 4.0);
        assert!(alerts[0].long_burn >= 4.0);
        // Clear when the short window cools: the burst ends after slot
        // 15; 4 clean slots later (slot 19) the short window is empty.
        assert_eq!(alerts[1].slot, 19);
        let a = &e.attainment()[0];
        assert_eq!(a.degraded_slots, 8);
        assert_eq!(a.longest_degraded_run_slots, 8);
        assert!(a.t_degr_exceeded);
        assert!(!a.is_attained());
        assert!(a.budget_remaining < 0.0, "budget overspent");
    }

    #[test]
    fn single_blip_does_not_fire_once_windows_filled() {
        let mut e = SloEngine::new(vec![BurnRateRule::new("slo.burn.fast", 4, 16, 4.0)]);
        e.register(SloContract::new("app", 0.66, 0.9, 0.3, None));
        // Allowance 0.3: one degraded slot in a full short window is a
        // burn of (1/4)/0.3 < 1 < factor.
        for slot in 0..8 {
            let u = if slot == 6 { 0.8 } else { 0.5 };
            e.observe(0, slot, u, ObsCtx::none());
        }
        assert!(e.alerts().is_empty());
    }

    #[test]
    fn breaches_and_runs_are_tracked_separately() {
        let mut e = engine();
        for (slot, u) in [0.5, 0.95, 0.8, 0.5].into_iter().enumerate() {
            e.observe(0, slot, u, ObsCtx::none());
        }
        let a = &e.attainment()[0];
        assert_eq!(a.degraded_slots, 2);
        assert_eq!(a.breach_slots, 1);
        assert_eq!(a.longest_degraded_run_slots, 2);
        assert!(!a.t_degr_exceeded, "run of 2 within the 3-slot limit");
        assert!(!a.is_attained(), "a breach always fails attainment");
    }

    #[test]
    fn drain_returns_each_alert_once() {
        let mut e = engine();
        for slot in 0..28 {
            let u = if (8..16).contains(&slot) { 0.8 } else { 0.5 };
            e.observe(0, slot, u, ObsCtx::none());
        }
        let first = e.drain_alerts();
        assert_eq!(first.len(), 2);
        assert!(e.drain_alerts().is_empty());
        assert_eq!(e.alerts().len(), 2, "the full log is retained");
    }

    #[test]
    fn alert_transitions_emit_obs_events() {
        let obs = Obs::deterministic();
        let mut e = engine();
        for slot in 0..28 {
            let u = if (8..16).contains(&slot) { 0.8 } else { 0.5 };
            e.observe(0, slot, u, ObsCtx::from(&obs));
        }
        e.record_counters(ObsCtx::from(&obs));
        let report = obs.report();
        assert_eq!(report.events_named(names::SLO_ALERT_FIRE).count(), 1);
        assert_eq!(report.events_named(names::SLO_ALERT_CLEAR).count(), 1);
        assert_eq!(report.counter(names::SLO_SAMPLES), 28);
        assert_eq!(report.counter(names::SLO_DEGRADED_SLOTS), 8);
    }

    #[test]
    fn long_window_keeps_a_fast_clear_honest() {
        // After a long outage the short window cools quickly but the
        // long window still shows the spend; the rule must still clear
        // (clears key on the short window alone).
        let mut e = engine();
        for slot in 0..40 {
            let u = if (4..20).contains(&slot) { 0.8 } else { 0.5 };
            e.observe(0, slot, u, ObsCtx::none());
        }
        let alerts = e.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[1].kind, AlertKind::Clear);
        assert!(alerts[1].long_bad > 0, "long window still carries spend");
    }

    #[test]
    fn summary_serializes_deterministically() {
        let run = || {
            let mut e = engine();
            for slot in 0..28 {
                let u = if (8..16).contains(&slot) { 0.8 } else { 0.5 };
                e.observe(0, slot, u, ObsCtx::none());
            }
            serde_json::to_string(&e.summary()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn strict_contract_fires_on_sustained_exceedance() {
        let mut e = SloEngine::new(vec![BurnRateRule::new("slo.burn.fast", 4, 16, 4.0)]);
        e.register(SloContract::new("strict", 0.66, 0.66, 0.0, None));
        for slot in 0..8 {
            e.observe(0, slot, 0.7, ObsCtx::none());
        }
        assert!(e.summary().any_fired(), "zero allowance burns instantly");
        assert!(e.alerts()[0].short_burn.is_finite());
    }
}
