//! Typed errors for the workload-manager simulation layer.

use std::fmt;

use ropus_trace::TraceError;

/// Error raised by the host scheduler or its replay paths.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WlmError {
    /// A host was configured with a capacity that is zero, negative, or
    /// non-finite — replaying against it would produce NaN utilizations
    /// and degenerate grant scales instead of a diagnosable failure.
    InvalidCapacity {
        /// The rejected capacity value.
        capacity: f64,
    },
    /// The underlying trace layer reported an error.
    Trace(TraceError),
}

impl fmt::Display for WlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WlmError::InvalidCapacity { capacity } => {
                write!(
                    f,
                    "host capacity must be positive and finite, got {capacity}"
                )
            }
            WlmError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for WlmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WlmError::InvalidCapacity { .. } => None,
            WlmError::Trace(e) => Some(e),
        }
    }
}

impl From<TraceError> for WlmError {
    fn from(err: TraceError) -> Self {
        WlmError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let t: WlmError = TraceError::Empty.into();
        assert!(std::error::Error::source(&t).is_some());
        let c = WlmError::InvalidCapacity { capacity: 0.0 };
        assert!(std::error::Error::source(&c).is_none());
        assert!(c.to_string().contains("0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<WlmError>();
    }
}
