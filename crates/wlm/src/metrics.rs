//! Delivered-QoS auditing: checking the utilization of allocation a
//! workload actually experienced against its [`AppQos`] requirement.
//!
//! This closes R-Opus's loop: the translation *promises* that if the pool
//! honours its CoS commitments, the application's utilization of
//! allocation stays within its acceptable/degraded envelope. The audit
//! measures whether a simulated (or monitored) run kept the promise.

use serde::{Deserialize, Serialize};

use ropus_obs::{ObsCtx, SloContract, SloEngine};
use ropus_qos::AppQos;
use ropus_trace::runs::{longest_run, runs_where};
use ropus_trace::Trace;

/// One audited requirement clause and its measured value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloViolation {
    /// More than `M_degr` of measurements exceeded `U_high`.
    DegradedFractionExceeded {
        /// Measured fraction of degraded slots.
        measured: f64,
        /// Allowed fraction (`M_degr`).
        allowed: f64,
    },
    /// Some measurement exceeded the degraded utilization bound.
    UtilizationAboveDegraded {
        /// Largest measured utilization of allocation.
        measured: f64,
        /// The bound (`U_degr`, or `U_high` with no degradation spec).
        bound: f64,
    },
    /// A degraded episode lasted longer than `T_degr`.
    DegradedRunTooLong {
        /// Longest measured degraded episode, minutes.
        measured_minutes: u32,
        /// The limit (`T_degr`), minutes.
        limit_minutes: u32,
    },
    /// More degraded epochs occurred in a week than the budget allows.
    TooManyDegradedEpochs {
        /// Largest per-week epoch count measured.
        measured: usize,
        /// The budget (`max_epochs_per_week`).
        allowed: u32,
    },
}

/// Result of auditing a utilization-of-allocation series against an
/// [`AppQos`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloAudit {
    /// Fraction of slots with `U_alloc <= U_high` (acceptable or better).
    pub acceptable_fraction: f64,
    /// Fraction of slots with `U_high < U_alloc` (degraded or worse).
    pub degraded_fraction: f64,
    /// Largest measured utilization of allocation.
    pub max_utilization: f64,
    /// Longest contiguous degraded episode, in minutes.
    pub longest_degraded_minutes: u32,
    /// Largest number of degraded epochs in any week (the whole trace
    /// counts as one window when it is shorter than a week).
    pub max_epochs_per_week: usize,
    /// All violated clauses (empty = compliant).
    pub violations: Vec<SloViolation>,
}

impl SloAudit {
    /// Whether every clause of the requirement held.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Converts an [`AppQos`] requirement into the slot-time terms of the
/// streaming SLO engine: `U_high` is the degradation threshold, `U_degr`
/// the breach ceiling (collapsing to `U_high` for strict contracts),
/// `M_degr` the error-budget allowance, and `T_degr` is floored into
/// whole slots (a run is over the limit once its slot count strictly
/// exceeds `limit_minutes / slot_minutes`).
pub fn slo_contract(app: impl Into<String>, qos: &AppQos, slot_minutes: u32) -> SloContract {
    let band = qos.band();
    match qos.degradation() {
        Some(degr) => SloContract::new(
            app,
            band.high(),
            degr.u_degr(),
            degr.max_fraction(),
            degr.time_limit_minutes()
                .map(|m| (m / slot_minutes.max(1)) as usize),
        ),
        None => SloContract::new(app, band.high(), band.high(), 0.0, None),
    }
}

/// Streams a replayed utilization-of-allocation trace into the SLO
/// engine, one observation per slot starting at `start_slot`.
///
/// This is the bridge from [`crate::host::WorkloadOutcome::utilization`]
/// (and any other audited utilization series) to the attainment /
/// burn-rate layer; call it from serial code only, in fleet order.
pub fn observe_utilization(
    engine: &mut SloEngine,
    app: usize,
    utilization: &Trace,
    start_slot: usize,
    obs: ObsCtx<'_>,
) {
    for (t, u) in utilization.samples().iter().enumerate() {
        engine.observe(app, start_slot + t, *u, obs);
    }
}

/// Audits a measured utilization-of-allocation trace against a
/// requirement.
///
/// Slots with zero utilization count as acceptable (an idle application is
/// trivially within its band; `U_low` is a sizing goal, not an SLO floor).
pub fn audit(utilization: &Trace, qos: &AppQos) -> SloAudit {
    let band = qos.band();
    let degraded_fraction = utilization.fraction_above(band.high());
    let max_utilization = utilization.peak();
    let run = longest_run(utilization.samples(), |u| u > band.high());
    let longest_degraded_minutes = run as u32 * utilization.calendar().slot_minutes();
    let per_week = utilization.calendar().slots_per_week();
    let max_epochs_per_week = utilization
        .samples()
        .chunks(per_week)
        .map(|week| runs_where(week, |u| u > band.high()).len())
        .max()
        .unwrap_or(0);

    let mut violations = Vec::new();
    match qos.degradation() {
        Some(degr) => {
            if degraded_fraction > degr.max_fraction() + 1e-9 {
                violations.push(SloViolation::DegradedFractionExceeded {
                    measured: degraded_fraction,
                    allowed: degr.max_fraction(),
                });
            }
            if max_utilization > degr.u_degr() + 1e-9 {
                violations.push(SloViolation::UtilizationAboveDegraded {
                    measured: max_utilization,
                    bound: degr.u_degr(),
                });
            }
            if let Some(limit) = degr.time_limit_minutes() {
                if longest_degraded_minutes > limit {
                    violations.push(SloViolation::DegradedRunTooLong {
                        measured_minutes: longest_degraded_minutes,
                        limit_minutes: limit,
                    });
                }
            }
            if let Some(budget) = degr.max_epochs_per_week() {
                if max_epochs_per_week > budget as usize {
                    violations.push(SloViolation::TooManyDegradedEpochs {
                        measured: max_epochs_per_week,
                        allowed: budget,
                    });
                }
            }
        }
        None => {
            if max_utilization > band.high() + 1e-9 {
                violations.push(SloViolation::UtilizationAboveDegraded {
                    measured: max_utilization,
                    bound: band.high(),
                });
            }
        }
    }

    SloAudit {
        acceptable_fraction: 1.0 - degraded_fraction,
        degraded_fraction,
        max_utilization,
        longest_degraded_minutes,
        max_epochs_per_week,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::{DegradationSpec, UtilizationBand};
    use ropus_trace::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn qos(limit: Option<u32>) -> AppQos {
        AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(DegradationSpec::new(0.03, 0.9, limit).unwrap()),
        )
    }

    fn trace(samples: Vec<f64>) -> Trace {
        Trace::from_samples(cal(), samples).unwrap()
    }

    #[test]
    fn compliant_run_passes() {
        let u = trace(vec![0.5, 0.6, 0.55, 0.66, 0.4, 0.0]);
        let a = audit(&u, &qos(Some(30)));
        assert!(a.is_compliant(), "{:?}", a.violations);
        assert_eq!(a.degraded_fraction, 0.0);
    }

    #[test]
    fn occasional_degradation_within_allowance_passes() {
        let mut samples = vec![0.6; 100];
        samples[10] = 0.8; // one degraded slot = 1% < 3%
        let a = audit(&trace(samples), &qos(Some(30)));
        assert!(a.is_compliant());
        assert!((a.degraded_fraction - 0.01).abs() < 1e-12);
        assert_eq!(a.longest_degraded_minutes, 5);
    }

    #[test]
    fn too_many_degraded_slots_flagged() {
        let mut samples = vec![0.6; 100];
        for s in samples.iter_mut().take(10) {
            *s = 0.8;
        }
        let a = audit(&trace(samples), &qos(None));
        assert!(!a.is_compliant());
        assert!(matches!(
            a.violations[0],
            SloViolation::DegradedFractionExceeded { .. }
        ));
    }

    #[test]
    fn utilization_above_u_degr_flagged() {
        let mut samples = vec![0.6; 100];
        samples[3] = 0.95;
        let a = audit(&trace(samples), &qos(None));
        assert!(a
            .violations
            .iter()
            .any(|v| matches!(v, SloViolation::UtilizationAboveDegraded { .. })));
    }

    #[test]
    fn long_degraded_run_flagged_only_with_time_limit() {
        // 7 slots = 35 minutes of degradation (2.33% of 300 slots, within
        // the 3% fraction allowance).
        let mut samples = vec![0.6; 300];
        for s in samples.iter_mut().skip(50).take(7) {
            *s = 0.8;
        }
        let unlimited = audit(&trace(samples.clone()), &qos(None));
        assert!(unlimited.is_compliant(), "{:?}", unlimited.violations);
        let limited = audit(&trace(samples), &qos(Some(30)));
        assert!(!limited.is_compliant());
        assert!(matches!(
            limited.violations[0],
            SloViolation::DegradedRunTooLong {
                measured_minutes: 35,
                limit_minutes: 30
            }
        ));
    }

    #[test]
    fn epoch_budget_violation_flagged() {
        use ropus_qos::DegradationSpec;
        // Three separated degraded epochs, each a single slot (well within
        // the 3% fraction and any time limit), against a budget of two.
        let mut samples = vec![0.6; 300];
        samples[10] = 0.8;
        samples[100] = 0.8;
        samples[200] = 0.8;
        let spec = DegradationSpec::new(0.03, 0.9, None)
            .unwrap()
            .with_epoch_budget(2)
            .unwrap();
        let qos = AppQos::new(UtilizationBand::new(0.5, 0.66).unwrap(), Some(spec));
        let a = audit(&trace(samples.clone()), &qos);
        assert_eq!(a.max_epochs_per_week, 3);
        assert!(a.violations.iter().any(|v| matches!(
            v,
            SloViolation::TooManyDegradedEpochs {
                measured: 3,
                allowed: 2
            }
        )));
        // Under budget passes.
        let spec = DegradationSpec::new(0.03, 0.9, None)
            .unwrap()
            .with_epoch_budget(3)
            .unwrap();
        let qos = AppQos::new(UtilizationBand::new(0.5, 0.66).unwrap(), Some(spec));
        assert!(audit(&trace(samples), &qos).is_compliant());
    }

    #[test]
    fn strict_qos_flags_any_exceedance() {
        let strict = AppQos::strict(UtilizationBand::new(0.5, 0.66).unwrap());
        let a = audit(&trace(vec![0.5, 0.7]), &strict);
        assert!(!a.is_compliant());
        let ok = audit(&trace(vec![0.5, 0.6]), &strict);
        assert!(ok.is_compliant());
    }

    #[test]
    fn slo_contract_converts_qos_terms_into_slot_time() {
        let c = slo_contract("app", &qos(Some(30)), 5);
        assert_eq!(c.app, "app");
        assert_eq!(c.u_high, 0.66);
        assert_eq!(c.u_degr, 0.9);
        assert_eq!(c.allowance, 0.03);
        assert_eq!(c.t_degr_slots, Some(6));

        let strict = AppQos::strict(UtilizationBand::new(0.5, 0.66).unwrap());
        let c = slo_contract("s", &strict, 5);
        assert_eq!(c.u_degr, 0.66);
        assert_eq!(c.allowance, 0.0);
        assert_eq!(c.t_degr_slots, None);
    }

    #[test]
    fn observe_utilization_agrees_with_the_audit_on_degraded_slots() {
        use ropus_obs::{BurnRateRule, SloEngine};

        let mut samples = vec![0.6; 100];
        for s in samples.iter_mut().skip(40).take(7) {
            *s = 0.8;
        }
        let u = trace(samples);
        let qos = qos(Some(30));
        let audited = audit(&u, &qos);

        let mut engine = SloEngine::new(BurnRateRule::default_rules());
        let app = engine.register(slo_contract("app", &qos, 5));
        observe_utilization(&mut engine, app, &u, 0, ropus_obs::ObsCtx::none());
        let attainment = &engine.attainment()[0];
        assert_eq!(attainment.samples, 100);
        assert_eq!(
            attainment.degraded_slots as f64 / attainment.samples as f64,
            audited.degraded_fraction
        );
        assert_eq!(attainment.longest_degraded_run_slots, 7);
        assert!(
            attainment.t_degr_exceeded,
            "35 min run over the 30 min limit"
        );
        assert!(!attainment.is_attained());
    }
}
