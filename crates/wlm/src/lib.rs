//! Workload-manager and host-scheduler simulation (§II of the paper).
//!
//! The paper assumes each resource runs a *workload manager* (HP-UX WLM /
//! gWLM class) that periodically sets each resource container's capacity
//! allocation to `burst factor × recent demand`, and a scheduler that
//! serves the higher allocation priority (CoS1) before the lower (CoS2).
//! Those products are proprietary, so this crate simulates their documented
//! semantics at trace granularity:
//!
//! * [`manager`] — the per-workload allocation control loop (burst factor,
//!   EWMA demand estimate, min/max allocation clamps, per-CoS split);
//! * [`host`] — a host scheduler that grants CoS1 requests first and
//!   shares the remaining capacity across CoS2 requests, producing
//!   delivered-allocation and served-demand traces;
//! * [`metrics`] — the utilization-of-allocation audit that checks the
//!   delivered QoS against an [`AppQos`](ropus_qos::AppQos) requirement,
//!   closing the loop on the translation's promise.
//!
//! # Example
//!
//! ```
//! use ropus_obs::ObsCtx;
//! use ropus_qos::{AppQos, CosSpec};
//! use ropus_qos::translation::translate;
//! use ropus_trace::{Calendar, Trace};
//! use ropus_wlm::host::{Host, HostedWorkload};
//! use ropus_wlm::manager::WlmPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cal = Calendar::five_minute();
//! let demand = Trace::constant(cal, 2.0, cal.slots_per_week())?;
//! let qos = AppQos::paper_default(None);
//! let cos2 = CosSpec::new(0.9, 60)?;
//! let translation = translate(&demand, &qos, &cos2, ObsCtx::none())?;
//! let policy = WlmPolicy::from_translation(&qos, &translation.report);
//! let host = Host::new(16.0)?;
//! let outcome = host.run(&[HostedWorkload::new("app", demand, policy)], ObsCtx::none())?;
//! assert!(outcome.workloads[0].served.peak() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod error;
pub mod host;
pub mod manager;
pub mod metrics;

pub use error::WlmError;
