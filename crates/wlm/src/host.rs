//! The two-priority host scheduler.
//!
//! "Demands associated with the higher priority are allocated capacity
//! first; they correspond to the higher CoS. Any remaining capacity is then
//! allocated to satisfy lower priority demands" (§II). The host replays
//! each workload's demand trace through its manager, grants CoS1 requests
//! first (scaled proportionally in the pathological case where even they
//! exceed capacity), then shares the remaining capacity across CoS2
//! requests proportionally to their size.

use ropus_obs::ObsCtx;
use serde::{Deserialize, Serialize};

use ropus_trace::{kernels, Trace, TraceError};

use crate::error::WlmError;
use crate::manager::{WlmPolicy, WorkloadManager};

/// Bucket bounds of the `wlm.host.saturation` histogram: per-slot granted
/// capacity as a fraction of the host's limit.
const SATURATION_BOUNDS: [f64; 5] = [0.25, 0.5, 0.75, 0.9, 1.0];

/// A workload co-located on the host: demand trace plus manager policy.
#[derive(Debug, Clone, PartialEq)]
pub struct HostedWorkload {
    name: String,
    demand: Trace,
    policy: WlmPolicy,
    /// Active slot window `[start, end)`: the workload requests nothing
    /// outside it, and its manager starts fresh at `start`. `None` =
    /// active over the whole trace.
    active: Option<(usize, usize)>,
}

impl HostedWorkload {
    /// Creates a hosted workload, active over its whole trace.
    pub fn new(name: impl Into<String>, demand: Trace, policy: WlmPolicy) -> Self {
        HostedWorkload {
            name: name.into(),
            demand,
            policy,
            active: None,
        }
    }

    /// Restricts the workload to the slot window `[start, end)` — the
    /// residency window of a workload that migrated onto or off the
    /// host mid-trace. Outside the window it requests (and is granted)
    /// nothing; its manager's smoothing state starts fresh at `start`.
    pub fn with_window(mut self, start: usize, end: usize) -> Self {
        self.active = Some((start, end.max(start)));
        self
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The demand trace driving the simulation.
    pub fn demand(&self) -> &Trace {
        &self.demand
    }

    /// The active slot window, when restricted.
    pub fn window(&self) -> Option<(usize, usize)> {
        self.active
    }

    /// Replays this workload's manager into per-slot CoS request
    /// columns of length `len`, honoring the active window.
    fn request_columns(&self, len: usize) -> (Vec<f64>, Vec<f64>) {
        let (start, end) = self
            .active
            .map_or((0, len), |(s, e)| (s.min(len), e.min(len)));
        let mut c1 = vec![0.0; len];
        let mut c2 = vec![0.0; len];
        let mut manager = WorkloadManager::new(self.policy);
        let demand = self.demand.samples();
        for slot in start..end {
            // lint:allow(panic-slice-index): start/end clamped to len,
            // and demand length was validated against len by the host.
            let request = manager.observe(demand[slot]);
            c1[slot] = request.cos1;
            c2[slot] = request.cos2;
        }
        (c1, c2)
    }
}

/// Per-workload simulation outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadOutcome {
    /// Workload name.
    pub name: String,
    /// Capacity granted per slot (CoS1 + CoS2 grants).
    pub granted: Trace,
    /// Demand actually served per slot (`min(demand, grant)`).
    pub served: Trace,
    /// Demand that found no capacity, per slot.
    pub unmet: Trace,
    /// Measured utilization of allocation per slot (`served / granted`,
    /// 0 where nothing was granted).
    pub utilization: Trace,
}

/// Whole-host simulation outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostOutcome {
    /// Per-workload outcomes, in input order.
    pub workloads: Vec<WorkloadOutcome>,
    /// Total capacity granted per slot across workloads.
    pub total_granted: Trace,
    /// Slots where CoS2 requests were not fully granted.
    pub contended_slots: usize,
}

/// A host with a fixed capacity running the two-priority scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Host {
    capacity: f64,
}

impl Host {
    /// Creates a host.
    ///
    /// # Errors
    ///
    /// Returns [`WlmError::InvalidCapacity`] if `capacity` is not positive
    /// and finite — a zero-capacity host would replay every workload into
    /// NaN utilizations instead of failing loudly.
    pub fn new(capacity: f64) -> Result<Self, WlmError> {
        if !capacity.is_finite() || capacity <= 0.0 {
            return Err(WlmError::InvalidCapacity { capacity });
        }
        Ok(Host { capacity })
    }

    /// The host's capacity limit.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Replays the workloads' demand traces through their managers and the
    /// two-priority scheduler.
    ///
    /// The manager reacts to the demand measured in the *current* slot —
    /// the paper's 5-minute control interval collapses to trace
    /// granularity. Unserved demand is dropped (interactive work is lost,
    /// not queued); carry-over behaviour is the placement simulator's
    /// concern, not the host scheduler's.
    ///
    /// When `obs` carries an enabled handle, every slot's granted total
    /// lands in the `wlm.host.saturation` histogram (as a fraction of the
    /// capacity limit), and outcomes the result traces cannot express —
    /// slots where the CoS1 *guarantee* itself was scaled down, and slots
    /// where some demand went unmet — are counted instead of dropped
    /// (`wlm.host.cos1_scaled_slots`, `wlm.host.unmet_slots`).
    ///
    /// Metric updates are commutative counters/histograms only, so hosts
    /// may be replayed from parallel workers without breaking snapshot
    /// determinism.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Misaligned`] (wrapped in
    /// [`WlmError::Trace`]) when demand traces differ in length, or
    /// [`TraceError::Empty`] when no workloads are given.
    pub fn run(
        &self,
        workloads: &[HostedWorkload],
        obs: ObsCtx<'_>,
    ) -> Result<HostOutcome, WlmError> {
        self.run_with_reservations(workloads, &[], obs)
    }

    /// [`run`](Self::run), with migration reservations double-booked on
    /// the host.
    ///
    /// Each reservation's manager requests are added to the per-slot CoS
    /// sums — squeezing the scales exactly as a member would, which is
    /// how the drain phase of a migration serves the same demand on both
    /// ends — but reservations receive no grants of their own and
    /// produce no [`WorkloadOutcome`]; `total_granted` covers members
    /// only. With an empty reservation list this is exactly
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run); reservation traces must align with the
    /// members' too.
    pub fn run_with_reservations(
        &self,
        workloads: &[HostedWorkload],
        reservations: &[HostedWorkload],
        obs: ObsCtx<'_>,
    ) -> Result<HostOutcome, WlmError> {
        let first = workloads.first().ok_or(TraceError::Empty)?;
        let len = first.demand.len();
        let calendar = first.demand.calendar();
        for w in workloads.iter().chain(reservations) {
            if w.demand.len() != len {
                return Err(WlmError::Trace(TraceError::Misaligned {
                    left: len,
                    right: w.demand.len(),
                }));
            }
        }

        let n = workloads.len();

        // Pass 1, workload-major: replay each manager over its whole
        // demand column. Manager state is per-workload, so running columns
        // to completion produces the same requests as the old interleaved
        // slot loop while keeping each manager's state in registers.
        let mut cos1_req: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut cos2_req: Vec<Vec<f64>> = Vec::with_capacity(n);
        for w in workloads {
            let (c1, c2) = w.request_columns(len);
            cos1_req.push(c1);
            cos2_req.push(c2);
        }

        // Pass 2, columnar: slot-wise request sums accumulated per
        // workload in input order — the same left-to-right association as
        // the per-slot `iter().sum()` this replaces, so the sums are
        // bit-identical. Reservations are summed after the members, in
        // input order, so a reservation-free call never re-associates.
        let mut cos1_sum = vec![0.0; len];
        for column in &cos1_req {
            kernels::add_assign(&mut cos1_sum, column);
        }
        let mut cos2_sum = vec![0.0; len];
        for column in &cos2_req {
            kernels::add_assign(&mut cos2_sum, column);
        }
        for r in reservations {
            let (c1, c2) = r.request_columns(len);
            kernels::add_assign(&mut cos1_sum, &c1);
            kernels::add_assign(&mut cos2_sum, &c2);
        }

        // Pass 3, slot-major: the two-priority scales. CoS1 is granted in
        // full (scaled down proportionally only if the guarantee was
        // violated upstream); CoS2 shares what remains proportionally.
        let mut cos1_scale = vec![1.0; len];
        let mut cos2_scale = vec![1.0; len];
        let mut contended_slots = 0usize;
        for (((&c1, &c2), s1), s2) in cos1_sum
            .iter()
            .zip(&cos2_sum)
            .zip(cos1_scale.iter_mut())
            .zip(cos2_scale.iter_mut())
        {
            if c1 > self.capacity {
                *s1 = self.capacity / c1;
            }
            let remaining = (self.capacity - c1 * *s1).max(0.0);
            if c2 > remaining && c2 > 0.0 {
                *s2 = remaining / c2;
            }
            if *s2 < 1.0 || *s1 < 1.0 {
                contended_slots += 1;
            }
            if *s1 < 1.0 {
                obs.counter("wlm.host.cos1_scaled_slots", 1);
            }
        }

        // Pass 4, workload-major elementwise: grants and outcomes per
        // column, reusing the request buffers; host-level sums accumulate
        // per workload in input order (same association as before).
        let mut total_granted = vec![0.0; len];
        let mut slot_unmet = vec![0.0; len];
        let mut outcomes = Vec::with_capacity(n);
        for ((w, c1), c2) in workloads.iter().zip(cos1_req).zip(cos2_req) {
            let demand = w.demand.samples();
            let mut granted = c1;
            for ((g, &c2v), (&s1, &s2)) in granted
                .iter_mut()
                .zip(&c2)
                .zip(cos1_scale.iter().zip(&cos2_scale))
            {
                *g = *g * s1 + c2v * s2;
            }
            let mut served = c2;
            for ((s, &d), &g) in served.iter_mut().zip(demand).zip(&granted) {
                *s = d.min(g);
            }
            let mut unmet = Vec::with_capacity(len);
            let mut utilization = Vec::with_capacity(len);
            for ((&d, &g), &s) in demand.iter().zip(&granted).zip(&served) {
                unmet.push(d - s);
                utilization.push(if g > 0.0 { s / g } else { 0.0 });
            }
            kernels::add_assign(&mut total_granted, &granted);
            kernels::add_assign(&mut slot_unmet, &unmet);
            // Hand the accumulated sample vectors to their traces; nothing
            // is copied — each Vec becomes the trace's shared buffer.
            outcomes.push(WorkloadOutcome {
                name: w.name.clone(),
                granted: Trace::from_samples(calendar, granted)?,
                served: Trace::from_samples(calendar, served)?,
                unmet: Trace::from_samples(calendar, unmet)?,
                utilization: Trace::from_samples(calendar, utilization)?,
            });
        }

        // Pass 5, slot-major: host-level observability, in slot order.
        // Counter and histogram updates are commutative, so splitting them
        // out of the scheduling loop cannot change a report.
        for (&total, &u) in total_granted.iter().zip(&slot_unmet) {
            if u > 0.0 {
                obs.counter("wlm.host.unmet_slots", 1);
            }
            obs.histogram(
                "wlm.host.saturation",
                &SATURATION_BOUNDS,
                total / self.capacity,
            );
        }

        Ok(HostOutcome {
            workloads: outcomes,
            total_granted: Trace::from_samples(calendar, total_granted)?,
            contended_slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_obs::Obs;
    use ropus_trace::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn policy(cos1_cap: f64, total_cap: f64) -> WlmPolicy {
        WlmPolicy {
            burst_factor: 2.0,
            cos1_cap,
            total_cap,
            min_allocation: 0.0,
            smoothing: 1.0,
        }
    }

    fn constant(name: &str, demand: f64, len: usize, p: WlmPolicy) -> HostedWorkload {
        HostedWorkload::new(name, Trace::constant(cal(), demand, len).unwrap(), p)
    }

    #[test]
    fn uncontended_host_grants_full_requests() {
        let host = Host::new(16.0).unwrap();
        let w = constant("a", 2.0, 50, policy(1.0, 100.0));
        let outcome = host.run(&[w], ObsCtx::none()).unwrap();
        let o = &outcome.workloads[0];
        // Request = 2 * 2 = 4, fully granted; demand 2 fully served.
        assert_eq!(o.granted.samples()[10], 4.0);
        assert_eq!(o.served.samples()[10], 2.0);
        assert_eq!(o.unmet.samples()[10], 0.0);
        assert_eq!(o.utilization.samples()[10], 0.5);
        assert_eq!(outcome.contended_slots, 0);
    }

    #[test]
    fn cos1_is_served_before_cos2() {
        let host = Host::new(10.0).unwrap();
        // Workload A: all CoS1 (cap above request). Workload B: all CoS2.
        let a = constant("a", 4.0, 20, policy(100.0, 100.0));
        let b = constant("b", 4.0, 20, policy(0.0, 100.0));
        let outcome = host.run(&[a, b], ObsCtx::none()).unwrap();
        // A requests 8 CoS1 -> granted in full; B requests 8 CoS2 but only
        // 2 remain.
        assert_eq!(outcome.workloads[0].granted.samples()[5], 8.0);
        assert_eq!(outcome.workloads[1].granted.samples()[5], 2.0);
        assert!(outcome.contended_slots > 0);
        // B's demand 4 only gets 2 served.
        assert_eq!(outcome.workloads[1].served.samples()[5], 2.0);
        assert_eq!(outcome.workloads[1].unmet.samples()[5], 2.0);
    }

    #[test]
    fn cos2_shares_remaining_capacity_proportionally() {
        let host = Host::new(12.0).unwrap();
        let a = constant("a", 4.0, 10, policy(0.0, 100.0)); // requests 8
        let b = constant("b", 2.0, 10, policy(0.0, 100.0)); // requests 4
        let outcome = host.run(&[a, b], ObsCtx::none()).unwrap();
        // 12 capacity over requests (8, 4): granted in full (sum == 12).
        assert_eq!(outcome.workloads[0].granted.samples()[0], 8.0);
        assert_eq!(outcome.workloads[1].granted.samples()[0], 4.0);

        let host = Host::new(6.0).unwrap();
        let a = constant("a", 4.0, 10, policy(0.0, 100.0));
        let b = constant("b", 2.0, 10, policy(0.0, 100.0));
        let outcome = host.run(&[a, b], ObsCtx::none()).unwrap();
        // Now only 6 for requests (8, 4): proportional scale 0.5.
        assert_eq!(outcome.workloads[0].granted.samples()[0], 4.0);
        assert_eq!(outcome.workloads[1].granted.samples()[0], 2.0);
    }

    #[test]
    fn pathological_cos1_overflow_scales_proportionally() {
        let host = Host::new(8.0).unwrap();
        let a = constant("a", 8.0, 5, policy(100.0, 100.0)); // 16 CoS1
        let outcome = host.run(&[a], ObsCtx::none()).unwrap();
        assert_eq!(outcome.workloads[0].granted.samples()[0], 8.0);
        assert!(outcome.contended_slots > 0);
    }

    #[test]
    fn total_granted_never_exceeds_capacity() {
        let host = Host::new(10.0).unwrap();
        let ws: Vec<HostedWorkload> = (0..5)
            .map(|i| constant(&format!("w{i}"), 3.0, 30, policy(1.0, 100.0)))
            .collect();
        let outcome = host.run(&ws, ObsCtx::none()).unwrap();
        for &g in outcome.total_granted.samples() {
            assert!(g <= 10.0 + 1e-9, "granted {g}");
        }
    }

    #[test]
    fn observed_run_counts_drops_and_fills_saturation_histogram() {
        let obs = Obs::deterministic();
        let host = Host::new(10.0).unwrap();
        // A saturates CoS1 in full; B's CoS2 request is cut to 2 of 8,
        // leaving 2 of its 4 demand unmet every slot.
        let a = constant("a", 4.0, 20, policy(100.0, 100.0));
        let b = constant("b", 4.0, 20, policy(0.0, 100.0));
        let outcome = host.run(&[a, b], ObsCtx::from(&obs)).unwrap();
        assert!(outcome.contended_slots > 0);
        let report = obs.report();
        assert_eq!(report.counter("wlm.host.unmet_slots"), 20);
        assert_eq!(report.counter("wlm.host.cos1_scaled_slots"), 0);
        let hist = report.histogram("wlm.host.saturation").unwrap();
        assert_eq!(hist.total, 20);
        // Every slot grants the full 10.0: saturation 1.0, the last
        // bounded bucket.
        assert_eq!(hist.counts, vec![0, 0, 0, 0, 20, 0]);

        // The pathological CoS1 overflow counts as a scaled slot.
        let scaled = Obs::deterministic();
        let c = constant("c", 8.0, 5, policy(100.0, 100.0));
        host.run(&[c], ObsCtx::from(&scaled)).unwrap();
        assert_eq!(scaled.report().counter("wlm.host.cos1_scaled_slots"), 5);
    }

    #[test]
    fn windowed_member_requests_nothing_outside_its_residency() {
        let host = Host::new(16.0).unwrap();
        let w = constant("a", 2.0, 10, policy(1.0, 100.0)).with_window(3, 7);
        let outcome = host.run(&[w], ObsCtx::none()).unwrap();
        let o = &outcome.workloads[0];
        for slot in 0..10 {
            let g = o.granted.samples()[slot];
            if (3..7).contains(&slot) {
                assert!(g > 0.0, "slot {slot} inside the window grants");
            } else {
                assert_eq!(g, 0.0, "slot {slot} outside the window");
                assert_eq!(o.utilization.samples()[slot], 0.0);
            }
        }
    }

    #[test]
    fn empty_reservations_are_exactly_run() {
        let host = Host::new(10.0).unwrap();
        let ws = vec![
            constant("a", 4.0, 20, policy(100.0, 100.0)),
            constant("b", 4.0, 20, policy(0.0, 100.0)),
        ];
        let plain = host.run(&ws, ObsCtx::none()).unwrap();
        let with = host
            .run_with_reservations(&ws, &[], ObsCtx::none())
            .unwrap();
        assert_eq!(plain, with);
    }

    #[test]
    fn reservations_squeeze_grants_without_outcomes() {
        let host = Host::new(6.0).unwrap();
        let a = constant("a", 4.0, 10, policy(0.0, 100.0)); // requests 8
        let r = constant("mig", 2.0, 10, policy(0.0, 100.0)); // requests 4
        let outcome = host
            .run_with_reservations(std::slice::from_ref(&a), &[r], ObsCtx::none())
            .unwrap();
        // 6 capacity over CoS2 requests (8 member + 4 reserved): the
        // member's share is 8 * 6/12 = 4, as if the reservation were a
        // co-located member — but no outcome is emitted for it.
        assert_eq!(outcome.workloads.len(), 1);
        assert_eq!(outcome.workloads[0].granted.samples()[0], 4.0);
        assert_eq!(outcome.total_granted.samples()[0], 4.0);
        assert!(outcome.contended_slots > 0);

        // A windowed reservation only squeezes inside its window.
        let r = constant("mig", 2.0, 10, policy(0.0, 100.0)).with_window(0, 5);
        let outcome = host
            .run_with_reservations(&[a], &[r], ObsCtx::none())
            .unwrap();
        assert_eq!(outcome.workloads[0].granted.samples()[0], 4.0);
        assert_eq!(outcome.workloads[0].granted.samples()[5], 6.0);
    }

    #[test]
    fn misaligned_and_empty_inputs_rejected() {
        let host = Host::new(10.0).unwrap();
        assert!(matches!(
            host.run(&[], ObsCtx::none()),
            Err(WlmError::Trace(TraceError::Empty))
        ));
        let a = constant("a", 1.0, 10, policy(0.0, 10.0));
        let b = constant("b", 1.0, 20, policy(0.0, 10.0));
        assert!(matches!(
            host.run(&[a, b], ObsCtx::none()),
            Err(WlmError::Trace(TraceError::Misaligned { .. }))
        ));
    }

    #[test]
    fn host_rejects_degenerate_capacity_with_typed_error() {
        // Regression: a zero-capacity host used to be accepted (or abort
        // the process); it must surface as a typed, matchable error so
        // replay paths can diagnose a misconfigured pool.
        for bad in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            match Host::new(bad) {
                Err(WlmError::InvalidCapacity { capacity }) => {
                    assert!(capacity.is_nan() || capacity == bad);
                }
                other => panic!("capacity {bad} must be rejected, got {other:?}"),
            }
        }
        assert!(Host::new(1e-6).is_ok());
    }
}
