//! The per-workload allocation control loop.
//!
//! A workload manager "monitors its workload demands and dynamically
//! adjusts the allocation of capacity, aiming to provide each with access
//! only to the capacity it needs" (§II). Each interval it sets
//!
//! `allocation = burst factor × estimated demand`
//!
//! clamped to `[min_allocation, max_allocation]`, and splits the request
//! across the two allocation priorities at the CoS1 cap that the QoS
//! translation chose (`p · D_new_max × burst factor`).

use serde::{Deserialize, Serialize};

use ropus_qos::translation::TranslationReport;
use ropus_qos::AppQos;

/// An allocation request split across the two priorities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Guaranteed-priority share.
    pub cos1: f64,
    /// Statistical-priority share.
    pub cos2: f64,
}

impl AllocationRequest {
    /// Total requested allocation.
    pub fn total(&self) -> f64 {
        self.cos1 + self.cos2
    }
}

/// Static policy of a workload's manager, derived from its QoS translation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WlmPolicy {
    /// Burst factor applied to estimated demand (`1/U_low`).
    pub burst_factor: f64,
    /// Cap on the CoS1 share of the allocation (allocation units).
    pub cos1_cap: f64,
    /// Cap on the total allocation (allocation units);
    /// `D_new_max × burst factor`.
    pub total_cap: f64,
    /// Floor on the total allocation (allocation units).
    pub min_allocation: f64,
    /// EWMA weight on the newest demand observation, in `(0, 1]`;
    /// 1 reproduces the paper's "previous interval" rule exactly.
    pub smoothing: f64,
}

impl WlmPolicy {
    /// Builds the policy the QoS translation implies: burst factor
    /// `1/U_low`, CoS1 cap `p · D_new_max / U_low`, total cap
    /// `D_new_max / U_low`.
    pub fn from_translation(qos: &AppQos, report: &TranslationReport) -> Self {
        let burst_factor = qos.band().burst_factor();
        WlmPolicy {
            burst_factor,
            cos1_cap: report.breakpoint * report.d_new_max * burst_factor,
            total_cap: report.d_new_max * burst_factor,
            min_allocation: 0.0,
            smoothing: 1.0,
        }
    }

    /// Splits a total allocation across the priorities at the CoS1 cap.
    pub fn split(&self, allocation: f64) -> AllocationRequest {
        let cos1 = allocation.min(self.cos1_cap);
        AllocationRequest {
            cos1,
            cos2: allocation - cos1,
        }
    }
}

/// The runtime state of one workload's manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadManager {
    policy: WlmPolicy,
    demand_estimate: f64,
}

impl WorkloadManager {
    /// Creates a manager with a zero initial demand estimate.
    pub fn new(policy: WlmPolicy) -> Self {
        WorkloadManager {
            policy,
            demand_estimate: 0.0,
        }
    }

    /// The manager's policy.
    pub fn policy(&self) -> WlmPolicy {
        self.policy
    }

    /// The current (smoothed) demand estimate.
    pub fn demand_estimate(&self) -> f64 {
        self.demand_estimate
    }

    /// Feeds the demand measured over the last interval and returns the
    /// allocation request for the next interval.
    ///
    /// This is the paper's control rule: "a workload resource allocation is
    /// determined periodically by the product of some real value (the burst
    /// factor) and its recent demand."
    pub fn observe(&mut self, measured_demand: f64) -> AllocationRequest {
        let alpha = self.policy.smoothing.clamp(0.0, 1.0);
        self.demand_estimate = alpha * measured_demand + (1.0 - alpha) * self.demand_estimate;
        let allocation = (self.policy.burst_factor * self.demand_estimate)
            .clamp(self.policy.min_allocation, self.policy.total_cap);
        self.policy.split(allocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> WlmPolicy {
        WlmPolicy {
            burst_factor: 2.0,
            cos1_cap: 3.0,
            total_cap: 10.0,
            min_allocation: 0.5,
            smoothing: 1.0,
        }
    }

    #[test]
    fn allocation_is_burst_factor_times_demand() {
        let mut wm = WorkloadManager::new(policy());
        let req = wm.observe(2.0);
        assert_eq!(req.total(), 4.0);
        assert_eq!(req.cos1, 3.0);
        assert_eq!(req.cos2, 1.0);
    }

    #[test]
    fn allocation_clamps_to_caps() {
        let mut wm = WorkloadManager::new(policy());
        let req = wm.observe(100.0);
        assert_eq!(req.total(), 10.0);
        let req = wm.observe(0.0);
        assert_eq!(req.total(), 0.5, "floor applies");
    }

    #[test]
    fn allocation_tracks_demand_up_and_down() {
        let mut wm = WorkloadManager::new(policy());
        let up = wm.observe(3.0).total();
        let down = wm.observe(1.0).total();
        assert!(up > down);
        assert_eq!(down, 2.0);
    }

    #[test]
    fn smoothing_damps_the_response() {
        let mut fast = WorkloadManager::new(policy());
        let mut slow = WorkloadManager::new(WlmPolicy {
            smoothing: 0.3,
            ..policy()
        });
        fast.observe(1.0);
        slow.observe(1.0);
        let f = fast.observe(4.0).total();
        let s = slow.observe(4.0).total();
        assert!(s < f, "smoothed manager reacts more slowly: {s} vs {f}");
        assert!(slow.demand_estimate() < 4.0 && slow.demand_estimate() > 1.0);
    }

    #[test]
    fn split_respects_cos1_cap() {
        let p = policy();
        let below = p.split(2.0);
        assert_eq!(below.cos1, 2.0);
        assert_eq!(below.cos2, 0.0);
        let above = p.split(8.0);
        assert_eq!(above.cos1, 3.0);
        assert_eq!(above.cos2, 5.0);
    }

    #[test]
    fn from_translation_matches_report() {
        use ropus_obs::ObsCtx;
        use ropus_qos::translation::translate;
        use ropus_qos::CosSpec;
        use ropus_trace::{Calendar, Trace};
        let cal = Calendar::five_minute();
        let demand = Trace::constant(cal, 2.0, cal.slots_per_week()).unwrap();
        let qos = AppQos::paper_default(None);
        let t = translate(
            &demand,
            &qos,
            &CosSpec::new(0.6, 60).unwrap(),
            ObsCtx::none(),
        )
        .unwrap();
        let policy = WlmPolicy::from_translation(&qos, &t.report);
        assert_eq!(policy.burst_factor, 2.0);
        assert!((policy.total_cap - t.report.d_new_max * 2.0).abs() < 1e-12);
        assert!(policy.cos1_cap <= policy.total_cap);
        // The policy's CoS1 cap equals the translation's peak CoS1 trace.
        assert!((policy.cos1_cap - t.cos1.peak()).abs() < 1e-9);
    }
}
