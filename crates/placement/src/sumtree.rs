//! Set-pure incremental slot sums: the structure behind [`AggregateLoad`].
//!
//! [`AggregateLoad`](crate::AggregateLoad) must satisfy a hard invariant:
//! the aggregate of a member *set* is **bit-identical** no matter what
//! admit/depart history produced the set, so an incremental
//! [`EngineSession`](crate::EngineSession) replays byte-equal to a cold
//! re-plan. Plain `sums += column` / `sums -= column` cannot deliver that
//! — floating-point addition is not associative and subtraction leaves
//! drift (`(a+b)-b ≠ a` in general).
//!
//! [`SumTree`] solves it structurally. It is a treap over the member set:
//! a binary search tree on workload *name* that is simultaneously a
//! max-heap on a deterministic per-name hash priority. Given the keys,
//! that shape is **unique** — it does not depend on insertion order. Every
//! node stores the slot-wise sum of its subtree, combined child-by-child
//! in one fixed order, so the root total is evaluated through a fixed
//! expression tree determined only by the member set. Consequences:
//!
//! * adding or removing one workload touches the O(log n) expected nodes
//!   on its root path (plus rotations), each an O(slots) kernel pass —
//!   instead of re-summing every member on the server;
//! * nothing is ever subtracted, so there is no drift to reconcile: an
//!   incrementally maintained root is bit-identical to a cold
//!   [`SumTree::build`] of the same set, which the aggregate's
//!   debug/periodic reconciliation asserts;
//! * equal-key priorities tie-break by name, keeping the shape a pure
//!   function of the set even under hash collisions. (Duplicate *names*
//!   have no such order; [`AggregateLoad`](crate::AggregateLoad) falls
//!   back to cold rebuilds for that degenerate case.)
//!
//! Node sum buffers are recycled through a [`SlotArena`], so steady-state
//! mutation — and the `FitEngine`'s transient per-candidate aggregates —
//! reuse warm allocations instead of hitting the allocator.

use ropus_trace::kernels;

use crate::workload::Workload;

/// A pool of recycled slot buffers (`Vec<f64>`), shared across transient
/// aggregates so hot placement loops stop allocating.
///
/// Buffers returned by [`SlotArena::take`] keep their capacity when
/// recycled with [`SlotArena::give`]; after warm-up a fit-evaluation loop
/// runs entirely on pooled storage.
#[derive(Debug, Clone, Default)]
pub struct SlotArena {
    pool: Vec<Vec<f64>>,
}

impl SlotArena {
    /// An empty arena.
    pub fn new() -> Self {
        SlotArena::default()
    }

    /// A cleared buffer from the pool, or a fresh one when empty.
    pub fn take(&mut self) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Number of pooled buffers (diagnostic).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// FNV-1a hash of a workload name: the deterministic treap priority.
///
/// Any fixed, platform-independent hash works; FNV-1a is dependency-free
/// and mixes short ASCII names well.
fn priority(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fixed sum association: copy the first present contributor into
/// `out`, add the rest slot-wise. Shared by the dense per-node recompute
/// and the lazy root evaluation so both produce the same bits.
fn combine_parts<const N: usize>(out: &mut Vec<f64>, parts: [Option<&[f64]>; N]) {
    let mut first = true;
    for part in parts.into_iter().flatten() {
        if first {
            out.extend_from_slice(part);
            first = false;
        } else {
            kernels::add_assign(out, part);
        }
    }
}

/// Per-node subtree sums; present iff the node has at least one child
/// (a leaf's "sums" are simply its workload's own trace slices).
#[derive(Debug, Clone)]
struct NodeSums {
    cos1: Vec<f64>,
    cos2: Vec<f64>,
    /// `Some` iff some member of the subtree carries a memory trace.
    memory: Option<Vec<f64>>,
}

#[derive(Debug, Clone)]
struct Node {
    workload: Workload,
    prio: u64,
    left: Option<u32>,
    right: Option<u32>,
    /// Members of this subtree that carry a memory trace.
    mem_count: u32,
    sums: Option<NodeSums>,
}

/// The treap of per-subtree slot sums; see the module docs.
#[derive(Debug, Clone)]
pub(crate) struct SumTree {
    nodes: Vec<Node>,
    root: Option<u32>,
    /// Arena slots of removed nodes, reused by the next insert.
    free: Vec<u32>,
    /// Recycled sum buffers from rotations and removals.
    spare: SlotArena,
    /// Whether every internal node's sums are materialized. A cold
    /// [`SumTree::build`] computes *root* sums only — the lazy walk writes
    /// into O(depth) warm buffers instead of faulting O(members) cold
    /// ones, which dominates cost at fleet scale — and the first mutation
    /// densifies the interior via [`SumTree::densify`].
    dense: bool,
}

impl SumTree {
    /// A tree with no members (and no pooled buffers).
    pub(crate) fn empty() -> SumTree {
        SumTree {
            nodes: Vec::new(),
            root: None,
            free: Vec::new(),
            spare: SlotArena::new(),
            dense: true,
        }
    }

    /// Cold build over canonically ordered (name-sorted) members, pulling
    /// buffers from `arena`. The result is the unique treap of the set —
    /// bit-identical to any insert/remove history reaching the same set.
    ///
    /// Only the root's sums are materialized; the lazy evaluation walks
    /// the same fixed combine expression as the dense interior, so the
    /// root is bit-identical to a fully dense build while the build's
    /// working set stays O(depth) buffers.
    pub(crate) fn build(members: &[Workload], arena: &mut SlotArena) -> SumTree {
        let mut tree = SumTree {
            nodes: Vec::with_capacity(members.len()),
            root: None,
            free: Vec::new(),
            spare: std::mem::take(arena),
            dense: members.len() <= 1,
        };
        // Cartesian-tree construction along the rightmost spine: members
        // arrive in ascending key order, so each new node displaces the
        // spine suffix of lower priority and adopts it as its left child.
        let mut spine: Vec<u32> = Vec::new();
        for w in members {
            let idx = tree.new_node(w.clone());
            let mut displaced: Option<u32> = None;
            while let Some(&top) = spine.last() {
                if tree.outranks(idx, top) {
                    displaced = spine.pop();
                } else {
                    break;
                }
            }
            tree.nodes[idx as usize].left = displaced;
            if let Some(&top) = spine.last() {
                tree.nodes[top as usize].right = Some(idx);
            }
            spine.push(idx);
        }
        tree.root = spine.first().copied();
        if let Some(root) = tree.root {
            tree.build_root_sums(root);
        }
        tree
    }

    /// Materializes every interior node's sums (iterative post-order).
    /// Incremental `insert`/`remove` needs current sums along the whole
    /// mutation path, so the first mutation after a lazy build pays the
    /// dense pass once.
    fn densify(&mut self) {
        if self.dense {
            return;
        }
        if let Some(root) = self.root {
            self.recompute_postorder(root);
        }
        self.dense = true;
    }

    /// Computes the root's subtree sums without materializing the
    /// interior: an iterative post-order walk that accumulates each
    /// internal node's contribution in a transient buffer, consuming the
    /// children's buffers as it goes. The combine order per node — left,
    /// self, right; first contributor copied, the rest added — is exactly
    /// [`SumTree::recompute`]'s, so the stored root sums are bit-identical
    /// to a dense build's.
    fn build_root_sums(&mut self, root: u32) {
        let mut contrib: Vec<Option<NodeSums>> = vec![None; self.nodes.len()];
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((idx, children_done)) = stack.pop() {
            let (left, right) = {
                let node = &self.nodes[idx as usize];
                (node.left, node.right)
            };
            if !children_done {
                stack.push((idx, true));
                if let Some(l) = left {
                    stack.push((l, false));
                }
                if let Some(r) = right {
                    stack.push((r, false));
                }
                continue;
            }
            let own_mem = u32::from(self.nodes[idx as usize].workload.memory_view().is_some());
            let mem_count = own_mem
                + left.map_or(0, |c| self.nodes[c as usize].mem_count)
                + right.map_or(0, |c| self.nodes[c as usize].mem_count);
            self.nodes[idx as usize].mem_count = mem_count;
            if left.is_none() && right.is_none() {
                continue; // leaf: parents read its trace slices directly
            }
            let left_sums = left.and_then(|l| contrib[l as usize].take());
            let right_sums = right.and_then(|r| contrib[r as usize].take());
            let mut cos1 = self.spare.take();
            combine_parts(
                &mut cos1,
                [
                    left.map(|l| match &left_sums {
                        Some(s) => &s.cos1[..],
                        None => self.nodes[l as usize].workload.cos1().samples(),
                    }),
                    Some(self.nodes[idx as usize].workload.cos1().samples()),
                    right.map(|r| match &right_sums {
                        Some(s) => &s.cos1[..],
                        None => self.nodes[r as usize].workload.cos1().samples(),
                    }),
                ],
            );
            let mut cos2 = self.spare.take();
            combine_parts(
                &mut cos2,
                [
                    left.map(|l| match &left_sums {
                        Some(s) => &s.cos2[..],
                        None => self.nodes[l as usize].workload.cos2().samples(),
                    }),
                    Some(self.nodes[idx as usize].workload.cos2().samples()),
                    right.map(|r| match &right_sums {
                        Some(s) => &s.cos2[..],
                        None => self.nodes[r as usize].workload.cos2().samples(),
                    }),
                ],
            );
            let memory = if mem_count == 0 {
                None
            } else {
                let mut mem = self.spare.take();
                combine_parts(
                    &mut mem,
                    [
                        left.and_then(|l| match &left_sums {
                            Some(s) => s.memory.as_deref(),
                            None => self.nodes[l as usize]
                                .workload
                                .memory()
                                .map(|m| m.samples()),
                        }),
                        self.nodes[idx as usize]
                            .workload
                            .memory()
                            .map(|m| m.samples()),
                        right.and_then(|r| match &right_sums {
                            Some(s) => s.memory.as_deref(),
                            None => self.nodes[r as usize]
                                .workload
                                .memory()
                                .map(|m| m.samples()),
                        }),
                    ],
                );
                Some(mem)
            };
            // The children's transient buffers are spent; recycle them.
            for sums in [left_sums, right_sums].into_iter().flatten() {
                self.spare.give(sums.cos1);
                self.spare.give(sums.cos2);
                if let Some(mem) = sums.memory {
                    self.spare.give(mem);
                }
            }
            contrib[idx as usize] = Some(NodeSums { cos1, cos2, memory });
        }
        self.nodes[root as usize].sums = contrib[root as usize].take();
    }

    /// A recycled buffer from the tree's internal pool, for the owner's
    /// own materialized vectors.
    pub(crate) fn take_buf(&mut self) -> Vec<f64> {
        self.spare.take()
    }

    /// Consumes the tree, returning every sum buffer to `arena` so the
    /// next transient aggregate allocates nothing.
    pub(crate) fn recycle_into(mut self, arena: &mut SlotArena) {
        for node in &mut self.nodes {
            if let Some(sums) = node.sums.take() {
                arena.give(sums.cos1);
                arena.give(sums.cos2);
                if let Some(mem) = sums.memory {
                    arena.give(mem);
                }
            }
        }
        let spare = std::mem::take(&mut self.spare);
        arena.pool.extend(spare.pool);
    }

    /// Inserts one workload (unique names assumed; see the module docs).
    pub(crate) fn insert(&mut self, workload: Workload) {
        self.densify();
        let idx = self.new_node(workload);
        self.root = Some(self.insert_at(self.root, idx));
    }

    /// Removes the topmost node named `name`, returning its workload.
    pub(crate) fn remove(&mut self, name: &str) -> Option<Workload> {
        self.densify();
        let (root, removed) = self.remove_at(self.root, name);
        self.root = root;
        let removed = removed?;
        self.free.push(removed);
        let node = &mut self.nodes[removed as usize];
        node.left = None;
        node.right = None;
        if let Some(sums) = node.sums.take() {
            self.spare.give(sums.cos1);
            self.spare.give(sums.cos2);
            if let Some(mem) = sums.memory {
                self.spare.give(mem);
            }
        }
        // The workload stays in the freed arena slot (cheap `Arc` handles)
        // until the slot is reused; cloning it out keeps `remove` total.
        Some(self.nodes[removed as usize].workload.clone())
    }

    /// Slot-wise CoS1 sum of the whole set (`None` for an empty tree).
    pub(crate) fn root_cos1(&self) -> Option<&[f64]> {
        self.root.map(|r| self.subtree_cos1(r))
    }

    /// Slot-wise CoS2 sum of the whole set.
    pub(crate) fn root_cos2(&self) -> Option<&[f64]> {
        self.root.map(|r| self.subtree_cos2(r))
    }

    /// Slot-wise memory sum, `None` when no member carries memory.
    pub(crate) fn root_memory(&self) -> Option<&[f64]> {
        self.root.and_then(|r| self.subtree_memory(r))
    }

    fn new_node(&mut self, workload: Workload) -> u32 {
        let prio = priority(workload.name());
        let mem_count = u32::from(workload.memory_view().is_some());
        let node = Node {
            workload,
            prio,
            left: None,
            right: None,
            mem_count,
            sums: None,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(node);
            idx
        }
    }

    /// Whether node `a` outranks node `b` in the heap order: higher
    /// priority wins, name order breaks priority ties deterministically.
    fn outranks(&self, a: u32, b: u32) -> bool {
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        na.prio > nb.prio || (na.prio == nb.prio && na.workload.name() < nb.workload.name())
    }

    fn insert_at(&mut self, at: Option<u32>, new: u32) -> u32 {
        let Some(cur) = at else {
            return new;
        };
        let go_left =
            self.nodes[new as usize].workload.name() < self.nodes[cur as usize].workload.name();
        if go_left {
            let child = self.insert_at(self.nodes[cur as usize].left, new);
            self.nodes[cur as usize].left = Some(child);
            if self.outranks(child, cur) {
                return self.rotate_right(cur);
            }
        } else {
            let child = self.insert_at(self.nodes[cur as usize].right, new);
            self.nodes[cur as usize].right = Some(child);
            if self.outranks(child, cur) {
                return self.rotate_left(cur);
            }
        }
        self.recompute(cur);
        cur
    }

    fn remove_at(&mut self, at: Option<u32>, name: &str) -> (Option<u32>, Option<u32>) {
        let Some(cur) = at else {
            return (None, None);
        };
        let cur_name = self.nodes[cur as usize].workload.name();
        if name == cur_name {
            let merged = self.merge(
                self.nodes[cur as usize].left,
                self.nodes[cur as usize].right,
            );
            return (merged, Some(cur));
        }
        if name < cur_name {
            let (child, removed) = self.remove_at(self.nodes[cur as usize].left, name);
            if removed.is_none() {
                return (Some(cur), None);
            }
            self.nodes[cur as usize].left = child;
            self.recompute(cur);
            (Some(cur), removed)
        } else {
            let (child, removed) = self.remove_at(self.nodes[cur as usize].right, name);
            if removed.is_none() {
                return (Some(cur), None);
            }
            self.nodes[cur as usize].right = child;
            self.recompute(cur);
            (Some(cur), removed)
        }
    }

    /// Merges two treaps where every key in `left` precedes every key in
    /// `right`, recomputing sums along the merge path.
    fn merge(&mut self, left: Option<u32>, right: Option<u32>) -> Option<u32> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(l), Some(r)) => {
                if self.outranks(l, r) {
                    let merged = self.merge(self.nodes[l as usize].right, Some(r));
                    self.nodes[l as usize].right = merged;
                    self.recompute(l);
                    Some(l)
                } else {
                    let merged = self.merge(Some(l), self.nodes[r as usize].left);
                    self.nodes[r as usize].left = merged;
                    self.recompute(r);
                    Some(r)
                }
            }
        }
    }

    /// Right rotation at `y` (left child `x` rises); recomputes both
    /// changed nodes and returns the new subtree root.
    fn rotate_right(&mut self, y: u32) -> u32 {
        let x = self.nodes[y as usize].left.unwrap_or(y); // unreachable fallback: callers rotate only with a riser child
        self.nodes[y as usize].left = self.nodes[x as usize].right;
        self.nodes[x as usize].right = Some(y);
        self.recompute(y);
        self.recompute(x);
        x
    }

    /// Left rotation at `y` (right child `x` rises).
    fn rotate_left(&mut self, y: u32) -> u32 {
        let x = self.nodes[y as usize].right.unwrap_or(y); // unreachable fallback: callers rotate only with a riser child
        self.nodes[y as usize].right = self.nodes[x as usize].left;
        self.nodes[x as usize].left = Some(y);
        self.recompute(y);
        self.recompute(x);
        x
    }

    fn subtree_cos1(&self, idx: u32) -> &[f64] {
        let node = &self.nodes[idx as usize];
        match &node.sums {
            Some(s) => &s.cos1,
            None => node.workload.cos1().samples(),
        }
    }

    fn subtree_cos2(&self, idx: u32) -> &[f64] {
        let node = &self.nodes[idx as usize];
        match &node.sums {
            Some(s) => &s.cos2,
            None => node.workload.cos2().samples(),
        }
    }

    fn subtree_memory(&self, idx: u32) -> Option<&[f64]> {
        let node = &self.nodes[idx as usize];
        if node.mem_count == 0 {
            return None;
        }
        match &node.sums {
            Some(s) => s.memory.as_deref(),
            None => node.workload.memory().map(|m| m.samples()),
        }
    }

    /// Recomputes `idx`'s subtree sums from its (already current)
    /// children. The combine order — left, self, right — is the fixed
    /// association that makes the root a pure function of the set.
    fn recompute(&mut self, idx: u32) {
        let (left, right) = {
            let node = &self.nodes[idx as usize];
            (node.left, node.right)
        };
        // Reclaim the node's buffers first so a node that became a leaf
        // returns them to the pool.
        if let Some(sums) = self.nodes[idx as usize].sums.take() {
            self.spare.give(sums.cos1);
            self.spare.give(sums.cos2);
            if let Some(mem) = sums.memory {
                self.spare.give(mem);
            }
        }
        let own_mem = u32::from(self.nodes[idx as usize].workload.memory_view().is_some());
        let mem_count = own_mem
            + left.map_or(0, |c| self.nodes[c as usize].mem_count)
            + right.map_or(0, |c| self.nodes[c as usize].mem_count);
        self.nodes[idx as usize].mem_count = mem_count;
        if left.is_none() && right.is_none() {
            return; // leaf: its sums are its own trace slices
        }
        let mut cos1 = self.spare.take();
        combine_parts(
            &mut cos1,
            [
                left.map(|c| self.subtree_cos1(c)),
                Some(self.nodes[idx as usize].workload.cos1().samples()),
                right.map(|c| self.subtree_cos1(c)),
            ],
        );
        let mut cos2 = self.spare.take();
        combine_parts(
            &mut cos2,
            [
                left.map(|c| self.subtree_cos2(c)),
                Some(self.nodes[idx as usize].workload.cos2().samples()),
                right.map(|c| self.subtree_cos2(c)),
            ],
        );
        let memory = if self.nodes[idx as usize].mem_count == 0 {
            None
        } else {
            let mut mem = self.spare.take();
            combine_parts(
                &mut mem,
                [
                    left.and_then(|c| self.subtree_memory(c)),
                    self.nodes[idx as usize]
                        .workload
                        .memory()
                        .map(|m| m.samples()),
                    right.and_then(|c| self.subtree_memory(c)),
                ],
            );
            Some(mem)
        };
        self.nodes[idx as usize].sums = Some(NodeSums { cos1, cos2, memory });
    }

    /// Iterative post-order sum computation over `root`'s subtree —
    /// explicit stack, so adversarially deep shapes cannot overflow the
    /// call stack during a cold bulk build.
    fn recompute_postorder(&mut self, root: u32) {
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((idx, children_done)) = stack.pop() {
            if children_done {
                self.recompute(idx);
            } else {
                stack.push((idx, true));
                let node = &self.nodes[idx as usize];
                if let Some(l) = node.left {
                    stack.push((l, false));
                }
                if let Some(r) = node.right {
                    stack.push((r, false));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_trace::{Calendar, Trace};

    fn wl(name: &str, base: f64) -> Workload {
        let len = Calendar::five_minute().slots_per_week();
        let samples: Vec<f64> = (0..len).map(|i| base + (i % 13) as f64 * 0.1).collect();
        Workload::new(
            name,
            Trace::from_samples(Calendar::five_minute(), samples.clone()).unwrap(),
            Trace::from_samples(Calendar::five_minute(), samples).unwrap(),
        )
        .unwrap()
    }

    fn sorted_members(mut members: Vec<Workload>) -> Vec<Workload> {
        members.sort_by(|a, b| a.name().cmp(b.name()));
        members
    }

    #[test]
    fn incremental_insert_matches_cold_build_bitwise() {
        let members: Vec<Workload> = (0..17)
            .map(|i| wl(&format!("app-{i:02}"), i as f64))
            .collect();
        let cold = SumTree::build(&sorted_members(members.clone()), &mut SlotArena::new());
        // Insert in a scrambled order.
        let mut tree = SumTree::empty();
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.reverse();
        order.swap(0, 7);
        order.swap(3, 11);
        for i in order {
            tree.insert(members[i].clone());
        }
        let (a, b) = (cold.root_cos1().unwrap(), tree.root_cos1().unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn remove_then_reinsert_round_trips_bitwise() {
        let members: Vec<Workload> = (0..9).map(|i| wl(&format!("w{i}"), i as f64)).collect();
        let mut tree = SumTree::build(&sorted_members(members.clone()), &mut SlotArena::new());
        let reference: Vec<u64> = tree
            .root_cos2()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let removed = tree.remove("w4").unwrap();
        assert_eq!(removed.name(), "w4");
        assert!(tree.remove("w4").is_none());
        tree.insert(removed);
        let back: Vec<u64> = tree
            .root_cos2()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(reference, back);
    }

    #[test]
    fn memory_sums_track_members_that_carry_memory() {
        let len = Calendar::five_minute().slots_per_week();
        let with_mem = wl("m", 1.0)
            .with_memory(Trace::constant(Calendar::five_minute(), 8.0, len).unwrap())
            .unwrap();
        let plain = wl("p", 2.0);
        let mut tree = SumTree::build(
            &sorted_members(vec![with_mem, plain]),
            &mut SlotArena::new(),
        );
        assert_eq!(tree.root_memory().unwrap()[0], 8.0);
        let _ = tree.remove("m").unwrap();
        assert!(tree.root_memory().is_none());
    }

    #[test]
    fn lazy_root_matches_densified_root_bitwise() {
        let members = sorted_members(
            (0..23)
                .map(|i| wl(&format!("lz-{i:02}"), i as f64 * 0.3))
                .collect(),
        );
        let mut tree = SumTree::build(&members, &mut SlotArena::new());
        let lazy1: Vec<u64> = tree
            .root_cos1()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let lazy2: Vec<u64> = tree
            .root_cos2()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        tree.densify();
        let dense1: Vec<u64> = tree
            .root_cos1()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let dense2: Vec<u64> = tree
            .root_cos2()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(lazy1, dense1);
        assert_eq!(lazy2, dense2);
    }

    #[test]
    fn recycling_returns_buffers_to_the_arena() {
        let members = sorted_members((0..8).map(|i| wl(&format!("r{i}"), 1.0)).collect());
        let mut arena = SlotArena::new();
        let tree = SumTree::build(&members, &mut arena);
        assert_eq!(arena.pooled(), 0);
        tree.recycle_into(&mut arena);
        assert!(arena.pooled() > 0);
        // A rebuild from the warm arena reuses the pooled buffers.
        let before = arena.pooled();
        let tree = SumTree::build(&members, &mut arena);
        tree.recycle_into(&mut arena);
        assert_eq!(arena.pooled(), before);
    }
}
