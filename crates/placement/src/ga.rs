//! The optimizing search of §VI-B: a genetic algorithm over
//! workload-to-server assignments (Fig. 5 of the paper).
//!
//! Chromosomes are assignment vectors (`app → server`). Fitness is the
//! [`score`](crate::score) objective. The mutation operator follows the
//! paper: a used server is selected with probability inversely related to
//! its `f(U)` value and its workloads are migrated to other used servers,
//! tending to free one server per step. Crossover mates two assignments by
//! taking a random subset of application assignments from one parent and
//! the rest from the other.
//!
//! Per-server fit evaluations dominate the cost, so the search runs on a
//! [`FitEngine`], which memoizes required-capacity results by workload set
//! (the same server contents recur constantly across a run) and scores
//! whole populations on a scoped worker pool when configured with more
//! than one thread — bit-identically to the serial path, since each
//! evaluation is a pure function of its member sets.

use serde::{Deserialize, Serialize};

use ropus_obs::{Clock, WallClock};

use ropus_trace::rng::Rng;

use crate::engine::{EngineStats, FitEngine};
use crate::score::ServerOutcome;
use crate::PlacementError;

/// Tuning knobs of the genetic search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaOptions {
    /// Population size.
    pub population: usize,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// Stop after this many generations without score improvement.
    pub stagnation_limit: usize,
    /// Per-individual probability of the server-drain mutation.
    pub drain_mutation_probability: f64,
    /// Per-gene probability of a random reassignment.
    pub gene_mutation_probability: f64,
    /// Capacity tolerance of the fit binary search, in capacity units.
    pub capacity_tolerance: f64,
    /// PRNG seed; runs are deterministic per seed.
    pub seed: u64,
    /// Worker threads for population scoring (1 = serial). Parallel runs
    /// are bit-identical to serial runs under the same seed.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Maximum fit-cache entries; 0 means unbounded.
    #[serde(default)]
    pub cache_capacity: usize,
}

fn default_threads() -> usize {
    1
}

impl GaOptions {
    /// Production-quality defaults (the case-study setting).
    pub fn thorough(seed: u64) -> Self {
        GaOptions {
            population: 32,
            max_generations: 400,
            stagnation_limit: 40,
            drain_mutation_probability: 0.8,
            gene_mutation_probability: 0.02,
            capacity_tolerance: 0.05,
            seed,
            threads: 1,
            cache_capacity: 0,
        }
    }

    /// A small, fast configuration for tests and examples.
    pub fn fast(seed: u64) -> Self {
        GaOptions {
            population: 12,
            max_generations: 60,
            stagnation_limit: 12,
            drain_mutation_probability: 0.8,
            gene_mutation_probability: 0.05,
            capacity_tolerance: 0.1,
            seed,
            threads: 1,
            cache_capacity: 0,
        }
    }

    /// Sets the population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Sets the hard cap on generations.
    pub fn with_max_generations(mut self, max_generations: usize) -> Self {
        self.max_generations = max_generations;
        self
    }

    /// Sets the stagnation limit.
    pub fn with_stagnation_limit(mut self, stagnation_limit: usize) -> Self {
        self.stagnation_limit = stagnation_limit;
        self
    }

    /// Sets the per-individual drain-mutation probability.
    pub fn with_drain_mutation_probability(mut self, probability: f64) -> Self {
        self.drain_mutation_probability = probability;
        self
    }

    /// Sets the per-gene random-reassignment probability.
    pub fn with_gene_mutation_probability(mut self, probability: f64) -> Self {
        self.gene_mutation_probability = probability;
        self
    }

    /// Sets the capacity tolerance of the fit binary search.
    pub fn with_capacity_tolerance(mut self, tolerance: f64) -> Self {
        self.capacity_tolerance = tolerance;
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (values below 1 clamp to 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bounds the fit cache to `capacity` entries (0 = unbounded).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

impl Default for GaOptions {
    fn default() -> Self {
        Self::thorough(0)
    }
}

/// Result of a genetic search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaOutcome {
    /// Best feasible assignment found (`app → server`).
    pub assignment: Vec<usize>,
    /// Its score.
    pub score: f64,
    /// Generations actually run.
    pub generations: usize,
    /// Uncached per-server fit evaluations performed.
    pub evaluations: usize,
    /// Engine statistics of the search (cache hits/misses, wall time per
    /// generation, thread count).
    #[serde(default)]
    pub stats: EngineStats,
}

/// Runs the genetic search from one or more seed assignments over a pool
/// of `servers` identical servers.
///
/// Elitism guarantees the result scores at least as well as the best
/// feasible seed, so seeding with greedy solutions makes the GA dominate
/// them by construction.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] when no feasible assignment was
/// encountered during the whole search (including the seeds).
///
/// # Panics
///
/// Panics if `seeds` is empty, a seed is empty, or entries exceed
/// `servers`.
pub fn optimize(
    evaluator: &FitEngine<'_>,
    seeds: &[Vec<usize>],
    servers: usize,
    options: &GaOptions,
) -> Result<GaOutcome, PlacementError> {
    assert!(
        !seeds.is_empty() && seeds.iter().all(|s| !s.is_empty()),
        "seeds must be non-empty"
    );
    // Wall time feeds only the EngineStats telemetry (elapsed duration),
    // never a score or a placement decision, so the sanctioned obs clock
    // is the right source.
    // lint:allow(det-taint): elapsed time is telemetry-only; scores and
    // placements are pure functions of the seeded inputs.
    let clock = WallClock::new();
    let mut rng = Rng::seed_from_u64(options.seed);

    // Seed the population with the provided assignments plus noisy
    // variants of the first.
    let mut population: Vec<Vec<usize>> = Vec::with_capacity(options.population);
    for seed in seeds.iter().take(options.population) {
        population.push(seed.clone());
    }
    while population.len() < options.population.max(2) {
        let mut variant = seeds[0].clone();
        mutate_genes(
            &mut variant,
            servers,
            options.gene_mutation_probability.max(0.05),
            &mut rng,
        );
        population.push(variant);
    }

    let mut scored = score_population(evaluator, population, servers);

    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut stagnation = 0usize;
    let mut generations = 0usize;

    update_best(&mut best, &scored);

    for _ in 0..options.max_generations {
        generations += 1;
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut next: Vec<Vec<usize>> = Vec::with_capacity(options.population);
        // Elitism: carry the two best forward unchanged.
        for elite in scored.iter().take(2) {
            next.push(elite.0.clone());
        }
        while next.len() < options.population {
            let a = tournament(&scored, &mut rng);
            let b = tournament(&scored, &mut rng);
            let mut child = crossover(a, b, &mut rng);
            if rng.bernoulli(options.drain_mutation_probability) {
                drain_mutation(&mut child, servers, evaluator, &mut rng);
            }
            mutate_genes(
                &mut child,
                servers,
                options.gene_mutation_probability,
                &mut rng,
            );
            next.push(child);
        }

        scored = score_population(evaluator, next, servers);

        if update_best(&mut best, &scored) {
            stagnation = 0;
        } else {
            stagnation += 1;
        }
        if stagnation >= options.stagnation_limit {
            break;
        }
    }

    match best {
        Some((assignment, score)) => {
            let total_wall_ms = clock.now_ms();
            let mut stats = evaluator.stats();
            stats.generations = generations;
            stats.total_wall_ms = total_wall_ms;
            stats.mean_generation_wall_ms = if generations > 0 {
                total_wall_ms / generations as f64
            } else {
                0.0
            };
            Ok(GaOutcome {
                assignment,
                score,
                generations,
                evaluations: evaluator.evaluations(),
                stats,
            })
        }
        None => Err(PlacementError::Infeasible {
            servers,
            message: "no feasible assignment found by the genetic search".into(),
        }),
    }
}

/// Scores a population through the engine's (possibly parallel) scoring
/// path, pairing each assignment with its score and feasibility.
fn score_population(
    evaluator: &FitEngine<'_>,
    population: Vec<Vec<usize>>,
    servers: usize,
) -> Vec<(Vec<usize>, f64, bool)> {
    let scores = evaluator.score_assignments(&population, servers);
    population
        .into_iter()
        .zip(scores)
        .map(|(assignment, (score, feasible))| (assignment, score, feasible))
        .collect()
}

/// Updates the best feasible solution; returns whether it improved.
fn update_best(best: &mut Option<(Vec<usize>, f64)>, scored: &[(Vec<usize>, f64, bool)]) -> bool {
    let mut improved = false;
    for (assignment, score, feasible) in scored {
        if !feasible {
            continue;
        }
        let better = match best {
            Some((_, best_score)) => *score > *best_score + 1e-12,
            None => true,
        };
        if better {
            *best = Some((assignment.clone(), *score));
            improved = true;
        }
    }
    improved
}

/// Binary tournament selection by score.
fn tournament<'p>(scored: &'p [(Vec<usize>, f64, bool)], rng: &mut Rng) -> &'p [usize] {
    let a = rng.below(scored.len());
    let b = rng.below(scored.len());
    if scored[a].1 >= scored[b].1 {
        &scored[a].0
    } else {
        &scored[b].0
    }
}

/// The paper's crossover: a random share of application assignments from
/// one parent, the rest from the other.
fn crossover(a: &[usize], b: &[usize], rng: &mut Rng) -> Vec<usize> {
    let share = rng.next_f64();
    a.iter()
        .zip(b.iter())
        .map(|(&ga, &gb)| if rng.next_f64() < share { ga } else { gb })
        .collect()
}

/// Random per-gene reassignment within the pool.
fn mutate_genes(assignment: &mut [usize], servers: usize, probability: f64, rng: &mut Rng) {
    for gene in assignment.iter_mut() {
        if rng.bernoulli(probability) {
            *gene = rng.below(servers);
        }
    }
}

/// The paper's mutation: pick a used server with probability inversely
/// related to its `f(U)` contribution, then migrate its workloads to other
/// used servers — tending to reduce the number of servers in use by one.
fn drain_mutation(
    assignment: &mut [usize],
    servers: usize,
    evaluator: &FitEngine<'_>,
    rng: &mut Rng,
) {
    let outcomes = evaluator.outcomes(assignment, servers);
    let used: Vec<usize> = (0..servers)
        .filter(|&s| !matches!(outcomes[s], ServerOutcome::Unused))
        .collect();
    if used.len() < 2 {
        return;
    }
    let cpus = evaluator.server().cpus();
    let model = evaluator.score_model();
    // Weight = how far the server is from a perfect contribution of 1.
    let weights: Vec<f64> = used
        .iter()
        .map(|&s| (1.0 - outcomes[s].value_with(model, cpus)).max(0.01))
        .collect();
    let victim = used[rng.weighted_index(&weights)];
    let targets: Vec<usize> = used.iter().copied().filter(|&s| s != victim).collect();
    for gene in assignment.iter_mut() {
        if *gene == victim {
            // lint:allow(panic-expect): `targets` is `used` minus one
            // server and `used.len() >= 2` was checked on entry.
            let (_, &target) = rng.choose(&targets).expect("targets non-empty");
            *gene = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;
    use crate::workload::Workload;
    use ropus_qos::{CosSpec, PoolCommitments};
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments(theta: f64) -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(theta, 60).unwrap())
    }

    /// Workloads with constant CoS2 allocation of the given sizes.
    fn constant_fleet(sizes: &[f64]) -> Vec<Workload> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                    Trace::constant(cal(), s, cal().slots_per_week()).unwrap(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn evaluator_caches_by_member_set() {
        let fleet = constant_fleet(&[2.0, 3.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let r1 = eval.server_required(&[0, 1]).unwrap();
        let r2 = eval.server_required(&[1, 0]).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(eval.evaluations(), 1, "order-insensitive cache");
        assert!((r1 - 5.0).abs() < 0.1);
    }

    #[test]
    fn evaluator_outcomes_classify_servers() {
        let fleet = constant_fleet(&[10.0, 10.0, 2.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        // Server 0: both 10s (20 > 16, overbooked); server 1: the 2.0;
        // server 2: unused.
        let outcomes = eval.outcomes(&[0, 0, 1], 3);
        assert!(matches!(
            outcomes[0],
            ServerOutcome::Overbooked { workloads: 2 }
        ));
        assert!(matches!(outcomes[1], ServerOutcome::Fits { .. }));
        assert!(matches!(outcomes[2], ServerOutcome::Unused));
    }

    #[test]
    fn ga_consolidates_small_workloads_onto_fewer_servers() {
        // Six 2-CPU workloads all fit on one 16-way server; start scattered.
        let fleet = constant_fleet(&[2.0; 6]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let initial: Vec<usize> = (0..6).collect();
        let outcome = optimize(&eval, &[initial], 6, &GaOptions::fast(7)).unwrap();
        let used: std::collections::HashSet<usize> = outcome.assignment.iter().copied().collect();
        assert_eq!(used.len(), 1, "assignment {:?}", outcome.assignment);
        // Score: 5 unused servers + f(12/16).
        let expected = 5.0 + (12.0f64 / 16.0).powi(32);
        assert!(
            (outcome.score - expected).abs() < 0.3,
            "score {}",
            outcome.score
        );
    }

    #[test]
    fn ga_respects_capacity_and_reports_feasible_best() {
        // Three 10-CPU workloads cannot share a 16-way server pairwise.
        let fleet = constant_fleet(&[10.0, 10.0, 10.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let initial: Vec<usize> = (0..3).collect();
        let outcome = optimize(&eval, &[initial], 3, &GaOptions::fast(3)).unwrap();
        let (_, feasible) = eval.evaluate(&outcome.assignment, 3);
        assert!(feasible);
        let used: std::collections::HashSet<usize> = outcome.assignment.iter().copied().collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let fleet = constant_fleet(&[2.0, 3.0, 4.0, 5.0, 1.0]);
        let run = |seed| {
            let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
            optimize(&eval, &[vec![0, 1, 2, 3, 4]], 5, &GaOptions::fast(seed)).unwrap()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn ga_infeasible_when_a_workload_cannot_fit_anywhere() {
        let fleet = constant_fleet(&[20.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let err = optimize(&eval, &[vec![0]], 1, &GaOptions::fast(0)).unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible { .. }));
    }

    #[test]
    fn memory_pressure_forces_more_servers() {
        // Four tiny-CPU workloads whose memory footprints (24 GB each)
        // only pack two per 64 GB server.
        let fleet: Vec<Workload> = (0..4)
            .map(|i| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                    Trace::constant(cal(), 1.0, cal().slots_per_week()).unwrap(),
                )
                .unwrap()
                .with_memory(Trace::constant(cal(), 24.0, cal().slots_per_week()).unwrap())
                .unwrap()
            })
            .collect();
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        // CPU-wise all four fit one server (4 CPUs of 16), but memory
        // (96 GB) does not.
        assert!(eval.server_required(&[0, 1]).is_some());
        assert!(eval.server_required(&[0, 1, 2]).is_none());
        let initial: Vec<usize> = (0..4).collect();
        let outcome = optimize(&eval, &[initial], 4, &GaOptions::fast(5)).unwrap();
        let used: std::collections::HashSet<usize> = outcome.assignment.iter().copied().collect();
        assert_eq!(used.len(), 2, "{:?}", outcome.assignment);
    }

    #[test]
    fn statistical_cos_allows_overbooking() {
        // Two workloads that are busy at *different* times of day: each
        // needs 10 for two hours, base 1. Peak sum = 20 > 16, but a theta
        // = 0.9 commitment lets them share one server.
        let per_day = cal().slots_per_day();
        let mk = |name: &str, offset: usize| {
            let samples: Vec<f64> = (0..cal().slots_per_week())
                .map(|i| {
                    let slot = i % per_day;
                    if (offset..offset + 24).contains(&slot) {
                        10.0
                    } else {
                        1.0
                    }
                })
                .collect();
            Workload::new(
                name,
                Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                Trace::from_samples(cal(), samples).unwrap(),
            )
            .unwrap()
        };
        let fleet = vec![mk("morning", 96), mk("evening", 192)];
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(0.9), 0.05);
        let req = eval.server_required(&[0, 1]);
        assert!(req.is_some());
        assert!(req.unwrap() <= 16.0);
    }
}
