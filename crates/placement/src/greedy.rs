//! Greedy bin-packing baselines for the consolidation exercise.
//!
//! The paper (§VIII) notes that contemporaries — AOG, TeamQuest, AutoGlobe
//! — rely on greedy placement, and that the R-Opus genetic algorithm
//! "compared favorably to the greedy algorithms we implemented ourselves".
//! These are those baselines: first-fit, first-fit-decreasing, and
//! best-fit-decreasing over the same trace-replay fit test the GA uses, so
//! the comparison isolates the search strategy.

use serde::{Deserialize, Serialize};

use crate::engine::{FitEngine, FitScratch};
use crate::PlacementError;

/// Which greedy packing order and bin-choice rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GreedyStrategy {
    /// Workloads in input order, first server that fits.
    FirstFit,
    /// Workloads by descending peak allocation, first server that fits.
    FirstFitDecreasing,
    /// Workloads by descending peak allocation, fitting server whose
    /// resulting required capacity is highest (tightest fit).
    BestFitDecreasing,
    /// Workloads by descending peak allocation, fitting server where the
    /// workload *adds the least required capacity* — i.e. the server whose
    /// existing load is least correlated with the newcomer. This is the
    /// correlation-aware heuristic the paper's related work suggests
    /// ("heuristic search approaches that also take into account
    /// correlations in resource demands among workloads").
    MinMarginalCapacity,
}

impl GreedyStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [GreedyStrategy; 4] = [
        GreedyStrategy::FirstFit,
        GreedyStrategy::FirstFitDecreasing,
        GreedyStrategy::BestFitDecreasing,
        GreedyStrategy::MinMarginalCapacity,
    ];
}

/// Packs the evaluator's workloads onto as few servers as the strategy
/// manages, returning an assignment (`app → server`) using server indices
/// `0..servers_used`.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] when some workload does not fit
/// even on an empty server, and [`PlacementError::NoWorkloads`] for an
/// empty workload set.
pub fn place(
    evaluator: &FitEngine<'_>,
    strategy: GreedyStrategy,
) -> Result<Vec<usize>, PlacementError> {
    let workloads = evaluator.workloads();
    if workloads.is_empty() {
        return Err(PlacementError::NoWorkloads);
    }

    let mut order: Vec<usize> = (0..workloads.len()).collect();
    if strategy != GreedyStrategy::FirstFit {
        order.sort_by(|&a, &b| {
            workloads[b]
                .total_peak()
                .total_cmp(&workloads[a].total_peak())
        });
    }

    let mut bins: Vec<Vec<u16>> = Vec::new();
    let mut assignment = vec![usize::MAX; workloads.len()];
    // One scratch for the whole placement: every candidate fit test
    // recycles the same aggregate buffers.
    let mut scratch = FitScratch::new();

    for &app in &order {
        let mut candidate: Vec<u16> = Vec::new();
        let mut chosen: Option<usize> = None;
        let mut best_required = f64::NEG_INFINITY;
        let mut best_marginal = f64::INFINITY;

        for (bin_index, bin) in bins.iter().enumerate() {
            candidate.clear();
            candidate.extend_from_slice(bin);
            candidate.push(app as u16);
            let Some(required) = evaluator.server_required_scratch(&candidate, &mut scratch) else {
                continue;
            };
            match strategy {
                GreedyStrategy::FirstFit | GreedyStrategy::FirstFitDecreasing => {
                    chosen = Some(bin_index);
                    break;
                }
                GreedyStrategy::BestFitDecreasing => {
                    if required > best_required {
                        best_required = required;
                        chosen = Some(bin_index);
                    }
                }
                GreedyStrategy::MinMarginalCapacity => {
                    let before = evaluator
                        .server_required_scratch(bin, &mut scratch)
                        // lint:allow(panic-expect): every bin was admitted
                        // through this same fit check, so it must refit.
                        .expect("an existing bin always fits its own contents");
                    let marginal = required - before;
                    if marginal < best_marginal {
                        best_marginal = marginal;
                        chosen = Some(bin_index);
                    }
                }
            }
        }

        match chosen {
            Some(bin_index) => {
                bins[bin_index].push(app as u16);
                assignment[app] = bin_index;
            }
            None => {
                // Open a new server; the workload must at least fit alone.
                if evaluator
                    .server_required_scratch(&[app as u16], &mut scratch)
                    .is_none()
                {
                    return Err(PlacementError::Infeasible {
                        servers: bins.len(),
                        message: format!(
                            "workload {} does not fit on an empty server",
                            workloads[app].name()
                        ),
                    });
                }
                bins.push(vec![app as u16]);
                assignment[app] = bins.len() - 1;
            }
        }
    }

    Ok(assignment)
}

/// Friendlier alias for [`GreedyStrategy`], matching the naming used by
/// the CLI and the prelude.
pub type GreedyPolicy = GreedyStrategy;

/// Number of servers a greedy assignment uses.
pub fn servers_used(assignment: &[usize]) -> usize {
    assignment.iter().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;
    use crate::workload::Workload;
    use ropus_qos::{CosSpec, PoolCommitments};
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments() -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(1.0, 60).unwrap())
    }

    fn constant_fleet(sizes: &[f64]) -> Vec<Workload> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                    Trace::constant(cal(), s, cal().slots_per_week()).unwrap(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn ffd_packs_classic_instance_tightly() {
        // Sizes 10, 6, 6, 4, 4, 2 on capacity-16 servers: FFD gives
        // {10, 6}, {6, 4, 4, 2} = 2 servers.
        let fleet = constant_fleet(&[10.0, 6.0, 6.0, 4.0, 4.0, 2.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(), 0.05);
        let assignment = place(&eval, GreedyStrategy::FirstFitDecreasing).unwrap();
        assert_eq!(servers_used(&assignment), 2, "{assignment:?}");
    }

    #[test]
    fn first_fit_is_order_sensitive() {
        // In input order 2, 10, 6, 6, 4, 4: FF places 2+10 together (12),
        // then 6s and 4s pack worse than FFD would.
        let fleet = constant_fleet(&[2.0, 10.0, 6.0, 6.0, 4.0, 4.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(), 0.05);
        let ff = place(&eval, GreedyStrategy::FirstFit).unwrap();
        let ffd = place(&eval, GreedyStrategy::FirstFitDecreasing).unwrap();
        assert!(servers_used(&ff) >= servers_used(&ffd));
    }

    #[test]
    fn bfd_prefers_the_tightest_bin() {
        let fleet = constant_fleet(&[9.0, 8.0, 7.0, 6.0, 2.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(), 0.05);
        let assignment = place(&eval, GreedyStrategy::BestFitDecreasing).unwrap();
        // 9+7, 8+6+2 is achievable in 2 bins.
        assert_eq!(servers_used(&assignment), 2, "{assignment:?}");
        // Feasibility of every bin.
        let (_, feasible) = eval.evaluate(&assignment, servers_used(&assignment));
        assert!(feasible);
    }

    #[test]
    fn min_marginal_capacity_prefers_anti_correlated_neighbours() {
        // Workloads: a morning-heavy anchor, an evening-heavy anchor, and
        // an evening-heavy newcomer. The newcomer's marginal capacity is
        // near zero on the morning anchor's server and large on the
        // evening anchor's, so the correlation-aware rule must co-locate
        // it with the *morning* anchor — even though that server is the
        // "looser" fit that BestFitDecreasing would avoid.
        let cal = Calendar::five_minute();
        let per_day = cal.slots_per_day();
        let mk = |name: &str, offset: usize, level: f64, base: f64| {
            let samples: Vec<f64> = (0..cal.slots_per_week())
                .map(|i| {
                    let slot = i % per_day;
                    if (offset..offset + 48).contains(&slot) {
                        level
                    } else {
                        base
                    }
                })
                .collect();
            Workload::new(
                name,
                Trace::constant(cal, 0.0, cal.slots_per_week()).unwrap(),
                Trace::from_samples(cal, samples).unwrap(),
            )
            .unwrap()
        };
        // High bases keep the two anchors off one server (6.5 + 10 > 16).
        let fleet = vec![
            mk("morning-anchor", 96, 10.0, 6.5),
            mk("evening-anchor", 192, 10.0, 6.5),
            mk("evening-rider", 192, 5.0, 1.0),
        ];
        let eval = FitEngine::new(
            &fleet,
            ServerSpec::sixteen_way(),
            PoolCommitments::new(CosSpec::new(1.0, 60).unwrap()),
            0.05,
        );
        // BestFitDecreasing picks the *tightest* fitting bin for the rider,
        // which is the correlated evening anchor (required 15 vs 11.5).
        let bfd = place(&eval, GreedyStrategy::BestFitDecreasing).unwrap();
        assert_eq!(bfd[2], bfd[1], "BFD co-locates correlated peaks: {bfd:?}");
        // MinMarginalCapacity instead minimizes added capacity, joining the
        // anti-correlated morning anchor.
        let assignment = place(&eval, GreedyStrategy::MinMarginalCapacity).unwrap();
        assert_ne!(
            assignment[0], assignment[1],
            "anchors cannot share: {assignment:?}"
        );
        assert_eq!(
            assignment[2], assignment[0],
            "rider should join the anti-correlated morning anchor: {assignment:?}"
        );
    }

    #[test]
    fn oversized_workload_is_infeasible() {
        let fleet = constant_fleet(&[17.0]);
        let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(), 0.05);
        let err = place(&eval, GreedyStrategy::FirstFitDecreasing).unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible { .. }));
    }

    #[test]
    fn every_strategy_returns_a_feasible_assignment() {
        let fleet = constant_fleet(&[5.0, 3.0, 8.0, 1.0, 12.0, 2.0, 6.0]);
        for strategy in GreedyStrategy::ALL {
            let eval = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(), 0.05);
            let assignment = place(&eval, strategy).unwrap();
            let n = servers_used(&assignment);
            let (_, feasible) = eval.evaluate(&assignment, n);
            assert!(feasible, "{strategy:?} produced {assignment:?}");
            assert!(assignment.iter().all(|&s| s < n));
        }
    }
}
