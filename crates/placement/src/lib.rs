//! The R-Opus workload placement service (§VI of the paper).
//!
//! Two cooperating components:
//!
//! * a **simulator** ([`simulator`]) that emulates the assignment of a set
//!   of workloads to a single resource — it replays per-CoS allocation
//!   traces, checks the guaranteed-class constraint, measures the resource
//!   access probability `θ` and the carry-over deadline, and binary-searches
//!   the smallest *required capacity* that satisfies the pool's resource
//!   access CoS commitments (Fig. 4);
//! * an **optimizing search** ([`ga`]) — a genetic algorithm over
//!   workload-to-server assignments scored by the paper's
//!   `f(U) = U^(2Z)` objective ([`score`]), with mutation biased toward
//!   poorly utilized servers and simple random crossover (Fig. 5).
//!
//! [`greedy`] provides the first-fit family of baselines the paper compares
//! against, [`consolidate`] wraps everything into the consolidation
//! exercise that produces the Table I columns (`servers`, `C_requ`,
//! `C_peak`), and [`failure`] implements the §VI-C single-failure planning.
//!
//! Both the search and the baselines run their per-server fit tests
//! through [`engine::FitEngine`], which memoizes required-capacity results
//! by member set and, when configured with more than one worker thread,
//! scores populations and per-server binary searches in parallel —
//! bit-identically to the serial path under a fixed seed.
//!
//! # Example
//!
//! ```
//! use ropus_placement::consolidate::{Consolidator, ConsolidationOptions};
//! use ropus_placement::server::ServerSpec;
//! use ropus_placement::workload::Workload;
//! use ropus_qos::{CosSpec, PoolCommitments};
//! use ropus_trace::{Calendar, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cal = Calendar::five_minute();
//! let commitments = PoolCommitments::new(CosSpec::new(0.9, 60)?);
//! let workloads: Vec<Workload> = (0..4)
//!     .map(|i| {
//!         Workload::new(
//!             format!("app-{i}"),
//!             Trace::constant(cal, 1.0, cal.slots_per_week()).unwrap(),
//!             Trace::constant(cal, 2.0, cal.slots_per_week()).unwrap(),
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! let consolidator = Consolidator::new(
//!     ServerSpec::new(16, 1.0),
//!     commitments,
//!     ConsolidationOptions::fast(7).with_threads(2).with_cache_capacity(4096),
//! );
//! let report = consolidator.consolidate(&workloads, ropus_obs::ObsCtx::none())?;
//! assert!(report.servers_used >= 1);
//! // The engine reports its cache effectiveness and wall time.
//! assert!(report.stats.evaluations > 0);
//! assert_eq!(report.stats.evaluations, report.stats.cache_hits + report.stats.cache_misses);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod sumtree;

pub mod consolidate;
pub mod engine;
pub mod failure;
pub mod ga;
pub mod greedy;
pub mod hetero;
pub mod migration;
pub mod score;
pub mod server;
pub mod session;
pub mod simulator;
pub mod workload;

pub use error::PlacementError;
pub use sumtree::SlotArena;
