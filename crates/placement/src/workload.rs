//! Workloads as seen by the placement service: named pairs of per-CoS
//! allocation-requirement traces.

use serde::{Deserialize, Serialize};

use ropus_qos::translation::Translation;
use ropus_trace::{Trace, TraceError, TraceView};

use crate::PlacementError;

/// One application workload's allocation requirements, split across the
/// pool's two classes of service by the QoS translation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    cos1: Trace,
    cos2: Trace,
    cos1_peak: f64,
    total_peak: f64,
    #[serde(default)]
    memory: Option<Trace>,
}

impl Workload {
    /// Creates a workload from aligned per-CoS allocation traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Misaligned`] when the traces differ in length.
    pub fn new(name: impl Into<String>, cos1: Trace, cos2: Trace) -> Result<Self, TraceError> {
        if cos1.len() != cos2.len() {
            return Err(TraceError::Misaligned {
                left: cos1.len(),
                right: cos2.len(),
            });
        }
        let cos1_peak = cos1.peak();
        let total_peak = cos1
            .iter()
            .zip(cos2.iter())
            .map(|(a, b)| a + b)
            .fold(0.0, f64::max);
        Ok(Workload {
            name: name.into(),
            cos1,
            cos2,
            cos1_peak,
            total_peak,
            memory: None,
        })
    }

    /// Attaches a memory-footprint trace (GB per slot), the second
    /// capacity attribute. Memory is placed as a guaranteed attribute:
    /// the placement simulator requires the aggregate footprint to stay
    /// within the server's memory at every slot.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Misaligned`] when the memory trace length
    /// differs from the CPU traces.
    pub fn with_memory(mut self, memory: Trace) -> Result<Self, TraceError> {
        if memory.len() != self.cos1.len() {
            return Err(TraceError::Misaligned {
                left: self.cos1.len(),
                right: memory.len(),
            });
        }
        self.memory = Some(memory);
        Ok(self)
    }

    /// The memory-footprint trace, if one is attached.
    pub fn memory(&self) -> Option<&Trace> {
        self.memory.as_ref()
    }

    /// Peak memory footprint in GB (0 when no memory trace is attached).
    pub fn memory_peak(&self) -> f64 {
        self.memory.as_ref().map_or(0.0, Trace::peak)
    }

    /// Builds a workload from a QoS [`Translation`].
    pub fn from_translation(name: impl Into<String>, translation: Translation) -> Self {
        Workload::new(name, translation.cos1, translation.cos2)
            // lint:allow(panic-expect): a Translation's per-CoS traces
            // share one calendar and length by construction.
            .expect("translation traces are aligned by construction")
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Guaranteed-class allocation trace.
    pub fn cos1(&self) -> &Trace {
        &self.cos1
    }

    /// Statistical-class allocation trace.
    pub fn cos2(&self) -> &Trace {
        &self.cos2
    }

    /// Borrowed view of the guaranteed-class trace (for read-only layers:
    /// aggregation, replay, statistics).
    pub fn cos1_view(&self) -> TraceView<'_> {
        self.cos1.view()
    }

    /// Borrowed view of the statistical-class trace.
    pub fn cos2_view(&self) -> TraceView<'_> {
        self.cos2.view()
    }

    /// Borrowed view of the memory-footprint trace, if one is attached.
    pub fn memory_view(&self) -> Option<TraceView<'_>> {
        self.memory.as_ref().map(Trace::view)
    }

    /// Peak of the CoS1 trace — the workload's contribution to the
    /// guaranteed-class constraint (sum of peaks <= capacity).
    pub fn cos1_peak(&self) -> f64 {
        self.cos1_peak
    }

    /// Peak of the total (CoS1 + CoS2) allocation — the workload's
    /// contribution to the paper's `C_peak` column.
    pub fn total_peak(&self) -> f64 {
        self.total_peak
    }

    /// Number of observation slots.
    pub fn len(&self) -> usize {
        self.cos1.len()
    }

    /// Whether the traces are empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cos1.is_empty()
    }
}

/// Validates that a set of workloads is non-empty, mutually aligned, and
/// covers whole weeks; returns the common slot count.
///
/// Accepts any iterator of borrowed workloads (`&[Workload]`,
/// `slice.iter().copied()` over `&[&Workload]`, …) so callers holding
/// references validate without cloning anything.
///
/// # Errors
///
/// Returns the corresponding [`PlacementError`] variant on each violation.
pub fn validate_workloads<'a, I>(workloads: I) -> Result<usize, PlacementError>
where
    I: IntoIterator<Item = &'a Workload>,
{
    let mut iter = workloads.into_iter();
    let first = iter.next().ok_or(PlacementError::NoWorkloads)?;
    let len = first.len();
    let calendar = first.cos1().calendar();
    for w in std::iter::once(first).chain(iter) {
        if w.len() != len || w.cos1().calendar() != calendar {
            return Err(PlacementError::MisalignedWorkloads {
                name: w.name().to_string(),
            });
        }
        if w.cos1().require_whole_weeks().is_err() {
            return Err(PlacementError::PartialWeeks {
                name: w.name().to_string(),
            });
        }
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_trace::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn wl(name: &str, c1: f64, c2: f64, len: usize) -> Workload {
        Workload::new(
            name,
            Trace::constant(cal(), c1, len).unwrap(),
            Trace::constant(cal(), c2, len).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn peaks_are_precomputed() {
        let w = Workload::new(
            "a",
            Trace::from_samples(cal(), vec![1.0, 3.0]).unwrap(),
            Trace::from_samples(cal(), vec![4.0, 1.0]).unwrap(),
        )
        .unwrap();
        assert_eq!(w.cos1_peak(), 3.0);
        // Total peak is the peak of the *sum*, not the sum of peaks.
        assert_eq!(w.total_peak(), 5.0);
    }

    #[test]
    fn rejects_misaligned_traces() {
        let err = Workload::new(
            "a",
            Trace::constant(cal(), 1.0, 2).unwrap(),
            Trace::constant(cal(), 1.0, 3).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::Misaligned { .. }));
    }

    #[test]
    fn from_translation_builds_workload() {
        use ropus_qos::translation::translate;
        use ropus_qos::{AppQos, CosSpec};
        let demand = Trace::constant(cal(), 2.0, cal().slots_per_week()).unwrap();
        let t = translate(
            &demand,
            &AppQos::paper_default(None),
            &CosSpec::new(0.6, 60).unwrap(),
            ropus_obs::ObsCtx::none(),
        )
        .unwrap();
        let w = Workload::from_translation("app", t);
        assert_eq!(w.name(), "app");
        assert!(w.total_peak() > 0.0);
    }

    #[test]
    fn memory_trace_must_align() {
        let w = wl("a", 1.0, 1.0, 4);
        let good = Trace::constant(cal(), 8.0, 4).unwrap();
        let w = w.with_memory(good).unwrap();
        assert_eq!(w.memory_peak(), 8.0);
        assert!(w.memory().is_some());
        let bad = Trace::constant(cal(), 8.0, 5).unwrap();
        assert!(matches!(
            wl("b", 1.0, 1.0, 4).with_memory(bad),
            Err(TraceError::Misaligned { .. })
        ));
        assert_eq!(wl("c", 1.0, 1.0, 4).memory_peak(), 0.0);
    }

    #[test]
    fn validate_accepts_aligned_whole_weeks() {
        let n = cal().slots_per_week();
        let ws = vec![wl("a", 1.0, 1.0, n), wl("b", 2.0, 0.5, n)];
        assert_eq!(validate_workloads(&ws).unwrap(), n);
    }

    #[test]
    fn validate_rejects_empty_misaligned_and_partial() {
        assert!(matches!(
            validate_workloads(&[]),
            Err(PlacementError::NoWorkloads)
        ));
        let n = cal().slots_per_week();
        let ws = vec![wl("a", 1.0, 1.0, n), wl("b", 1.0, 1.0, n * 2)];
        assert!(matches!(
            validate_workloads(&ws),
            Err(PlacementError::MisalignedWorkloads { .. })
        ));
        let ws = vec![wl("a", 1.0, 1.0, 100)];
        assert!(matches!(
            validate_workloads(&ws),
            Err(PlacementError::PartialWeeks { .. })
        ));
    }
}
