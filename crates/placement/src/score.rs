//! The consolidation objective function (§VI-B of the paper).
//!
//! An assignment's score is the sum over servers of:
//!
//! * `+1` for a server that is not used;
//! * `f(U) = (U^Z)² = U^(2Z)` for a used server whose required capacity
//!   `R` fits its limit `L`, where `U = R/L`;
//! * `−N` for an overbooked server, `N` being its workload count.
//!
//! The square exaggerates the advantage of high utilization (in a
//! least-squares sense) and the `Z` exponent demands that servers with more
//! CPUs run hotter — motivated by the `1/(1 − U^Z)` open-queueing response
//! time estimate.

use serde::{Deserialize, Serialize};

/// The paper's utilization value `f(U) = U^(2Z)` for a server with `Z`
/// CPUs; `U` is clamped into `[0, 1]`.
///
/// # Example
///
/// ```
/// use ropus_placement::score::utilization_value;
///
/// // A hot 16-way server scores much higher than a half-idle one.
/// assert!(utilization_value(0.9, 16) > 100.0 * utilization_value(0.5, 16));
/// ```
pub fn utilization_value(utilization: f64, cpus: u32) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    u.powi(2 * cpus as i32)
}

/// Alternative utilization-value functions for ablating the paper's
/// choice of `f(U) = U^(2Z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScoreModel {
    /// The paper's `f(U) = U^(2Z)` (default).
    #[default]
    PowerTwoZ,
    /// `f(U) = U²` — keeps the least-squares exaggeration but drops the
    /// Z-scaling, so big servers are not pushed to run hotter.
    Quadratic,
    /// `f(U) = U` — plain utilization; no preference shaping at all.
    Linear,
}

impl ScoreModel {
    /// The utilization value under this model; `U` is clamped to `[0, 1]`.
    pub fn utilization_value(&self, utilization: f64, cpus: u32) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        match self {
            ScoreModel::PowerTwoZ => u.powi(2 * cpus as i32),
            ScoreModel::Quadratic => u * u,
            ScoreModel::Linear => u,
        }
    }
}

/// Evaluation of one server under an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerOutcome {
    /// No workloads assigned.
    Unused,
    /// Workloads fit: required capacity `R <= L`.
    Fits {
        /// The required capacity `R`.
        required: f64,
        /// `U = R / L`.
        utilization: f64,
    },
    /// Workloads do not fit at the server's capacity limit.
    Overbooked {
        /// Number of workloads assigned to the server.
        workloads: usize,
    },
}

impl ServerOutcome {
    /// The score contribution of this server under the paper's model.
    pub fn value(&self, cpus: u32) -> f64 {
        self.value_with(ScoreModel::PowerTwoZ, cpus)
    }

    /// The score contribution of this server under an explicit model.
    pub fn value_with(&self, model: ScoreModel, cpus: u32) -> f64 {
        match self {
            ServerOutcome::Unused => 1.0,
            ServerOutcome::Fits { utilization, .. } => model.utilization_value(*utilization, cpus),
            ServerOutcome::Overbooked { workloads } => -(*workloads as f64),
        }
    }

    /// Whether the server satisfies the commitments (unused or fitting).
    pub fn is_feasible(&self) -> bool {
        !matches!(self, ServerOutcome::Overbooked { .. })
    }
}

/// Total score of an assignment given each server's outcome (paper model).
pub fn assignment_score(outcomes: &[ServerOutcome], cpus: u32) -> f64 {
    assignment_score_with(outcomes, ScoreModel::PowerTwoZ, cpus)
}

/// Total score of an assignment under an explicit utilization model.
pub fn assignment_score_with(outcomes: &[ServerOutcome], model: ScoreModel, cpus: u32) -> f64 {
    outcomes.iter().map(|o| o.value_with(model, cpus)).sum()
}

/// Whether every server in the assignment satisfies the commitments.
pub fn assignment_feasible(outcomes: &[ServerOutcome]) -> bool {
    outcomes.iter().all(ServerOutcome::is_feasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_matches_paper_definition() {
        // f(U) = U^(2Z).
        assert_eq!(utilization_value(1.0, 16), 1.0);
        assert_eq!(utilization_value(0.0, 16), 0.0);
        let u: f64 = 0.8;
        assert!((utilization_value(u, 4) - u.powi(8)).abs() < 1e-15);
        assert!((utilization_value(u, 16) - u.powi(32)).abs() < 1e-15);
    }

    #[test]
    fn more_cpus_penalize_low_utilization_harder() {
        // The Z term demands bigger servers run hotter.
        assert!(utilization_value(0.7, 16) < utilization_value(0.7, 2));
    }

    #[test]
    fn out_of_range_utilization_is_clamped() {
        assert_eq!(utilization_value(1.5, 4), 1.0);
        assert_eq!(utilization_value(-0.5, 4), 0.0);
    }

    #[test]
    fn outcome_values() {
        assert_eq!(ServerOutcome::Unused.value(16), 1.0);
        assert_eq!(ServerOutcome::Overbooked { workloads: 5 }.value(16), -5.0);
        let fits = ServerOutcome::Fits {
            required: 8.0,
            utilization: 0.5,
        };
        assert!((fits.value(16) - 0.5f64.powi(32)).abs() < 1e-18);
    }

    #[test]
    fn unused_beats_poorly_used() {
        // An empty server is worth more than a barely used one, which is
        // what drives the search toward consolidation.
        let poorly_used = ServerOutcome::Fits {
            required: 1.0,
            utilization: 1.0 / 16.0,
        };
        assert!(ServerOutcome::Unused.value(16) > poorly_used.value(16));
    }

    #[test]
    fn score_models_are_ordered_for_low_utilization() {
        // At U = 0.7 on 16 CPUs: linear > quadratic > U^32.
        let u = 0.7;
        let l = ScoreModel::Linear.utilization_value(u, 16);
        let q = ScoreModel::Quadratic.utilization_value(u, 16);
        let p = ScoreModel::PowerTwoZ.utilization_value(u, 16);
        assert!(l > q && q > p, "{l} {q} {p}");
        // Quadratic and Linear ignore Z.
        assert_eq!(ScoreModel::Quadratic.utilization_value(u, 2), q);
        assert_eq!(ScoreModel::Linear.utilization_value(u, 2), l);
    }

    #[test]
    fn score_and_feasibility_aggregate() {
        let outcomes = [
            ServerOutcome::Unused,
            ServerOutcome::Fits {
                required: 12.0,
                utilization: 0.75,
            },
            ServerOutcome::Overbooked { workloads: 3 },
        ];
        let score = assignment_score(&outcomes, 16);
        assert!((score - (1.0 + 0.75f64.powi(32) - 3.0)).abs() < 1e-12);
        assert!(!assignment_feasible(&outcomes));
        assert!(assignment_feasible(&outcomes[..2]));
    }
}
