//! The consolidation exercise: pack a fleet of translated workloads onto
//! as few servers as possible while honouring the pool's resource access
//! commitments (§VI-B, producing the Table I columns).

use ropus_obs::ObsCtx;
use serde::{Deserialize, Serialize};

use ropus_qos::PoolCommitments;

use crate::engine::{EngineStats, FitEngine};
use crate::ga::{optimize, GaOptions, GaOutcome};
use crate::greedy::{place, servers_used, GreedyStrategy};
use crate::server::{Pool, ServerSpec};
use crate::session::EngineSession;
use crate::workload::{validate_workloads, Workload};
use crate::PlacementError;

/// Options for a consolidation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationOptions {
    /// Genetic-search tuning.
    pub ga: GaOptions,
    /// Capacity tolerance used when reporting per-server required
    /// capacities (finer than the search tolerance).
    pub report_tolerance: f64,
}

impl ConsolidationOptions {
    /// Case-study quality settings.
    pub fn thorough(seed: u64) -> Self {
        ConsolidationOptions {
            ga: GaOptions::thorough(seed),
            report_tolerance: 0.05,
        }
    }

    /// Fast settings for tests and examples.
    pub fn fast(seed: u64) -> Self {
        ConsolidationOptions {
            ga: GaOptions::fast(seed),
            report_tolerance: 0.1,
        }
    }

    /// Replaces the genetic-search options wholesale.
    pub fn with_ga(mut self, ga: GaOptions) -> Self {
        self.ga = ga;
        self
    }

    /// Sets the reporting capacity tolerance.
    pub fn with_report_tolerance(mut self, tolerance: f64) -> Self {
        self.report_tolerance = tolerance;
        self
    }

    /// Sets the worker-thread count used by the engine (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.ga = self.ga.with_threads(threads);
        self
    }

    /// Bounds the engine's fit cache (0 = unbounded).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.ga = self.ga.with_cache_capacity(capacity);
        self
    }

    /// Sets the hard cap on GA generations.
    pub fn with_max_generations(mut self, max_generations: usize) -> Self {
        self.ga = self.ga.with_max_generations(max_generations);
        self
    }

    /// Sets the GA seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.ga = self.ga.with_seed(seed);
        self
    }
}

/// One used server in a placement report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPlacement {
    /// Server index within the report's pool.
    pub server: usize,
    /// Indices of the workloads assigned to the server.
    pub workloads: Vec<usize>,
    /// The smallest capacity satisfying the commitments for this set.
    pub required_capacity: f64,
    /// `required_capacity / capacity limit`.
    pub utilization: f64,
}

/// Outcome of a consolidation exercise — the Table I row ingredients.
///
/// Equality deliberately ignores [`stats`](Self::stats): wall times and
/// cache-hit counts vary run to run, but the placement itself is
/// deterministic per seed regardless of thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Final assignment (`app → server`).
    pub assignment: Vec<usize>,
    /// Number of servers that host at least one workload.
    pub servers_used: usize,
    /// Sum of per-server required capacities — the paper's `C_requ`.
    pub required_capacity_total: f64,
    /// Sum of per-application peak allocations — the paper's `C_peak`.
    pub peak_allocation_total: f64,
    /// Final objective score.
    pub score: f64,
    /// Per-server detail for the used servers.
    pub servers: Vec<ServerPlacement>,
    /// Engine statistics of the run (ignored by equality).
    #[serde(default)]
    pub stats: EngineStats,
    /// Observability snapshot, attached only when the caller ran with an
    /// enabled [`Obs`](ropus_obs::Obs) handle *and* asked for it; omitted from the JSON
    /// when absent so un-observed reports serialize byte-identically to
    /// earlier releases. Ignored by equality, like [`stats`](Self::stats).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub obs: Option<ropus_obs::ObsReport>,
}

impl PartialEq for PlacementReport {
    fn eq(&self, other: &Self) -> bool {
        self.assignment == other.assignment
            && self.servers_used == other.servers_used
            && self.required_capacity_total == other.required_capacity_total
            && self.peak_allocation_total == other.peak_allocation_total
            && self.score == other.score
            && self.servers == other.servers
    }
}

impl PlacementReport {
    /// Ratio of required capacity to the sum of peak allocations; the
    /// paper reports required capacities "between 37% to 45% lower than
    /// the sum of per-application peak allocations".
    pub fn sharing_savings(&self) -> f64 {
        if self.peak_allocation_total == 0.0 {
            return 0.0;
        }
        1.0 - self.required_capacity_total / self.peak_allocation_total
    }
}

/// The consolidation service: owns the server type, commitments, and
/// search options.
#[derive(Debug, Clone, Copy)]
pub struct Consolidator {
    server: ServerSpec,
    commitments: PoolCommitments,
    options: ConsolidationOptions,
}

impl Consolidator {
    /// Creates a consolidator.
    pub fn new(
        server: ServerSpec,
        commitments: PoolCommitments,
        options: ConsolidationOptions,
    ) -> Self {
        Consolidator {
            server,
            commitments,
            options,
        }
    }

    /// The server type being packed onto.
    pub fn server(&self) -> ServerSpec {
        self.server
    }

    /// The pool commitments in force.
    pub fn commitments(&self) -> PoolCommitments {
        self.commitments
    }

    /// The options in force.
    pub fn options(&self) -> ConsolidationOptions {
        self.options
    }

    /// Builds the search-tolerance fit engine for a fleet.
    fn engine<'a>(&self, workloads: &'a [Workload]) -> FitEngine<'a> {
        FitEngine::new(
            workloads,
            self.server,
            self.commitments,
            self.options.ga.capacity_tolerance,
        )
        .with_threads(self.options.ga.threads)
        .with_cache_capacity(self.options.ga.cache_capacity)
    }

    /// Consolidates the workloads onto as few servers as the search finds,
    /// with the pool sized by a first-fit-decreasing pre-pass.
    ///
    /// With a collector attached to `obs`, the greedy seeding, genetic
    /// search, and report phases are wrapped in spans and the run's
    /// [`EngineStats`] migrate onto the metrics registry.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::Infeasible`] when some workload cannot be
    /// placed at all, and validation errors for degenerate inputs.
    pub fn consolidate(
        &self,
        workloads: &[Workload],
        obs: ObsCtx<'_>,
    ) -> Result<PlacementReport, PlacementError> {
        validate_workloads(workloads)?;
        let evaluator = self.engine(workloads);
        // Seed with every greedy baseline: FFD bounds the pool size, and
        // elitism makes the search dominate all of them by construction.
        let seed_span = obs.span("placement.seed");
        let ffd = place(&evaluator, GreedyStrategy::FirstFitDecreasing)?;
        let pool_size = servers_used(&ffd);
        let mut seeds = vec![ffd];
        for strategy in GreedyStrategy::ALL {
            if strategy == GreedyStrategy::FirstFitDecreasing {
                continue;
            }
            if let Ok(seed) = place(&evaluator, strategy) {
                if servers_used(&seed) <= pool_size {
                    seeds.push(seed);
                }
            }
        }
        drop(seed_span);
        let search_span = obs.span("placement.search");
        let outcome = optimize(&evaluator, &seeds, pool_size, &self.options.ga)?;
        drop(search_span);
        self.report(workloads, outcome, obs)
    }

    /// Consolidates onto a fixed pool (used by failure planning, where the
    /// surviving pool size is given); same spans and registry migration as
    /// [`consolidate`](Self::consolidate).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::Infeasible`] when no feasible assignment
    /// onto `pool.count` servers is found.
    pub fn consolidate_onto(
        &self,
        workloads: &[Workload],
        pool: Pool,
        obs: ObsCtx<'_>,
    ) -> Result<PlacementReport, PlacementError> {
        validate_workloads(workloads)?;
        let evaluator = self.engine(workloads);
        let seed_span = obs.span("placement.seed");
        let ffd = place(&evaluator, GreedyStrategy::FirstFitDecreasing)?;
        let ffd_servers = servers_used(&ffd);
        drop(seed_span);
        let search_span = obs.span("placement.search");
        let outcome = if ffd_servers > pool.count {
            // FFD overflowed the pool; fold the excess onto the pool
            // round-robin and let the search try to repair it.
            let folded: Vec<usize> = ffd.iter().map(|&s| s % pool.count).collect();
            optimize(&evaluator, &[folded], pool.count, &self.options.ga)?
        } else {
            optimize(&evaluator, &[ffd], pool.count, &self.options.ga)?
        };
        drop(search_span);
        self.report(workloads, outcome, obs)
    }

    /// Builds the report, recomputing per-server required capacities at
    /// the (finer) report tolerance. The recomputation is a thin client of
    /// the incremental [`EngineSession`] API: the final assignment is
    /// bulk-loaded into a session, which re-fits each used server through
    /// the same per-server code path `ropus serve` maintains online —
    /// independent binary searches fanned over the engine's parallel map.
    fn report(
        &self,
        workloads: &[Workload],
        outcome: GaOutcome,
        obs: ObsCtx<'_>,
    ) -> Result<PlacementReport, PlacementError> {
        let GaOutcome {
            assignment,
            score,
            stats,
            ..
        } = outcome;
        let _report_span = obs.span("placement.report");
        // Migrate the search's engine statistics onto the registry. The
        // evaluation and hit/miss tallies are timing-dependent under
        // parallel scoring (two workers racing on one uncached key both
        // count a miss), so they ride the timing-dependent channel, which
        // deterministic collectors drop; generations are deterministic
        // per seed and always recorded.
        obs.timing_counter("placement.engine.evaluations", stats.evaluations);
        obs.timing_counter("placement.engine.cache_hits", stats.cache_hits);
        obs.timing_counter("placement.engine.cache_misses", stats.cache_misses);
        obs.counter("placement.search.generations", stats.generations as u64);

        let mut session = EngineSession::new(self.server, self.commitments)
            .with_tolerance(self.options.report_tolerance)
            .with_threads(self.options.ga.threads)
            .with_assignment(workloads, &assignment)?;
        let servers = session.server_placements()?;

        let required_capacity_total = servers.iter().map(|s| s.required_capacity).sum();
        let peak_allocation_total = workloads.iter().map(Workload::total_peak).sum();
        Ok(PlacementReport {
            servers_used: servers.len(),
            assignment,
            required_capacity_total,
            peak_allocation_total,
            score,
            servers,
            stats,
            obs: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments(theta: f64) -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(theta, 60).unwrap())
    }

    fn constant_fleet(sizes: &[f64]) -> Vec<Workload> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                    Trace::constant(cal(), s, cal().slots_per_week()).unwrap(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn consolidates_and_reports_totals() {
        let fleet = constant_fleet(&[4.0, 4.0, 4.0, 2.0]);
        let consolidator = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(1.0),
            ConsolidationOptions::fast(5),
        );
        let report = consolidator.consolidate(&fleet, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 1);
        assert!((report.peak_allocation_total - 14.0).abs() < 1e-9);
        assert!((report.required_capacity_total - 14.0).abs() < 0.2);
        assert_eq!(report.servers.len(), 1);
        assert_eq!(report.servers[0].workloads.len(), 4);
        assert!(report.servers[0].utilization > 0.8);
    }

    #[test]
    fn report_is_consistent_with_assignment() {
        let fleet = constant_fleet(&[9.0, 9.0, 9.0, 2.0]);
        let consolidator = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(1.0),
            ConsolidationOptions::fast(2),
        );
        let report = consolidator.consolidate(&fleet, ObsCtx::none()).unwrap();
        // 9+9 never fits: at least 2 servers.
        assert!(report.servers_used >= 2);
        let mut seen = vec![false; fleet.len()];
        for sp in &report.servers {
            for &w in &sp.workloads {
                assert_eq!(report.assignment[w], sp.server);
                seen[w] = true;
            }
            assert!(sp.required_capacity <= 16.0 + 0.2);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consolidate_onto_respects_pool_limit() {
        let fleet = constant_fleet(&[6.0, 6.0, 6.0, 6.0]);
        let consolidator = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(1.0),
            ConsolidationOptions::fast(9),
        );
        let pool = Pool::homogeneous(ServerSpec::sixteen_way(), 2);
        let report = consolidator
            .consolidate_onto(&fleet, pool, ObsCtx::none())
            .unwrap();
        assert!(report.servers_used <= 2);
        assert!(report.assignment.iter().all(|&s| s < 2));
    }

    #[test]
    fn consolidate_onto_reports_infeasible_when_pool_too_small() {
        let fleet = constant_fleet(&[10.0, 10.0, 10.0]);
        let consolidator = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(1.0),
            ConsolidationOptions::fast(1),
        );
        let pool = Pool::homogeneous(ServerSpec::sixteen_way(), 1);
        let err = consolidator
            .consolidate_onto(&fleet, pool, ObsCtx::none())
            .unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible { .. }));
    }

    #[test]
    fn sharing_savings_reflects_overbooking() {
        // Two anti-correlated workloads: savings should be well above zero
        // with a statistical commitment.
        let per_day = cal().slots_per_day();
        let mk = |name: &str, offset: usize| {
            let samples: Vec<f64> = (0..cal().slots_per_week())
                .map(|i| {
                    let slot = i % per_day;
                    if (offset..offset + 24).contains(&slot) {
                        12.0
                    } else {
                        1.0
                    }
                })
                .collect();
            Workload::new(
                name,
                Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                Trace::from_samples(cal(), samples).unwrap(),
            )
            .unwrap()
        };
        let fleet = vec![mk("a", 96), mk("b", 192)];
        let consolidator = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(0.9),
            ConsolidationOptions::fast(3),
        );
        let report = consolidator.consolidate(&fleet, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 1);
        // C_peak = 24, C_requ ~ 13: savings > 40%.
        assert!(
            report.sharing_savings() > 0.4,
            "savings {}",
            report.sharing_savings()
        );
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let consolidator = Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(1.0),
            ConsolidationOptions::fast(0),
        );
        assert!(matches!(
            consolidator.consolidate(&[], ObsCtx::none()),
            Err(PlacementError::NoWorkloads)
        ));
    }
}
