//! The single-server fit simulator (Fig. 4 of the paper).
//!
//! Given a set of workloads assigned to one server, the simulator replays
//! their per-CoS allocation traces against a candidate capacity `L` and
//! checks the pool's resource access CoS commitments:
//!
//! 1. **CoS1 guarantee** — the sum of per-workload *peak* CoS1 allocations
//!    must not exceed `L` (§IV);
//! 2. **access probability** — the measured
//!    `θ = min_w min_t Σ_days min(A,L) / Σ_days A` must reach the committed
//!    `θ` (§IV's definition, computed per week and slot-of-day);
//! 3. **deadline** — demand not satisfied on request carries over and must
//!    be fully served within `s` slots.
//!
//! [`FitRequest::required_capacity`] binary-searches the smallest `L`
//! satisfying all three, which is the per-server `C_requ` contribution in
//! Table I. [`FitRequest`] paired with [`FitOptions`] is the single entry
//! point.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use ropus_qos::PoolCommitments;
use ropus_trace::{kernels, Calendar};

use crate::sumtree::{SlotArena, SumTree};
use crate::workload::{validate_workloads, Workload};
use crate::PlacementError;

/// Numerical slack for capacity comparisons, absorbing accumulated
/// floating-point error in trace sums.
const EPSILON: f64 = 1e-9;

/// Pre-aggregated load of a workload set on one server.
///
/// Aggregating once makes each candidate-capacity evaluation O(trace
/// length) regardless of how many workloads share the server.
///
/// The aggregate retains its members (cheap: traces are `Arc`-backed) in
/// canonical (name-sorted) order and keeps their slot sums in a
/// `SumTree` — a treap whose shape, and therefore whose floating-point
/// association, is a pure function of the member *set*. That makes
/// [`AggregateLoad::add`] / [`AggregateLoad::remove`] bit-identical to a
/// cold [`AggregateLoad::of`] over the same set while recomputing only
/// the O(log n) partial sums on the touched root path, instead of the
/// full O(n) re-sum the previous flat representation needed. Nothing is
/// ever subtracted, so there is no incremental drift to reconcile — the
/// periodic rebuild (every `RECONCILE_EVERY` mutations) is a structural
/// compaction, and debug builds assert bit-equality against a cold build
/// after every mutation. Duplicate member names have no canonical set
/// order; such degenerate aggregates fall back to a cold rebuild per
/// mutation.
#[derive(Debug, Clone)]
pub struct AggregateLoad {
    calendar: Calendar,
    members: Vec<Workload>,
    tree: SumTree,
    /// Materialized per-slot total (CoS1 + CoS2) allocation — the one
    /// contiguous vector every fit evaluation scans.
    totals: Vec<f64>,
    cos1_peak_sum: f64,
    memory_peak: f64,
    /// Incremental mutations since the tree was last cold-built.
    mutations: u32,
    /// Whether member names are pairwise distinct (the set-pure fast path).
    unique_names: bool,
}

/// Incremental mutations between cold tree rebuilds. The rebuild drops
/// freed tree slots and excess pooled buffers; it is *not* a numerical
/// correction (incremental sums are bit-identical by construction).
const RECONCILE_EVERY: u32 = 64;

/// Whether the (sorted) member names are pairwise distinct.
fn names_unique(members: &[Workload]) -> bool {
    members
        .iter()
        .zip(members.iter().skip(1))
        .all(|(a, b)| a.name() != b.name())
}

impl PartialEq for AggregateLoad {
    /// Structural equality on the aggregated state; the sum tree and the
    /// reconciliation bookkeeping are maintenance details and do not
    /// participate.
    fn eq(&self, other: &Self) -> bool {
        self.calendar == other.calendar
            && self.cos1_peak_sum == other.cos1_peak_sum
            && self.memory_peak == other.memory_peak
            && self.totals == other.totals
            && self.members == other.members
    }
}

impl AggregateLoad {
    /// Aggregates a set of workloads.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] if the set is empty, misaligned, or
    /// does not cover whole weeks.
    pub fn of(workloads: &[&Workload]) -> Result<Self, PlacementError> {
        Self::of_pooled(workloads, &mut SlotArena::new())
    }

    /// [`AggregateLoad::of`], drawing every slot buffer from `arena`.
    ///
    /// Paired with [`AggregateLoad::recycle`], this is the
    /// allocation-free path for the transient aggregates hot placement
    /// loops build per candidate assignment: after warm-up, construction
    /// reuses the buffers the previous candidate returned.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] if the set is empty, misaligned, or
    /// does not cover whole weeks.
    pub fn of_pooled(
        workloads: &[&Workload],
        arena: &mut SlotArena,
    ) -> Result<Self, PlacementError> {
        validate_workloads(workloads.iter().copied())?;
        let calendar = workloads[0].cos1().calendar();
        let mut members: Vec<Workload> = workloads.iter().map(|w| (*w).clone()).collect();
        members.sort_by(|a, b| a.name().cmp(b.name()));
        let unique_names = names_unique(&members);
        let mut tree = SumTree::build(&members, arena);
        let totals = tree.take_buf();
        let mut load = AggregateLoad {
            calendar,
            members,
            tree,
            totals,
            cos1_peak_sum: 0.0,
            memory_peak: 0.0,
            mutations: 0,
            unique_names,
        };
        load.rematerialize();
        Ok(load)
    }

    /// Consumes the aggregate, returning its slot buffers to `arena` so
    /// the next [`AggregateLoad::of_pooled`] allocates nothing.
    pub fn recycle(self, arena: &mut SlotArena) {
        arena.give(self.totals);
        self.tree.recycle_into(arena);
    }

    /// Refreshes the materialized totals and peaks from the tree root and
    /// the canonical member list.
    fn rematerialize(&mut self) {
        self.totals.clear();
        if let Some(cos1) = self.tree.root_cos1() {
            self.totals.extend_from_slice(cos1);
        }
        if let Some(cos2) = self.tree.root_cos2() {
            kernels::add_assign(&mut self.totals, cos2);
        }
        // Memory is not time-shareable, so only its aggregate peak matters.
        self.memory_peak = self
            .tree
            .root_memory()
            .map_or(0.0, |m| m.iter().copied().fold(0.0, f64::max));
        self.cos1_peak_sum = self.members.iter().map(Workload::cos1_peak).sum();
    }

    /// Cold-rebuilds the tree from the canonical member list, recycling
    /// the old tree's buffers, and resets the reconciliation counter.
    fn rebuild_tree(&mut self) {
        let mut arena = SlotArena::new();
        let old = std::mem::replace(&mut self.tree, SumTree::empty());
        old.recycle_into(&mut arena);
        self.tree = SumTree::build(&self.members, &mut arena);
        self.unique_names = names_unique(&self.members);
        self.mutations = 0;
    }

    /// Counts one incremental mutation, compacting the tree periodically.
    fn note_mutation(&mut self) {
        self.mutations += 1;
        if self.mutations >= RECONCILE_EVERY {
            self.rebuild_tree();
        }
    }

    /// Debug-build reconciliation: the incrementally maintained state
    /// must be bit-identical to a cold build of the current member set.
    #[cfg(debug_assertions)]
    fn debug_reconcile(&self) {
        let refs: Vec<&Workload> = self.members.iter().collect();
        // lint:allow(panic-expect): debug-build-only check; the members
        // were validated as aligned when they were admitted.
        let cold = AggregateLoad::of(&refs).expect("members were validated on admission");
        assert_eq!(self.totals.len(), cold.totals.len());
        for (a, b) in self.totals.iter().zip(&cold.totals) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "incremental aggregate diverged from a cold rebuild"
            );
        }
        assert_eq!(self.cos1_peak_sum.to_bits(), cold.cos1_peak_sum.to_bits());
        assert_eq!(self.memory_peak.to_bits(), cold.memory_peak.to_bits());
    }

    #[cfg(not(debug_assertions))]
    fn debug_reconcile(&self) {}

    /// Adds one workload to the aggregate.
    ///
    /// The member joins at its canonical (name-sorted) position and the
    /// sum tree recomputes the partial sums on its root path, so the
    /// result is bit-identical to a cold [`AggregateLoad::of`] over the
    /// enlarged set at O(slots · log n) cost.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::MisalignedWorkloads`] when the workload's
    /// calendar or length differs from the existing members'.
    pub fn add(&mut self, workload: &Workload) -> Result<(), PlacementError> {
        let aligned = workload.len() == self.len() && workload.cos1().calendar() == self.calendar;
        if !aligned {
            return Err(PlacementError::MisalignedWorkloads {
                name: workload.name().to_string(),
            });
        }
        let at = self
            .members
            .partition_point(|m| m.name() <= workload.name());
        // The insertion point sits after any members of the same name, so
        // a duplicate (if present) is exactly the predecessor.
        let duplicate = self
            .members
            .get(at.wrapping_sub(1))
            .is_some_and(|m| m.name() == workload.name());
        self.members.insert(at, workload.clone());
        if self.unique_names && !duplicate {
            self.tree.insert(workload.clone());
            self.note_mutation();
        } else {
            self.rebuild_tree();
        }
        self.rematerialize();
        self.debug_reconcile();
        Ok(())
    }

    /// Removes the named workload from the aggregate.
    ///
    /// The sum tree recomputes the partial sums on the removed member's
    /// root path, so the result is bit-identical to a cold
    /// [`AggregateLoad::of`] over the reduced set — removing and
    /// re-adding a member round-trips exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NoWorkloads`] when the named workload
    /// either is not a member or is the last one (an empty aggregate is
    /// not representable; drop the aggregate instead).
    pub fn remove(&mut self, name: &str) -> Result<Workload, PlacementError> {
        let at = self
            .members
            .iter()
            .position(|m| m.name() == name)
            .filter(|_| self.members.len() > 1)
            .ok_or(PlacementError::NoWorkloads)?;
        let removed = self.members.remove(at);
        if self.unique_names {
            if self.tree.remove(name).is_some() {
                self.note_mutation();
            } else {
                // Unreachable while the flag is accurate; rebuild to stay
                // safe rather than serve stale sums.
                self.rebuild_tree();
            }
        } else {
            self.rebuild_tree();
        }
        self.rematerialize();
        self.debug_reconcile();
        Ok(removed)
    }

    /// The member workloads, in canonical (name-sorted) order.
    pub fn members(&self) -> &[Workload] {
        &self.members
    }

    /// Peak of the aggregate memory footprint (GB); 0 when no workload
    /// carries a memory trace.
    pub fn memory_peak(&self) -> f64 {
        self.memory_peak
    }

    /// The calendar shared by the aggregated traces.
    pub fn calendar(&self) -> Calendar {
        self.calendar
    }

    /// Sum of per-workload peak CoS1 allocations (the guarantee constraint).
    pub fn cos1_peak_sum(&self) -> f64 {
        self.cos1_peak_sum
    }

    /// Number of aggregated slots.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether there are no slots (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Total aggregate allocation at a slot.
    fn total(&self, index: usize) -> f64 {
        // lint:allow(panic-slice-index): the materialized totals cover
        // exactly `0..len()` and callers iterate that range.
        self.totals[index]
    }

    /// The materialized per-slot total allocation trace.
    pub(crate) fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Peak of the total aggregate allocation trace.
    pub fn total_peak(&self) -> f64 {
        self.totals.iter().copied().fold(0.0, f64::max)
    }
}

/// Why a workload set does not fit at a candidate capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FitViolation {
    /// The sum of peak CoS1 allocations exceeds the capacity.
    Cos1Overflow,
    /// The aggregate memory footprint exceeds the server's memory.
    MemoryOverflow,
    /// The measured access probability fell short of the commitment.
    ThetaShortfall,
    /// Carried-over demand was not served within the deadline.
    DeadlineMissed,
}

/// Outcome of evaluating one workload set at one candidate capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Whether all commitments are satisfied.
    pub fits: bool,
    /// The first violated constraint, when `fits` is false.
    pub violation: Option<FitViolation>,
    /// Sum of per-workload peak CoS1 allocations.
    pub cos1_peak_sum: f64,
    /// The measured access probability (1.0 when demand never exceeds
    /// capacity).
    pub measured_theta: f64,
    /// Whether every carried-over demand met the deadline.
    pub deadline_met: bool,
}

/// Measures the resource access probability `θ` at capacity `capacity`:
/// the minimum over weeks and slots-of-day of
/// `Σ_days min(A, L) / Σ_days A` (the paper's §IV definition).
///
/// Slots with no demand in any day count as fully satisfied.
pub fn access_probability(load: &AggregateLoad, capacity: f64) -> f64 {
    let per_day = load.calendar.slots_per_day();
    let per_week = load.calendar.slots_per_week();
    let weeks = load.len() / per_week;
    let mut theta: f64 = 1.0;
    for w in 0..weeks {
        for t in 0..per_day {
            let mut satisfied = 0.0;
            let mut requested = 0.0;
            for day in 0..7 {
                let idx = w * per_week + day * per_day + t;
                let a = load.total(idx);
                satisfied += a.min(capacity);
                requested += a;
            }
            if requested > 0.0 {
                theta = theta.min(satisfied / requested);
            }
        }
    }
    theta
}

/// Checks that every unit of demand unsatisfied on request is served
/// within `deadline_slots` slots, using surplus capacity in later slots
/// (oldest shortfall first).
pub fn deadline_satisfied(load: &AggregateLoad, capacity: f64, deadline_slots: usize) -> bool {
    let mut backlog: VecDeque<(usize, f64)> = VecDeque::new();
    for (slot, &total) in load.totals().iter().enumerate() {
        if total > capacity {
            backlog.push_back((slot, total - capacity));
        } else {
            let mut surplus = capacity - total;
            while surplus > EPSILON {
                let Some(front) = backlog.front_mut() else {
                    break;
                };
                let served = front.1.min(surplus);
                front.1 -= served;
                surplus -= served;
                if front.1 <= EPSILON {
                    backlog.pop_front();
                }
            }
        }
        if let Some(&(arrival, _)) = backlog.front() {
            if slot >= arrival + deadline_slots {
                return false;
            }
        }
    }
    backlog.is_empty()
}

/// Options of a fit evaluation: the optional memory attribute and the
/// binary-search tolerance.
///
/// This is the options half of the [`FitRequest`]/[`FitOptions`] API that
/// replaces the former `evaluate_fit`/`evaluate_fit_with_memory` and
/// `required_capacity`/`required_capacity_with_memory` function pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Memory limit in GB; `None` means the attribute is unconstrained.
    memory_capacity: Option<f64>,
    /// Capacity tolerance of the required-capacity binary search.
    tolerance: f64,
}

impl FitOptions {
    /// Default options: unlimited memory, tolerance 0.05 capacity units
    /// (the thorough search setting).
    pub fn new() -> Self {
        FitOptions {
            memory_capacity: None,
            tolerance: 0.05,
        }
    }

    /// Constrains the memory attribute to `capacity` GB. Memory is a
    /// guaranteed, non-statistical attribute: the aggregate footprint must
    /// stay within the limit at every slot (checked via the aggregate
    /// peak).
    pub fn with_memory_capacity(mut self, capacity: f64) -> Self {
        self.memory_capacity = Some(capacity);
        self
    }

    /// Sets the binary-search tolerance, in capacity units.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The memory limit in force (`f64::INFINITY` when unconstrained).
    pub fn memory_capacity(&self) -> f64 {
        self.memory_capacity.unwrap_or(f64::INFINITY)
    }

    /// The binary-search tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl Default for FitOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// A fit question about one aggregated load under one set of pool
/// commitments: evaluate a candidate capacity, or binary-search the
/// smallest sufficient one.
#[derive(Debug, Clone, Copy)]
pub struct FitRequest<'a> {
    load: &'a AggregateLoad,
    commitments: &'a PoolCommitments,
    options: FitOptions,
}

impl<'a> FitRequest<'a> {
    /// Creates a request with default [`FitOptions`].
    pub fn new(load: &'a AggregateLoad, commitments: &'a PoolCommitments) -> Self {
        FitRequest {
            load,
            commitments,
            options: FitOptions::new(),
        }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: FitOptions) -> Self {
        self.options = options;
        self
    }

    /// Evaluates the fit constraints at a candidate CPU capacity.
    ///
    /// CPU keeps the paper's three constraints (CoS1 guarantee, access
    /// probability `θ`, carry-over deadline); memory, when constrained by
    /// the options, is a pass/fail attribute checked first.
    pub fn evaluate(&self, capacity: f64) -> FitReport {
        let load = self.load;
        let cos1_peak_sum = load.cos1_peak_sum();
        if load.memory_peak() > self.options.memory_capacity() + EPSILON {
            return FitReport {
                fits: false,
                violation: Some(FitViolation::MemoryOverflow),
                cos1_peak_sum,
                measured_theta: 0.0,
                deadline_met: false,
            };
        }
        if cos1_peak_sum > capacity + EPSILON {
            return FitReport {
                fits: false,
                violation: Some(FitViolation::Cos1Overflow),
                cos1_peak_sum,
                measured_theta: 0.0,
                deadline_met: false,
            };
        }
        let measured_theta = access_probability(load, capacity);
        let deadline_slots = load
            .calendar()
            .slots_in_minutes(self.commitments.cos2.deadline_minutes());
        let deadline_met = deadline_satisfied(load, capacity, deadline_slots);
        let theta_ok = measured_theta + EPSILON >= self.commitments.cos2.theta();
        let violation = if !theta_ok {
            Some(FitViolation::ThetaShortfall)
        } else if !deadline_met {
            Some(FitViolation::DeadlineMissed)
        } else {
            None
        };
        FitReport {
            fits: violation.is_none(),
            violation,
            cos1_peak_sum,
            measured_theta,
            deadline_met,
        }
    }

    /// Binary-searches the smallest capacity in `[0, limit]` that
    /// satisfies the commitments, to within the options' tolerance.
    ///
    /// Returns `None` when the workloads do not fit even at `limit` — the
    /// "commitments cannot be satisfied" outcome of Fig. 4.
    ///
    /// All three constraints are monotone in capacity, which is what makes
    /// the binary search sound.
    ///
    /// # Panics
    ///
    /// Panics if the options' tolerance is not positive or `limit` is not
    /// positive.
    pub fn required_capacity(&self, limit: f64) -> Option<f64> {
        let tolerance = self.options.tolerance();
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(limit > 0.0, "capacity limit must be positive");
        if !self.evaluate(limit).fits {
            return None;
        }
        let mut hi = limit;
        let mut lo = 0.0f64;
        if self.evaluate(lo.max(EPSILON)).fits {
            return Some(0.0);
        }
        while hi - lo > tolerance {
            let mid = 0.5 * (hi + lo);
            if self.evaluate(mid).fits {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;
    use ropus_trace::Trace;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn week() -> usize {
        cal().slots_per_week()
    }

    fn commitments(theta: f64) -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(theta, 60).unwrap())
    }

    fn fit(load: &AggregateLoad, capacity: f64, commitments: &PoolCommitments) -> FitReport {
        FitRequest::new(load, commitments).evaluate(capacity)
    }

    fn required(
        load: &AggregateLoad,
        commitments: &PoolCommitments,
        limit: f64,
        tolerance: f64,
    ) -> Option<f64> {
        FitRequest::new(load, commitments)
            .with_options(FitOptions::new().with_tolerance(tolerance))
            .required_capacity(limit)
    }

    fn fit_mem(
        load: &AggregateLoad,
        capacity: f64,
        memory: f64,
        commitments: &PoolCommitments,
    ) -> FitReport {
        FitRequest::new(load, commitments)
            .with_options(FitOptions::new().with_memory_capacity(memory))
            .evaluate(capacity)
    }

    fn required_mem(
        load: &AggregateLoad,
        commitments: &PoolCommitments,
        limit: f64,
        memory: f64,
        tolerance: f64,
    ) -> Option<f64> {
        FitRequest::new(load, commitments)
            .with_options(
                FitOptions::new()
                    .with_memory_capacity(memory)
                    .with_tolerance(tolerance),
            )
            .required_capacity(limit)
    }

    fn constant_workload(name: &str, c1: f64, c2: f64) -> Workload {
        Workload::new(
            name,
            Trace::constant(cal(), c1, week()).unwrap(),
            Trace::constant(cal(), c2, week()).unwrap(),
        )
        .unwrap()
    }

    /// A workload whose CoS2 trace spikes to `spike` for `spike_len` slots
    /// at the start of each day, and is `base` otherwise.
    fn spiky_workload(name: &str, base: f64, spike: f64, spike_len: usize) -> Workload {
        let per_day = cal().slots_per_day();
        let samples: Vec<f64> = (0..week())
            .map(|i| if i % per_day < spike_len { spike } else { base })
            .collect();
        Workload::new(
            name,
            Trace::constant(cal(), 0.0, week()).unwrap(),
            Trace::from_samples(cal(), samples).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn aggregate_sums_and_peaks() {
        let a = constant_workload("a", 1.0, 2.0);
        let b = constant_workload("b", 0.5, 1.0);
        let load = AggregateLoad::of(&[&a, &b]).unwrap();
        assert_eq!(load.cos1_peak_sum(), 1.5);
        assert_eq!(load.total_peak(), 4.5);
        assert_eq!(load.len(), week());
    }

    #[test]
    fn cos1_overflow_is_detected() {
        let a = constant_workload("a", 10.0, 0.0);
        let b = constant_workload("b", 8.0, 0.0);
        let load = AggregateLoad::of(&[&a, &b]).unwrap();
        let report = fit(&load, 16.0, &commitments(0.9));
        assert!(!report.fits);
        assert_eq!(report.violation, Some(FitViolation::Cos1Overflow));
    }

    #[test]
    fn theta_is_one_when_capacity_covers_demand() {
        let a = constant_workload("a", 2.0, 3.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        assert_eq!(access_probability(&load, 5.0), 1.0);
        assert_eq!(access_probability(&load, 100.0), 1.0);
        let report = fit(&load, 5.0, &commitments(1.0));
        assert!(report.fits);
    }

    #[test]
    fn theta_measures_overflow_fraction() {
        // Demand 10 every slot; capacity 8: every slot satisfies 0.8.
        let a = constant_workload("a", 0.0, 10.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let theta = access_probability(&load, 8.0);
        assert!((theta - 0.8).abs() < 1e-12);
    }

    #[test]
    fn theta_is_min_over_slots() {
        // One hour per day of demand 10, the rest 1; capacity 5 satisfies
        // the quiet slots fully, the busy slot at 0.5.
        let a = spiky_workload("a", 1.0, 10.0, 12);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let theta = access_probability(&load, 5.0);
        assert!((theta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_requires_backlog_to_drain() {
        // Spike of 2 slots at 10, then base 1: capacity 6 leaves a backlog
        // of 8 that drains at 5/slot -> cleared within 2 slots of arrival.
        let a = spiky_workload("a", 1.0, 10.0, 2);
        let load = AggregateLoad::of(&[&a]).unwrap();
        assert!(deadline_satisfied(&load, 6.0, 3));
        // With deadline 1 slot, the backlog from slot 0 (4 units) cannot be
        // fully served by slot 1 (slot 1 is also overloaded).
        assert!(!deadline_satisfied(&load, 6.0, 1));
    }

    #[test]
    fn deadline_never_met_when_average_demand_exceeds_capacity() {
        let a = constant_workload("a", 0.0, 10.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        assert!(!deadline_satisfied(&load, 8.0, 12));
    }

    #[test]
    fn evaluate_fit_orders_violations() {
        let a = spiky_workload("a", 1.0, 30.0, 24);
        let load = AggregateLoad::of(&[&a]).unwrap();
        // Capacity 2: theta for the busy slots = tiny -> theta violation.
        let report = fit(&load, 2.0, &commitments(0.9));
        assert_eq!(report.violation, Some(FitViolation::ThetaShortfall));
        assert!(report.measured_theta < 0.9);
    }

    #[test]
    fn deadline_violation_reported_when_theta_passes() {
        // 2-hour spike at 10 once per day, base 4, capacity 8: busy-slot
        // theta = 0.8, so commit theta = 0.75 passes, but the backlog of
        // 2/slot x 24 slots = 48 drains at 4/slot, needing 12 h >> 60 min.
        let a = spiky_workload("a", 4.0, 10.0, 24);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let report = fit(&load, 8.0, &commitments(0.75));
        assert!(report.measured_theta >= 0.75);
        assert_eq!(report.violation, Some(FitViolation::DeadlineMissed));
    }

    #[test]
    fn required_capacity_matches_known_answer() {
        // Constant total demand 5.0 with theta = 1.0 commitment: required
        // capacity is 5.0 (to tolerance).
        let a = constant_workload("a", 2.0, 3.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let req = required(&load, &commitments(1.0), 16.0, 0.01).unwrap();
        assert!((req - 5.0).abs() < 0.02, "required {req}");
    }

    #[test]
    fn required_capacity_with_statistical_theta_is_below_peak() {
        // 1 hour per day at 10, rest at 1, theta = 0.6: the busy slot only
        // needs 0.6 coverage, so required capacity sits near 6.
        let a = spiky_workload("a", 1.0, 10.0, 12);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let req = required(&load, &commitments(0.6), 16.0, 0.01).unwrap();
        assert!(req < 10.0, "required {req}");
        assert!(req >= 6.0 - 0.02, "required {req}");
        // And the result actually fits while tolerance below does not.
        assert!(fit(&load, req, &commitments(0.6)).fits);
        assert!(!fit(&load, req - 0.05, &commitments(0.6)).fits);
    }

    #[test]
    fn required_capacity_is_none_when_infeasible() {
        let a = constant_workload("a", 20.0, 0.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        assert_eq!(required(&load, &commitments(0.9), 16.0, 0.01), None);
    }

    #[test]
    fn required_capacity_zero_demand() {
        let a = constant_workload("a", 0.0, 0.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let req = required(&load, &commitments(0.9), 16.0, 0.01).unwrap();
        assert_eq!(req, 0.0);
    }

    #[test]
    fn higher_theta_commitment_needs_more_capacity() {
        let a = spiky_workload("a", 1.0, 10.0, 12);
        let load = AggregateLoad::of(&[&a]).unwrap();
        let lo = required(&load, &commitments(0.6), 16.0, 0.01).unwrap();
        let hi = required(&load, &commitments(0.95), 16.0, 0.01).unwrap();
        assert!(hi > lo, "hi {hi} lo {lo}");
    }

    #[test]
    fn memory_overflow_is_detected_before_cpu() {
        let a = constant_workload("a", 1.0, 1.0);
        let mem = Trace::constant(cal(), 48.0, week()).unwrap();
        let a = a.with_memory(mem).unwrap();
        let b = constant_workload("b", 1.0, 1.0)
            .with_memory(Trace::constant(cal(), 24.0, week()).unwrap())
            .unwrap();
        let load = AggregateLoad::of(&[&a, &b]).unwrap();
        assert_eq!(load.memory_peak(), 72.0);
        // CPU easily fits, memory (72 > 64) does not.
        let report = fit_mem(&load, 16.0, 64.0, &commitments(0.9));
        assert!(!report.fits);
        assert_eq!(report.violation, Some(FitViolation::MemoryOverflow));
        // With enough memory the same set fits.
        let report = fit_mem(&load, 16.0, 128.0, &commitments(0.9));
        assert!(report.fits);
        // The single-attribute entry point ignores memory entirely.
        assert!(fit(&load, 16.0, &commitments(0.9)).fits);
    }

    #[test]
    fn workloads_without_memory_have_zero_footprint() {
        let a = constant_workload("a", 1.0, 1.0);
        let load = AggregateLoad::of(&[&a]).unwrap();
        assert_eq!(load.memory_peak(), 0.0);
        assert!(fit_mem(&load, 16.0, 0.5, &commitments(0.9)).fits);
    }

    #[test]
    fn required_capacity_with_memory_gates_on_the_memory_attribute() {
        let a = constant_workload("a", 1.0, 2.0)
            .with_memory(Trace::constant(cal(), 40.0, week()).unwrap())
            .unwrap();
        let load = AggregateLoad::of(&[&a]).unwrap();
        assert_eq!(
            required_mem(&load, &commitments(1.0), 16.0, 32.0, 0.05),
            None
        );
        let req = required_mem(&load, &commitments(1.0), 16.0, 64.0, 0.05)
            .expect("fits with enough memory");
        // Memory does not change the CPU requirement.
        assert!((req - 3.0).abs() < 0.1, "required {req}");
    }

    #[test]
    fn aggregate_is_canonical_in_member_order() {
        let a = spiky_workload("a", 0.3, 7.1, 5);
        let b = spiky_workload("b", 1.7, 3.3, 9);
        let c = spiky_workload("c", 0.9, 2.2, 3);
        let fwd = AggregateLoad::of(&[&a, &b, &c]).unwrap();
        let rev = AggregateLoad::of(&[&c, &a, &b]).unwrap();
        assert_eq!(fwd, rev);
        let names: Vec<&str> = fwd.members().iter().map(Workload::name).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn remove_then_readd_round_trips_bit_identically() {
        let a = spiky_workload("a", 0.3, 7.1, 5);
        let b = spiky_workload("b", 1.7, 3.3, 9);
        let c = spiky_workload("c", 0.9, 2.2, 3);
        let cold = AggregateLoad::of(&[&a, &b, &c]).unwrap();
        let mut load = cold.clone();
        let removed = load.remove("b").unwrap();
        assert_eq!(removed.name(), "b");
        assert_eq!(load, AggregateLoad::of(&[&a, &c]).unwrap());
        load.add(&removed).unwrap();
        assert_eq!(load, cold);
        // Bitwise, not just PartialEq: the slot sums carry no residue.
        for i in 0..load.len() {
            assert_eq!(load.total(i).to_bits(), cold.total(i).to_bits());
        }
        assert_eq!(
            load.cos1_peak_sum().to_bits(),
            cold.cos1_peak_sum().to_bits()
        );
    }

    #[test]
    fn incremental_add_matches_cold_build() {
        let a = spiky_workload("a", 0.3, 7.1, 5);
        let b = spiky_workload("b", 1.7, 3.3, 9);
        let mut load = AggregateLoad::of(&[&b]).unwrap();
        load.add(&a).unwrap();
        assert_eq!(load, AggregateLoad::of(&[&a, &b]).unwrap());
    }

    #[test]
    fn add_rejects_misaligned_remove_rejects_unknown_and_last() {
        let a = constant_workload("a", 1.0, 1.0);
        let mut load = AggregateLoad::of(&[&a]).unwrap();
        let short = Workload::new(
            "s",
            Trace::constant(cal(), 1.0, week() * 2).unwrap(),
            Trace::constant(cal(), 1.0, week() * 2).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            load.add(&short),
            Err(PlacementError::MisalignedWorkloads { .. })
        ));
        assert!(load.remove("nope").is_err());
        // Removing the last member is rejected: drop the aggregate instead.
        assert!(load.remove("a").is_err());
        assert_eq!(load.members().len(), 1);
    }

    #[test]
    fn long_mutation_history_stays_bit_exact() {
        // 200 admit/depart/readmit mutations over a 12-workload pool,
        // crossing the periodic-compaction boundary several times; the
        // final state must be bit-identical to a cold build of the set.
        let pool: Vec<Workload> = (0..12)
            .map(|i| {
                spiky_workload(
                    &format!("w{i:02}"),
                    0.2 + i as f64 * 0.13,
                    3.0 + i as f64 * 0.7,
                    3 + i % 7,
                )
            })
            .collect();
        let mut load = AggregateLoad::of(&[&pool[0], &pool[1], &pool[2]]).unwrap();
        for step in 0..200 {
            let w = &pool[step % pool.len()];
            let is_member = load.members().iter().any(|m| m.name() == w.name());
            if is_member && load.members().len() > 1 {
                load.remove(w.name()).unwrap();
            } else if !is_member {
                load.add(w).unwrap();
            }
        }
        let refs: Vec<&Workload> = load.members().iter().collect();
        let names: Vec<String> = refs.iter().map(|w| w.name().to_string()).collect();
        let cold_members: Vec<&Workload> = pool
            .iter()
            .filter(|w| names.contains(&w.name().to_string()))
            .collect();
        let cold = AggregateLoad::of(&cold_members).unwrap();
        assert_eq!(load, cold);
        for i in 0..load.len() {
            assert_eq!(load.total(i).to_bits(), cold.total(i).to_bits());
        }
        assert_eq!(
            load.cos1_peak_sum().to_bits(),
            cold.cos1_peak_sum().to_bits()
        );
    }

    #[test]
    fn duplicate_names_fall_back_to_cold_rebuilds() {
        // Duplicate names have no canonical set order; the aggregate must
        // still mutate correctly via its cold-rebuild fallback.
        let a1 = spiky_workload("dup", 0.5, 2.0, 4);
        let a2 = spiky_workload("dup", 1.0, 3.0, 6);
        let b = spiky_workload("z", 0.2, 1.0, 2);
        let mut load = AggregateLoad::of(&[&a1, &a2]).unwrap();
        load.add(&b).unwrap();
        assert_eq!(load.members().len(), 3);
        let removed = load.remove("dup").unwrap();
        assert_eq!(removed.name(), "dup");
        assert_eq!(load.members().len(), 2);
        assert!(load.total_peak() > 0.0);
    }

    #[test]
    fn pooled_aggregates_recycle_their_buffers() {
        let a = spiky_workload("a", 0.3, 7.1, 5);
        let b = spiky_workload("b", 1.7, 3.3, 9);
        let mut arena = SlotArena::new();
        let pooled = AggregateLoad::of_pooled(&[&a, &b], &mut arena).unwrap();
        assert_eq!(pooled, AggregateLoad::of(&[&a, &b]).unwrap());
        pooled.recycle(&mut arena);
        let before = arena.pooled();
        assert!(before > 0);
        // A second pooled build reuses the returned buffers.
        let again = AggregateLoad::of_pooled(&[&a, &b], &mut arena).unwrap();
        again.recycle(&mut arena);
        assert_eq!(arena.pooled(), before);
    }

    #[test]
    fn aggregate_rejects_empty_set() {
        assert!(matches!(
            AggregateLoad::of(&[]),
            Err(PlacementError::NoWorkloads)
        ));
    }
}
