//! The unified, thread-safe fit-evaluation engine.
//!
//! [`FitEngine`] is the one entry point for per-server fit evaluations: it
//! owns the workload set, the server type, the pool commitments, and the
//! binary-search tolerance, and memoizes required-capacity results behind
//! a cache keyed by the *sorted set of workload indices* assigned to a
//! server. GA populations revisit the same server compositions constantly
//! across generations and restarts, so the cache converts the dominant
//! cost of consolidation into hash lookups.
//!
//! The engine is `Sync`: the cache is a [`Mutex`]ed map and the hit/miss
//! counters are atomics, so whole populations can be scored concurrently
//! on a scoped worker pool ([`FitEngine::score_assignments`]) with no
//! `unsafe` and no new dependency. Parallel scoring is *bit-identical* to
//! the serial path: each evaluation is a pure function of the member set,
//! so neither thread interleaving nor cache state can change a result —
//! only the [`EngineStats`] counters are timing-dependent.

// lint:allow(det-unordered-collection): the memo cache is lookup-only —
// it is never iterated, so hash order cannot reach any result.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ropus_qos::PoolCommitments;

use crate::score::{assignment_feasible, assignment_score_with, ScoreModel, ServerOutcome};
use crate::server::ServerSpec;
use crate::simulator::{AggregateLoad, FitOptions, FitRequest};
use crate::sumtree::SlotArena;
use crate::workload::Workload;

/// Reusable per-worker scratch for the engine's hot loops: a pool of
/// slot buffers for the transient aggregates each candidate evaluation
/// builds, plus the key and bucket vectors every evaluation needs.
///
/// The GA and consolidation score thousands of candidate assignments;
/// handing each scoring worker one `FitScratch` (see
/// [`parallel_map_init`]) makes the inner loop allocation-free after
/// warm-up. Scratch state never influences results — it only recycles
/// storage — so scoring stays bit-identical across thread counts.
#[derive(Debug, Default)]
pub struct FitScratch {
    arena: SlotArena,
    key: Vec<u16>,
    buckets: Vec<Vec<u16>>,
}

impl FitScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        FitScratch::default()
    }
}

/// Runtime statistics of a [`FitEngine`] (and, when attached to a search
/// outcome, of the search that drove it).
///
/// The counters are timing-dependent under parallel scoring — two workers
/// racing on the same uncached member set each count a miss — so reports
/// deliberately exclude this struct from equality comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Total memoized fit lookups (cache hits + misses).
    pub evaluations: u64,
    /// Lookups answered from the cache.
    pub cache_hits: u64,
    /// Lookups that ran the trace-replay binary search.
    pub cache_misses: u64,
    /// Worker threads the engine was configured with.
    pub threads: usize,
    /// Generations run by the search that produced this snapshot
    /// (0 for a bare engine snapshot).
    pub generations: usize,
    /// Wall-clock time of the search, in milliseconds.
    pub total_wall_ms: f64,
    /// `total_wall_ms / generations` (0 when no generations ran).
    pub mean_generation_wall_ms: f64,
}

impl EngineStats {
    /// Fraction of lookups answered from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        if self.evaluations == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.evaluations as f64
    }
}

/// Memoizing, optionally parallel per-server fit engine shared by the GA,
/// the greedy baselines, and the consolidation reports.
///
/// Construct with [`FitEngine::new`], then tune with the consuming
/// builders [`with_threads`](Self::with_threads),
/// [`with_cache_capacity`](Self::with_cache_capacity), and
/// [`with_score_model`](Self::with_score_model).
#[derive(Debug)]
pub struct FitEngine<'a> {
    workloads: &'a [Workload],
    server: ServerSpec,
    commitments: PoolCommitments,
    tolerance: f64,
    score_model: ScoreModel,
    threads: usize,
    /// Maximum cached entries; 0 means unbounded. When full, new results
    /// are computed but not inserted (the cache is never invalidated).
    cache_capacity: usize,
    // lint:allow(det-unordered-collection): lookup-only cache, never
    // iterated; results are pure functions of the (sorted) key.
    cache: Mutex<HashMap<Vec<u16>, Option<f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> FitEngine<'a> {
    /// Creates an engine over a fixed workload set and server type.
    ///
    /// Defaults: serial evaluation (one thread), unbounded cache, the
    /// paper's `f(U) = U^(2Z)` score model.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` workloads are supplied or the
    /// tolerance is not positive.
    pub fn new(
        workloads: &'a [Workload],
        server: ServerSpec,
        commitments: PoolCommitments,
        tolerance: f64,
    ) -> Self {
        assert!(workloads.len() <= u16::MAX as usize, "too many workloads");
        assert!(tolerance > 0.0, "tolerance must be positive");
        FitEngine {
            workloads,
            server,
            commitments,
            tolerance,
            score_model: ScoreModel::PowerTwoZ,
            threads: 1,
            cache_capacity: 0,
            // lint:allow(det-unordered-collection): see the field note —
            // the cache is never iterated.
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Replaces the utilization-value model (default: the paper's
    /// `f(U) = U^(2Z)`); used by the score-function ablation.
    pub fn with_score_model(mut self, model: ScoreModel) -> Self {
        self.score_model = model;
        self
    }

    /// Sets the worker-thread count for population scoring and batched
    /// binary searches; values below 1 are clamped to 1 (serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bounds the memo cache to `capacity` entries; 0 (the default) means
    /// unbounded. A full cache computes without inserting — entries are
    /// never evicted or invalidated.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// The utilization-value model in force.
    pub fn score_model(&self) -> ScoreModel {
        self.score_model
    }

    /// The workloads under evaluation.
    pub fn workloads(&self) -> &'a [Workload] {
        self.workloads
    }

    /// The server type.
    pub fn server(&self) -> ServerSpec {
        self.server
    }

    /// The pool commitments.
    pub fn commitments(&self) -> PoolCommitments {
        self.commitments
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of *uncached* fit evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.misses.load(Ordering::Relaxed) as usize
    }

    /// A snapshot of the engine's counters. Search-level fields
    /// (`generations`, wall times) are zero; the search that drives the
    /// engine fills them in its outcome.
    pub fn stats(&self) -> EngineStats {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        EngineStats {
            evaluations: hits.saturating_add(misses),
            cache_hits: hits,
            cache_misses: misses,
            threads: self.threads,
            generations: 0,
            total_wall_ms: 0.0,
            mean_generation_wall_ms: 0.0,
        }
    }

    /// Required capacity for a set of workload indices on one server, or
    /// `None` when they do not fit at the server's limit. Results are
    /// memoized by the (sorted) member set — sound because the workloads'
    /// sample buffers are immutable after construction (DESIGN.md §5c),
    /// so a member set identifies its traces for the engine's lifetime.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn server_required(&self, members: &[u16]) -> Option<f64> {
        self.server_required_scratch(members, &mut FitScratch::new())
    }

    /// [`server_required`](Self::server_required) with caller-provided
    /// scratch: cache misses build their transient aggregate from the
    /// scratch arena's pooled buffers and recycle it afterwards, so a
    /// loop holding one scratch evaluates allocation-free after warm-up.
    pub fn server_required_scratch(
        &self,
        members: &[u16],
        scratch: &mut FitScratch,
    ) -> Option<f64> {
        scratch.key.clear();
        scratch.key.extend_from_slice(members);
        scratch.key.sort_unstable();
        if let Some(hit) = self
            .cache
            .lock()
            // lint:allow(panic-expect): a poisoned mutex means a scoring
            // worker already panicked; propagating is the only sound move.
            .expect("fit cache poisoned")
            .get(&scratch.key)
        {
            saturating_inc(&self.hits);
            return *hit;
        }
        saturating_inc(&self.misses);
        let refs: Vec<&Workload> = scratch
            .key
            .iter()
            // lint:allow(panic-slice-index): out-of-range member indices
            // are a caller bug, not a recoverable state.
            .map(|&i| &self.workloads[i as usize])
            .collect();
        let load = AggregateLoad::of_pooled(&refs, &mut scratch.arena)
            // lint:allow(panic-expect): member traces were validated
            // aligned at engine construction.
            .expect("members validated at engine construction");
        let result = FitRequest::new(&load, &self.commitments)
            .with_options(
                FitOptions::new()
                    .with_memory_capacity(self.server.memory_gb())
                    .with_tolerance(self.tolerance),
            )
            .required_capacity(self.server.capacity());
        load.recycle(&mut scratch.arena);
        // lint:allow(panic-expect): see the lock note above.
        let mut cache = self.cache.lock().expect("fit cache poisoned");
        if self.cache_capacity == 0 || cache.len() < self.cache_capacity {
            cache.insert(scratch.key.clone(), result);
        }
        result
    }

    /// Required capacities for many member sets, evaluated on the worker
    /// pool when the engine has more than one thread. Results are in input
    /// order regardless of scheduling.
    pub fn required_many(&self, sets: &[Vec<u16>]) -> Vec<Option<f64>> {
        parallel_map_init(self.threads, sets, FitScratch::new, |scratch, set| {
            self.server_required_scratch(set, scratch)
        })
    }

    /// Per-server outcomes of an assignment over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if an assignment entry is `>= servers` or the assignment
    /// length differs from the workload count.
    pub fn outcomes(&self, assignment: &[usize], servers: usize) -> Vec<ServerOutcome> {
        self.outcomes_scratch(assignment, servers, &mut FitScratch::new())
    }

    /// [`outcomes`](Self::outcomes) with caller-provided scratch; the
    /// membership buckets and transient aggregates reuse its buffers.
    pub fn outcomes_scratch(
        &self,
        assignment: &[usize],
        servers: usize,
        scratch: &mut FitScratch,
    ) -> Vec<ServerOutcome> {
        assert_eq!(
            assignment.len(),
            self.workloads.len(),
            "assignment length mismatch"
        );
        let mut members = std::mem::take(&mut scratch.buckets);
        members.iter_mut().for_each(Vec::clear);
        if members.len() < servers {
            members.resize_with(servers, Vec::new);
        }
        for (app, &srv) in assignment.iter().enumerate() {
            assert!(
                srv < servers,
                "assignment targets server {srv} outside the pool"
            );
            // lint:allow(panic-slice-index): `srv < servers` asserted
            // directly above, and `members` has at least `servers` slots.
            members[srv].push(app as u16);
        }
        let outcomes = members
            .iter()
            .take(servers)
            .map(|set| {
                if set.is_empty() {
                    return ServerOutcome::Unused;
                }
                match self.server_required_scratch(set, scratch) {
                    Some(required) => ServerOutcome::Fits {
                        required,
                        utilization: required / self.server.capacity(),
                    },
                    None => ServerOutcome::Overbooked {
                        workloads: set.len(),
                    },
                }
            })
            .collect();
        scratch.buckets = members;
        outcomes
    }

    /// Score and feasibility of an assignment.
    pub fn evaluate(&self, assignment: &[usize], servers: usize) -> (f64, bool) {
        self.evaluate_scratch(assignment, servers, &mut FitScratch::new())
    }

    /// [`evaluate`](Self::evaluate) with caller-provided scratch.
    pub fn evaluate_scratch(
        &self,
        assignment: &[usize],
        servers: usize,
        scratch: &mut FitScratch,
    ) -> (f64, bool) {
        let outcomes = self.outcomes_scratch(assignment, servers, scratch);
        (
            assignment_score_with(&outcomes, self.score_model, self.server.cpus()),
            assignment_feasible(&outcomes),
        )
    }

    /// Scores a whole population, fanning out over the worker pool when
    /// the engine has more than one thread.
    ///
    /// Each evaluation is a pure function of its member sets, so the
    /// result vector is bit-identical to scoring serially in input order —
    /// the property that keeps the parallel GA deterministic per seed.
    /// Every worker carries its own [`FitScratch`], so the population
    /// loop recycles its aggregate buffers instead of allocating.
    pub fn score_assignments(
        &self,
        assignments: &[Vec<usize>],
        servers: usize,
    ) -> Vec<(f64, bool)> {
        parallel_map_init(self.threads, assignments, FitScratch::new, |scratch, a| {
            self.evaluate_scratch(a, servers, scratch)
        })
    }
}

/// Increments an atomic counter, pinning it at `u64::MAX` instead of
/// wrapping: week-scale replays with the metrics registry always on can
/// push the hit/miss counters far enough that wrap-around would corrupt
/// every downstream rate.
fn saturating_inc(counter: &AtomicU64) {
    // lint:allow(robust-result-discard): Err here only reports that the
    // closure declined the update, i.e. the counter is already pinned at
    // u64::MAX — exactly the saturation this helper exists to provide.
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_add(1));
}

/// Maps `f` over `items` on up to `threads` scoped workers, preserving
/// input order. Serial (no threads spawned) when `threads <= 1` or there
/// are fewer than two items. Items are split into contiguous chunks and
/// joined in spawn order, so the output is identical to a serial map —
/// callers that need bit-identical results across thread counts (the
/// failure sweeps, the chaos replay) rely on exactly this property.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_init(threads, items, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker mutable state: `init` runs once per
/// worker (and once on the serial path) and `f` receives that worker's
/// state alongside each item.
///
/// The state exists for *scratch reuse only* — pooled buffers, key
/// vectors — and must not influence results; chunking and join order are
/// those of [`parallel_map`], so the output stays identical to a serial
/// map for any thread count.
pub fn parallel_map_init<T, S, R, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = threads.min(items.len());
    let chunk_size = items.len().div_ceil(workers);
    let init = &init;
    let f = &f;
    let mut results = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut state = init();
                    chunk
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            // lint:allow(panic-expect): a worker panic is already fatal;
            // re-raising it on the coordinating thread is intentional.
            results.extend(handle.join().expect("fit-engine worker panicked"));
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments(theta: f64) -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(theta, 60).unwrap())
    }

    fn constant_fleet(sizes: &[f64]) -> Vec<Workload> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                    Trace::constant(cal(), s, cal().slots_per_week()).unwrap(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn engine_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FitEngine<'_>>();
    }

    #[test]
    fn caches_by_member_set_and_counts_hits() {
        let fleet = constant_fleet(&[2.0, 3.0]);
        let engine = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let r1 = engine.server_required(&[0, 1]).unwrap();
        let r2 = engine.server_required(&[1, 0]).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(engine.evaluations(), 1, "order-insensitive cache");
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.evaluations, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_cache_still_answers_correctly() {
        let fleet = constant_fleet(&[1.0, 2.0, 3.0]);
        let engine = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05)
            .with_cache_capacity(1);
        let a = engine.server_required(&[0]);
        let b = engine.server_required(&[1]);
        let c = engine.server_required(&[2]);
        // Cache holds one entry; the others recompute but agree.
        assert_eq!(engine.server_required(&[0]), a);
        assert_eq!(engine.server_required(&[1]), b);
        assert_eq!(engine.server_required(&[2]), c);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1, "only the first entry was cached");
        assert_eq!(stats.cache_misses, 5);
    }

    #[test]
    fn parallel_scoring_matches_serial_bitwise() {
        let fleet = constant_fleet(&[2.0, 3.0, 4.0, 5.0, 1.0, 6.0]);
        let population: Vec<Vec<usize>> = (0..8)
            .map(|k| (0..fleet.len()).map(|i| (i + k) % 3).collect())
            .collect();
        let serial = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let parallel = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05)
            .with_threads(4);
        let s = serial.score_assignments(&population, 3);
        let p = parallel.score_assignments(&population, 3);
        assert_eq!(s, p);
        assert_eq!(parallel.threads(), 4);
    }

    #[test]
    fn required_many_preserves_input_order() {
        let fleet = constant_fleet(&[2.0, 3.0, 4.0]);
        let engine = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05)
            .with_threads(3);
        let sets = vec![vec![0u16], vec![1], vec![2], vec![0, 1, 2]];
        let batched = engine.required_many(&sets);
        let single: Vec<Option<f64>> = sets.iter().map(|s| engine.server_required(s)).collect();
        assert_eq!(batched, single);
    }

    #[test]
    fn counters_saturate_at_max_instead_of_wrapping() {
        let fleet = constant_fleet(&[2.0]);
        let engine = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        engine.hits.store(u64::MAX, Ordering::Relaxed);
        engine.misses.store(u64::MAX - 1, Ordering::Relaxed);
        // A miss (fresh key) then a hit (same key) land on counters that
        // are at or near the ceiling.
        let _ = engine.server_required(&[0]);
        let _ = engine.server_required(&[0]);
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, u64::MAX, "miss counter pinned");
        assert_eq!(stats.cache_hits, u64::MAX, "hit counter pinned, not 0");
        assert_eq!(stats.evaluations, u64::MAX, "sum saturates too");
        assert!((stats.hit_rate() - 1.0).abs() < 1e-12, "MAX/MAX, not 0/MAX");
    }

    #[test]
    fn scratch_paths_match_fresh_paths_bitwise() {
        let fleet = constant_fleet(&[2.0, 3.0, 4.0, 5.0]);
        let engine = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let fresh = FitEngine::new(&fleet, ServerSpec::sixteen_way(), commitments(1.0), 0.05);
        let mut scratch = FitScratch::new();
        for set in [&[0u16][..], &[0, 1], &[1, 2, 3], &[0, 1, 2, 3]] {
            assert_eq!(
                engine.server_required_scratch(set, &mut scratch),
                fresh.server_required(set)
            );
        }
        // Whole-assignment evaluation through the same reused scratch.
        let a = vec![0usize, 0, 1, 1];
        assert_eq!(
            engine.evaluate_scratch(&a, 2, &mut scratch),
            fresh.evaluate(&a, 2)
        );
        // A smaller follow-up call reuses the larger bucket list.
        let b = vec![0usize, 0, 0, 0];
        assert_eq!(
            engine.evaluate_scratch(&b, 1, &mut scratch),
            fresh.evaluate(&b, 1)
        );
    }

    #[test]
    fn parallel_map_init_matches_serial_and_reuses_state() {
        let items: Vec<usize> = (0..23).collect();
        // Count how many items each worker state saw; results must not
        // depend on that state.
        let mapped = parallel_map_init(
            4,
            &items,
            || 0usize,
            |seen, &i| {
                *seen += 1;
                i * 3
            },
        );
        assert_eq!(mapped, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        let serial = parallel_map_init(1, &items, || 0usize, |_, &i| i * 3);
        assert_eq!(mapped, serial);
    }

    #[test]
    fn parallel_map_is_order_preserving() {
        let items: Vec<usize> = (0..17).collect();
        let doubled = parallel_map(4, &items, |&i| i * 2);
        assert_eq!(doubled, (0..17).map(|i| i * 2).collect::<Vec<_>>());
        // Serial fallback paths.
        assert_eq!(parallel_map(1, &items, |&i| i + 1).len(), 17);
        assert_eq!(parallel_map(8, &[1], |&i: &i32| i), vec![1]);
        assert!(parallel_map::<i32, i32, _>(4, &[], |&i| i).is_empty());
    }
}
