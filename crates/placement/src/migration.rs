//! The migration lifecycle orchestrator: a deterministic per-move state
//! machine with storm control (DESIGN.md §5i).
//!
//! R-Opus assumes placements "may be adjusted periodically" but says
//! nothing about what a move *costs*. Production pools pay for every
//! one: a drain window on the source, capacity double-booked on the
//! destination mid-transfer, a health check before the move is trusted,
//! and — after a failure — a migration storm of simultaneous moves. This
//! module models that lifecycle explicitly:
//!
//! ```text
//! Planned ──start──▶ Draining ──▶ Transferring ──▶ Cutover ──▶ HealthCheck ──▶ Committed
//!              ▲          │drain deadline                │unhealthy slot
//!              │          ▼                              ▼
//!              └─retry── RolledBack ──retries exhausted─▶ Failed
//! ```
//!
//! * **Draining** — the source keeps serving while the destination holds
//!   a capacity reservation, so both servers temporarily carry the
//!   workload (the double-booking the replay engines account for).
//!   Drain progress is gated on the destination not being contended; a
//!   configurable deadline bounds the wait.
//! * **Transferring** — a configurable slot cost for the move itself.
//! * **Cutover** — the instant the destination starts serving; the
//!   source keeps its capacity reserved through the health check so a
//!   rollback is always capacity-safe.
//! * **HealthCheck** — the destination must serve the app within its
//!   utilization band for K consecutive slots; one unhealthy slot rolls
//!   the move back. A repair move (dead source, `from == None`) has no
//!   live source to return to, so instead of rolling back it parks at
//!   the destination — still serving — with its streak reset, until the
//!   band stabilizes or a re-plan supersedes it.
//! * **Rollback / retry** — a rolled-back move re-enters `Planned` after
//!   a deterministic exponential backoff, up to a bounded retry count,
//!   then is abandoned as `Failed`.
//!
//! The **storm controller** caps concurrent in-flight moves per server
//! and fleet-wide: eligible moves start in (priority, plan-order) order
//! — repair moves of displaced apps first, ties broken by plan sequence
//! — so a mass failure produces a paced recovery wave instead of an
//! instantaneous shuffle, deterministically.
//!
//! # Determinism
//!
//! The orchestrator is a pure function of its inputs: every loop walks
//! moves in plan order, candidate starts are sorted by the total order
//! `(priority, sequence)`, and no clocks or RNG are consulted. The
//! zero-cost [`MigrationConfig::teleport`] configuration commits every
//! move in the slot it is planned, reproducing the historical
//! "teleport" replay bit-for-bit (proptests in `tests/chaos.rs`).

use serde::{Deserialize, Serialize};

use ropus_obs::ObsCtx;

/// Cost model and storm limits of the migration lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Slots the source must drain before the transfer starts (progress
    /// is gated on the destination not being contended).
    pub drain_slots: usize,
    /// Slots the transfer itself occupies.
    pub transfer_slots: usize,
    /// Consecutive healthy slots the destination must serve before the
    /// move commits.
    pub health_slots: usize,
    /// Maximum slots a move may sit in `Draining` before it rolls back;
    /// `None` waits indefinitely.
    pub drain_deadline_slots: Option<usize>,
    /// Rollbacks a move may retry before it is abandoned as `Failed`.
    pub max_retries: usize,
    /// Base backoff after a rollback; retry r waits `backoff_slots *
    /// 2^(r-1)` slots (clamped to at least one slot).
    pub backoff_slots: usize,
    /// Fleet-wide cap on concurrent in-flight moves; `None` = unbounded.
    pub max_in_flight: Option<usize>,
    /// Per-server cap on concurrent moves a server participates in (as
    /// source or destination); `None` = unbounded.
    pub max_in_flight_per_server: Option<usize>,
}

impl MigrationConfig {
    /// The zero-cost configuration: every phase is free and no storm
    /// limits apply, so moves commit in the slot they are planned —
    /// bit-for-bit the historical teleport behavior.
    pub fn teleport() -> Self {
        MigrationConfig {
            drain_slots: 0,
            transfer_slots: 0,
            health_slots: 0,
            drain_deadline_slots: None,
            max_retries: 0,
            backoff_slots: 1,
            max_in_flight: None,
            max_in_flight_per_server: None,
        }
    }

    /// A paced default: two drain slots, one transfer slot, two healthy
    /// slots to commit, two retries with a two-slot base backoff, no
    /// storm caps.
    pub fn paced() -> Self {
        MigrationConfig {
            drain_slots: 2,
            transfer_slots: 1,
            health_slots: 2,
            drain_deadline_slots: None,
            max_retries: 2,
            backoff_slots: 2,
            max_in_flight: None,
            max_in_flight_per_server: None,
        }
    }

    /// Whether every phase is free and unlimited (the teleport fast
    /// path: moves commit in their planning slot).
    pub fn is_teleport(&self) -> bool {
        self.drain_slots == 0
            && self.transfer_slots == 0
            && self.health_slots == 0
            && self.max_in_flight.is_none()
            && self.max_in_flight_per_server.is_none()
    }

    /// Sets the fleet-wide in-flight cap.
    pub fn with_max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight = Some(cap);
        self
    }

    /// Sets the per-server in-flight cap.
    pub fn with_max_in_flight_per_server(mut self, cap: usize) -> Self {
        self.max_in_flight_per_server = Some(cap);
        self
    }

    /// Sets the drain deadline, in slots.
    pub fn with_drain_deadline(mut self, slots: usize) -> Self {
        self.drain_deadline_slots = Some(slots);
        self
    }

    /// The backoff before retry `retry` (1-based), in slots:
    /// `backoff_slots * 2^(retry-1)`, saturating, at least one.
    pub fn backoff_for(&self, retry: usize) -> usize {
        let base = self.backoff_slots.max(1);
        base.saturating_mul(
            1usize
                .checked_shl(retry.saturating_sub(1).min(16) as u32)
                .unwrap_or(usize::MAX),
        )
    }
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig::teleport()
    }
}

/// Lifecycle phase of one move. `Cutover` is instantaneous (recorded in
/// the timeline, never observed between slots); `Committed`, `Failed`,
/// and `Superseded` are terminal; `RolledBack` is terminal unless the
/// move immediately re-enters `Planned` for a retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Planned, waiting for a storm-controller start slot.
    Planned,
    /// Source still serving; destination capacity reserved.
    Draining,
    /// The transfer itself is in progress (both ends booked).
    Transferring,
    /// The instant the destination takes over serving.
    Cutover,
    /// Destination serving, being judged against the app's band.
    HealthCheck,
    /// The move succeeded; the source reservation is released.
    Committed,
    /// The move was undone (source serves again, or the app is unplaced
    /// when its source is gone).
    RolledBack,
    /// Retries exhausted; the move is abandoned.
    Failed,
    /// A re-plan changed the app's target while this move was underway.
    Superseded,
}

impl MigrationPhase {
    /// Stable lower-case name (obs attributes, text reports).
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationPhase::Planned => "planned",
            MigrationPhase::Draining => "draining",
            MigrationPhase::Transferring => "transferring",
            MigrationPhase::Cutover => "cutover",
            MigrationPhase::HealthCheck => "health_check",
            MigrationPhase::Committed => "committed",
            MigrationPhase::RolledBack => "rolled_back",
            MigrationPhase::Failed => "failed",
            MigrationPhase::Superseded => "superseded",
        }
    }

    /// Whether the move can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            MigrationPhase::Committed | MigrationPhase::Failed | MigrationPhase::Superseded
        )
    }
}

/// One phase entry in a move's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseAt {
    /// Slot at which the phase was entered.
    pub slot: usize,
    /// The phase entered.
    pub phase: MigrationPhase,
}

/// One state transition, as reported to the driving replay loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Index of the move in the orchestrator's plan order.
    pub mov: usize,
    /// Application index.
    pub app: usize,
    /// Source server (`None` when the source is gone — nothing to
    /// drain, and a rollback leaves the app unplaced).
    pub from: Option<usize>,
    /// Destination server.
    pub to: usize,
    /// Phase entered.
    pub phase: MigrationPhase,
    /// Slot of the transition.
    pub slot: usize,
    /// Degraded-window attribution tag assigned at plan time.
    pub window: Option<usize>,
}

/// Internal per-move state.
#[derive(Debug, Clone)]
struct Move {
    app: usize,
    from: Option<usize>,
    to: usize,
    /// 0 = repair/displaced (source gone), 1 = rebalance; lower starts
    /// first.
    priority: u8,
    window: Option<usize>,
    phase: MigrationPhase,
    planned_slot: usize,
    /// Slot the current phase was entered.
    phase_entered: usize,
    /// Slots of progress accumulated in the current phase.
    progress: usize,
    /// Consecutive healthy slots observed in `HealthCheck`.
    streak: usize,
    retries: usize,
    /// Earliest slot a `Planned` move may start (backoff gate).
    next_eligible: usize,
    /// Whether the move has left `Planned` at least once (reservations
    /// exist only for started moves).
    started: bool,
    commit_slot: Option<usize>,
    timeline: Vec<PhaseAt>,
}

impl Move {
    fn is_active(&self) -> bool {
        !self.phase.is_terminal() && self.phase != MigrationPhase::RolledBack
    }

    fn in_flight(&self) -> bool {
        self.is_active() && self.started && self.phase != MigrationPhase::Planned
    }

    fn pre_cutover(&self) -> bool {
        matches!(
            self.phase,
            MigrationPhase::Draining | MigrationPhase::Transferring
        )
    }
}

/// Per-move outcome for the serde [`MigrationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// Application index in the driving fleet.
    pub app: usize,
    /// Application name (index string when the caller has no names).
    pub name: String,
    /// Source server (`None` = source was gone when planned).
    pub from: Option<usize>,
    /// Destination server.
    pub to: usize,
    /// Start priority (0 = repair, 1 = rebalance).
    pub priority: u8,
    /// Slot the move was planned.
    pub planned_slot: usize,
    /// Final (or current) phase.
    pub outcome: MigrationPhase,
    /// Rollback retries consumed.
    pub retries: usize,
    /// Slot the move committed, if it did.
    pub commit_slot: Option<usize>,
    /// Every phase entered, in order.
    pub timeline: Vec<PhaseAt>,
}

/// Fleet-level migration outcome: per-move timelines plus recovery
/// metrics, embedded in `ChaosReport` and the CLI `--json` output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// The lifecycle cost model and storm limits that produced it.
    pub config: MigrationConfig,
    /// Moves planned (each retargeting of an app is one move).
    pub planned: usize,
    /// Moves that committed.
    pub committed: usize,
    /// Rollback occurrences (a retried move may roll back repeatedly).
    pub rolled_back: usize,
    /// Moves abandoned after exhausting retries.
    pub failed: usize,
    /// Moves cancelled by a later re-plan.
    pub superseded: usize,
    /// Retry starts performed.
    pub retries: usize,
    /// Peak concurrent in-flight moves — bounded by the storm caps.
    pub peak_in_flight: usize,
    /// Move-slots spent waiting on a storm cap.
    pub deferred_slots: u64,
    /// Move-slots during which both source and destination carried the
    /// workload's demand.
    pub double_booked_slots: u64,
    /// Slot of the first commit, if any.
    pub first_commit_slot: Option<usize>,
    /// Slot of the last commit, if any.
    pub last_commit_slot: Option<usize>,
    /// Per-move timelines, in plan order.
    pub moves: Vec<MoveRecord>,
}

/// The deterministic migration state machine over one fleet.
///
/// Drive it with [`retarget`](Self::retarget) at re-plan boundaries and
/// the per-slot pair [`begin_slot`](Self::begin_slot) /
/// [`complete_slot`](Self::complete_slot); read the authoritative
/// serving assignment from [`serving`](Self::serving) and the
/// double-booked reservations from [`reservations`](Self::reservations).
#[derive(Debug, Clone)]
pub struct MigrationOrchestrator {
    config: MigrationConfig,
    /// Authoritative serving assignment per app (`None` = unplaced).
    current: Vec<Option<usize>>,
    moves: Vec<Move>,
    /// Set whenever serving or reservations may have changed; the
    /// driving loop rebuilds its hosted/reserved lists when taken.
    dirty: bool,
    peak_in_flight: usize,
    deferred_slots: u64,
    double_booked_slots: u64,
    retries_total: usize,
    rolled_back_total: usize,
}

impl MigrationOrchestrator {
    /// Creates an orchestrator over an initial serving assignment.
    pub fn new(config: MigrationConfig, initial: Vec<Option<usize>>) -> Self {
        MigrationOrchestrator {
            config,
            current: initial,
            moves: Vec::new(),
            dirty: true,
            peak_in_flight: 0,
            deferred_slots: 0,
            double_booked_slots: 0,
            retries_total: 0,
            rolled_back_total: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> MigrationConfig {
        self.config
    }

    /// The authoritative serving assignment (app → server).
    pub fn serving(&self) -> &[Option<usize>] {
        &self.current
    }

    /// Grows the app space to at least `n` (new apps are unplaced).
    pub fn ensure_apps(&mut self, n: usize) {
        if self.current.len() < n {
            self.current.resize(n, None);
        }
    }

    /// Records an externally-performed placement change (admission or
    /// departure in an online session). Does not plan a move.
    pub fn set_current(&mut self, app: usize, server: Option<usize>) {
        self.ensure_apps(app + 1);
        // lint:allow(panic-slice-index): ensure_apps grew the vec.
        self.current[app] = server;
        self.dirty = true;
    }

    /// Whether any move is planned or in flight; drivers skip per-slot
    /// work entirely when idle.
    pub fn is_idle(&self) -> bool {
        self.moves.iter().all(|m| !m.is_active())
    }

    /// Concurrent in-flight moves right now.
    pub fn in_flight(&self) -> usize {
        self.moves.iter().filter(|m| m.in_flight()).count()
    }

    /// Whether `app` has a non-terminal move (planned or in flight).
    pub fn has_active_move(&self, app: usize) -> bool {
        self.moves.iter().any(|m| m.app == app && m.is_active())
    }

    /// Moves currently in `HealthCheck`, as `(app, destination)` pairs
    /// in plan order — drivers compute health signals for exactly these.
    pub fn in_health_check(&self) -> Vec<(usize, usize)> {
        self.moves
            .iter()
            .filter(|m| m.phase == MigrationPhase::HealthCheck)
            .map(|m| (m.app, m.to))
            .collect()
    }

    /// Takes and clears the dirty flag: whether serving or reservations
    /// changed since the last take.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.dirty, false)
    }

    /// Capacity reservations in force, as `(app, server)` pairs in plan
    /// order: pre-cutover moves reserve on their destination, post-
    /// cutover moves keep the source reserved until commit so a
    /// rollback is always capacity-safe.
    pub fn reservations(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for m in &self.moves {
            if !m.in_flight() {
                continue;
            }
            if m.pre_cutover() {
                out.push((m.app, m.to));
            } else if m.phase == MigrationPhase::HealthCheck {
                if let Some(from) = m.from {
                    out.push((m.app, from));
                }
            }
        }
        out
    }

    /// Plans one move explicitly (the online-daemon path). Returns the
    /// move index. The move starts at the next
    /// [`begin_slot`](Self::begin_slot) the storm controller allows.
    pub fn plan_move(
        &mut self,
        app: usize,
        to: usize,
        priority: u8,
        slot: usize,
        window: Option<usize>,
    ) -> usize {
        self.ensure_apps(app + 1);
        let from = self.current[app];
        self.moves.push(Move {
            app,
            from,
            to,
            priority,
            window,
            phase: MigrationPhase::Planned,
            planned_slot: slot,
            phase_entered: slot,
            progress: 0,
            streak: 0,
            retries: 0,
            next_eligible: slot,
            started: false,
            commit_slot: None,
            timeline: vec![PhaseAt {
                slot,
                phase: MigrationPhase::Planned,
            }],
        });
        self.moves.len() - 1
    }

    /// Cancels any active move of `app` (departure or explicit cancel),
    /// rolling a post-cutover move back to its source. Returns whether a
    /// move was cancelled.
    pub fn cancel_app(&mut self, app: usize, slot: usize, obs: ObsCtx<'_>) -> bool {
        let mut cancelled = false;
        for idx in 0..self.moves.len() {
            // lint:allow(panic-slice-index): idx ranges over the vec.
            let m = &self.moves[idx];
            if m.app != app || !m.is_active() {
                continue;
            }
            if m.phase == MigrationPhase::HealthCheck {
                let from = m.from;
                self.set_current(app, from);
            }
            self.enter(idx, MigrationPhase::Superseded, slot, obs);
            cancelled = true;
        }
        cancelled
    }

    /// Reconciles the machine with a new target assignment at a re-plan
    /// boundary (chaos segment, lifecycle epoch).
    ///
    /// `dead` lists servers that are down for the coming period. For
    /// every app: an in-flight move consistent with the target continues;
    /// an inconsistent one is superseded (rolled back to its source when
    /// past cutover); then a fresh move is planned wherever serving and
    /// target still differ. An app whose target is `None` (displaced
    /// with nowhere to go) simply stops serving — that is displacement,
    /// not a migration. Moves out of a dead server are planned with
    /// `from = None` (nothing left to drain) at priority 0 so the storm
    /// controller repairs displaced apps first.
    pub fn retarget(
        &mut self,
        target: &[Option<usize>],
        dead: &[usize],
        slot: usize,
        window: Option<usize>,
        obs: ObsCtx<'_>,
    ) {
        self.ensure_apps(target.len());
        let is_dead = |s: usize| dead.contains(&s);
        // Pass 1: reconcile in-flight moves with the new target.
        for idx in 0..self.moves.len() {
            // lint:allow(panic-slice-index): idx ranges over the vec.
            let m = &self.moves[idx];
            if !m.is_active() {
                continue;
            }
            let app = m.app;
            let want = target.get(app).copied().flatten();
            let dest_ok = want == Some(m.to) && !is_dead(m.to);
            if !dest_ok {
                if m.phase == MigrationPhase::HealthCheck {
                    // Destination was serving: hand back to the source
                    // if it is still alive, else the app is unplaced.
                    let back = m.from.filter(|&s| !is_dead(s));
                    self.set_current(app, back);
                }
                self.enter(idx, MigrationPhase::Superseded, slot, obs);
                continue;
            }
            // Destination still wanted; check the source's health.
            if let Some(from) = self.moves[idx].from {
                if is_dead(from) {
                    // Source died mid-move: nothing left to drain or
                    // roll back to.
                    let m = &mut self.moves[idx];
                    m.from = None;
                    m.priority = 0;
                    self.set_current(app, None);
                    if self.moves[idx].phase == MigrationPhase::Draining {
                        self.enter(idx, MigrationPhase::Transferring, slot, obs);
                        self.advance_free_phases(idx, slot, obs);
                    }
                }
            }
        }
        // Pass 2: the serving assignment of displaced and dead-hosted
        // apps, in app order.
        for (app, tgt) in target.iter().enumerate() {
            // lint:allow(panic-slice-index): ensure_apps covered target.
            let cur = self.current[app];
            if let Some(s) = cur {
                if is_dead(s) {
                    self.set_current(app, None);
                }
            }
            if tgt.is_none() && self.current[app].is_some() {
                // Displacement with nowhere to go: not a migration.
                self.set_current(app, None);
            }
        }
        // Pass 3: plan fresh moves where serving and target differ and
        // no active move already covers the app.
        for (app, tgt) in target.iter().enumerate() {
            let Some(to) = *tgt else { continue };
            // lint:allow(panic-slice-index): ensure_apps covered target.
            if self.current[app] == Some(to) {
                continue;
            }
            if self.moves.iter().any(|m| m.app == app && m.is_active()) {
                continue;
            }
            let from = self.current[app];
            let priority = if from.is_none() { 0 } else { 1 };
            self.plan_move(app, to, priority, slot, window);
            obs.counter("migration.planned", 1);
        }
    }

    /// Starts eligible moves under the storm caps and advances zero-cost
    /// phases; call at the top of each slot, before reading
    /// [`serving`](Self::serving) / [`reservations`](Self::reservations).
    /// Returns the transitions performed (commits included, for
    /// zero-cost configurations).
    pub fn begin_slot(&mut self, slot: usize, obs: ObsCtx<'_>) -> Vec<Transition> {
        let mut out = Vec::new();
        if self.is_idle() {
            return out;
        }
        // Candidate starts in (priority, plan-order) order — the
        // deterministic storm queue.
        let mut candidates: Vec<usize> = (0..self.moves.len())
            .filter(|&i| {
                // lint:allow(panic-slice-index): i ranges over the vec.
                let m = &self.moves[i];
                m.phase == MigrationPhase::Planned && m.next_eligible <= slot
            })
            .collect();
        candidates.sort_by_key(|&i| {
            // lint:allow(panic-slice-index): candidates index the vec.
            (self.moves[i].priority, i)
        });
        let mut in_flight = self.in_flight();
        let mut per_server: Vec<(usize, usize)> = Vec::new();
        let server_count = |per_server: &mut Vec<(usize, usize)>, s: usize| -> usize {
            per_server
                .iter()
                .find(|&&(srv, _)| srv == s)
                .map_or(0, |&(_, c)| c)
        };
        let bump = |per_server: &mut Vec<(usize, usize)>, s: usize| match per_server
            .iter_mut()
            .find(|(srv, _)| *srv == s)
        {
            Some((_, c)) => *c += 1,
            None => per_server.push((s, 1)),
        };
        for m in self.moves.iter().filter(|m| m.in_flight()) {
            bump(&mut per_server, m.to);
            if let Some(from) = m.from {
                bump(&mut per_server, from);
            }
        }
        for idx in candidates {
            // lint:allow(panic-slice-index): candidates index the vec.
            let (to, from) = (self.moves[idx].to, self.moves[idx].from);
            let fleet_ok = self.config.max_in_flight.is_none_or(|cap| in_flight < cap);
            let server_ok = self.config.max_in_flight_per_server.is_none_or(|cap| {
                server_count(&mut per_server, to) < cap
                    && from.is_none_or(|f| server_count(&mut per_server, f) < cap)
            });
            if !(fleet_ok && server_ok) {
                self.deferred_slots += 1;
                obs.counter("migration.storm.deferred", 1);
                continue;
            }
            self.moves[idx].started = true;
            out.extend(self.enter(idx, MigrationPhase::Draining, slot, obs));
            out.extend(self.advance_free_phases(idx, slot, obs));
            // lint:allow(panic-slice-index): idx still indexes the vec.
            if self.moves[idx].in_flight() {
                in_flight += 1;
                bump(&mut per_server, to);
                if let Some(f) = from {
                    bump(&mut per_server, f);
                }
            }
        }
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
        // Double-booking: every in-flight move with a live source books
        // the workload on both ends this slot.
        self.double_booked_slots += self
            .moves
            .iter()
            .filter(|m| m.in_flight() && m.from.is_some())
            .count() as u64;
        out
    }

    /// Applies one slot's progress signals at the end of the slot:
    /// `contended[s]` marks servers whose capacity was contended (gates
    /// drain progress), `healthy[app]` carries the health verdict for
    /// apps in `HealthCheck` (missing entries default to contended-free
    /// / healthy). Returns the transitions performed.
    pub fn complete_slot(
        &mut self,
        slot: usize,
        contended: &[bool],
        healthy: &[bool],
        obs: ObsCtx<'_>,
    ) -> Vec<Transition> {
        let mut out = Vec::new();
        for idx in 0..self.moves.len() {
            // lint:allow(panic-slice-index): idx ranges over the vec.
            let m = &self.moves[idx];
            if !m.in_flight() {
                continue;
            }
            match m.phase {
                MigrationPhase::Draining => {
                    let dest_contended = contended.get(m.to).copied().unwrap_or(false);
                    if !dest_contended {
                        self.moves[idx].progress += 1;
                    }
                    if self.moves[idx].progress >= self.config.drain_slots {
                        out.extend(self.enter(idx, MigrationPhase::Transferring, slot, obs));
                        out.extend(self.advance_free_phases(idx, slot, obs));
                    } else if let Some(deadline) = self.config.drain_deadline_slots {
                        let elapsed = slot + 1 - self.moves[idx].phase_entered;
                        if elapsed >= deadline.max(1) {
                            out.extend(self.rollback(idx, slot, obs));
                        }
                    }
                }
                MigrationPhase::Transferring => {
                    self.moves[idx].progress += 1;
                    if self.moves[idx].progress >= self.config.transfer_slots {
                        out.extend(self.cutover(idx, slot, obs));
                    }
                }
                MigrationPhase::HealthCheck => {
                    let ok = healthy.get(m.app).copied().unwrap_or(true);
                    if !ok && m.from.is_none() {
                        // A repair move has no live source to return to;
                        // rolling back would strand the app entirely. It
                        // parks at the destination (still serving) until
                        // the band stabilizes or a re-plan supersedes it.
                        self.moves[idx].streak = 0;
                    } else if !ok {
                        out.extend(self.rollback(idx, slot, obs));
                    } else {
                        self.moves[idx].streak += 1;
                        if self.moves[idx].streak >= self.config.health_slots {
                            out.extend(self.enter(idx, MigrationPhase::Committed, slot, obs));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Skips phases whose configured cost is zero, cascading as far as
    /// the configuration allows (for the teleport configuration, all the
    /// way to `Committed` in the planning slot).
    fn advance_free_phases(&mut self, idx: usize, slot: usize, obs: ObsCtx<'_>) -> Vec<Transition> {
        let mut out = Vec::new();
        loop {
            // lint:allow(panic-slice-index): callers pass a valid idx.
            let m = &self.moves[idx];
            match m.phase {
                MigrationPhase::Draining if m.from.is_none() || self.config.drain_slots == 0 => {
                    out.extend(self.enter(idx, MigrationPhase::Transferring, slot, obs));
                }
                MigrationPhase::Transferring if self.config.transfer_slots == 0 => {
                    out.extend(self.cutover(idx, slot, obs));
                }
                MigrationPhase::HealthCheck if self.config.health_slots == 0 => {
                    out.extend(self.enter(idx, MigrationPhase::Committed, slot, obs));
                }
                _ => break,
            }
        }
        out
    }

    /// The cutover instant: record it, flip serving to the destination,
    /// and enter `HealthCheck` (committing immediately when the health
    /// phase is free).
    fn cutover(&mut self, idx: usize, slot: usize, obs: ObsCtx<'_>) -> Vec<Transition> {
        let mut out = self.enter(idx, MigrationPhase::Cutover, slot, obs);
        // lint:allow(panic-slice-index): callers pass a valid idx.
        let (app, to) = (self.moves[idx].app, self.moves[idx].to);
        self.set_current(app, Some(to));
        out.extend(self.enter(idx, MigrationPhase::HealthCheck, slot, obs));
        out.extend(self.advance_free_phases(idx, slot, obs));
        out
    }

    /// Rolls a move back to its source and schedules a retry (after an
    /// exponential backoff) or abandons it as `Failed`.
    fn rollback(&mut self, idx: usize, slot: usize, obs: ObsCtx<'_>) -> Vec<Transition> {
        // lint:allow(panic-slice-index): callers pass a valid idx.
        let (app, from, past_cutover) = {
            let m = &self.moves[idx];
            (m.app, m.from, m.phase == MigrationPhase::HealthCheck)
        };
        if past_cutover {
            self.set_current(app, from);
        }
        self.rolled_back_total += 1;
        let mut out = self.enter(idx, MigrationPhase::RolledBack, slot, obs);
        let m = &mut self.moves[idx];
        if m.retries < self.config.max_retries {
            m.retries += 1;
            m.next_eligible = slot.saturating_add(self.config.backoff_for(m.retries));
            m.started = false;
            self.retries_total += 1;
            obs.counter("migration.retries", 1);
            out.extend(self.enter(idx, MigrationPhase::Planned, slot, obs));
        } else {
            out.extend(self.enter(idx, MigrationPhase::Failed, slot, obs));
        }
        out
    }

    /// Enters a phase: updates the move, its timeline, counters, and the
    /// obs stream, and returns the transition.
    fn enter(
        &mut self,
        idx: usize,
        phase: MigrationPhase,
        slot: usize,
        obs: ObsCtx<'_>,
    ) -> Vec<Transition> {
        // lint:allow(panic-slice-index): callers pass a valid idx.
        let m = &mut self.moves[idx];
        m.phase = phase;
        m.phase_entered = slot;
        m.progress = 0;
        m.streak = 0;
        m.timeline.push(PhaseAt { slot, phase });
        if phase == MigrationPhase::Committed {
            m.commit_slot = Some(slot);
        }
        let t = Transition {
            mov: idx,
            app: m.app,
            from: m.from,
            to: m.to,
            phase,
            slot,
            window: m.window,
        };
        self.dirty = true;
        match phase {
            MigrationPhase::Committed => obs.counter("migration.committed", 1),
            MigrationPhase::RolledBack => obs.counter("migration.rolled_back", 1),
            MigrationPhase::Failed => obs.counter("migration.failed", 1),
            MigrationPhase::Superseded => obs.counter("migration.superseded", 1),
            _ => {}
        }
        obs.event("migration.transition")
            .with_u64("app", t.app as u64)
            .with_u64("to", t.to as u64)
            .with_u64("slot", slot as u64)
            .with_str("phase", phase.as_str())
            .emit();
        vec![t]
    }

    /// Assembles the serde report; `names[app]` labels each move (index
    /// strings are used past the end).
    pub fn report(&self, names: &[&str]) -> MigrationReport {
        let moves: Vec<MoveRecord> = self
            .moves
            .iter()
            .map(|m| MoveRecord {
                app: m.app,
                name: names
                    .get(m.app)
                    .map_or_else(|| format!("#{}", m.app), |n| (*n).to_string()),
                from: m.from,
                to: m.to,
                priority: m.priority,
                planned_slot: m.planned_slot,
                outcome: m.phase,
                retries: m.retries,
                commit_slot: m.commit_slot,
                timeline: m.timeline.clone(),
            })
            .collect();
        let commit_slots: Vec<usize> = moves.iter().filter_map(|m| m.commit_slot).collect();
        MigrationReport {
            config: self.config,
            planned: moves.len(),
            committed: moves
                .iter()
                .filter(|m| m.outcome == MigrationPhase::Committed)
                .count(),
            rolled_back: self.rolled_back_total,
            failed: moves
                .iter()
                .filter(|m| m.outcome == MigrationPhase::Failed)
                .count(),
            superseded: moves
                .iter()
                .filter(|m| m.outcome == MigrationPhase::Superseded)
                .count(),
            retries: self.retries_total,
            peak_in_flight: self.peak_in_flight,
            deferred_slots: self.deferred_slots,
            double_booked_slots: self.double_booked_slots,
            first_commit_slot: commit_slots.iter().copied().min(),
            last_commit_slot: commit_slots.iter().copied().max(),
            moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> ObsCtx<'static> {
        ObsCtx::none()
    }

    /// Drives one slot: begin, then complete with uniform signals.
    fn step(
        orch: &mut MigrationOrchestrator,
        slot: usize,
        contended: &[bool],
        healthy: &[bool],
    ) -> Vec<Transition> {
        let mut ts = orch.begin_slot(slot, obs());
        ts.extend(orch.complete_slot(slot, contended, healthy, obs()));
        ts
    }

    fn committed(ts: &[Transition]) -> Vec<usize> {
        ts.iter()
            .filter(|t| t.phase == MigrationPhase::Committed)
            .map(|t| t.app)
            .collect()
    }

    #[test]
    fn teleport_commits_in_the_planning_slot() {
        let mut orch =
            MigrationOrchestrator::new(MigrationConfig::teleport(), vec![Some(0), Some(0), None]);
        let target = vec![Some(1), Some(0), Some(1)];
        orch.retarget(&target, &[], 5, Some(0), obs());
        let ts = orch.begin_slot(5, obs());
        // Repairs (app 2, unplaced) start before rebalances (app 0).
        assert_eq!(committed(&ts), vec![2, 0]);
        assert_eq!(orch.serving(), &target[..]);
        assert!(orch.is_idle());
        let report = orch.report(&["a", "b", "c"]);
        assert_eq!(report.committed, 2);
        assert_eq!(report.double_booked_slots, 0);
        assert_eq!(
            (report.first_commit_slot, report.last_commit_slot),
            (Some(5), Some(5))
        );
        // Window attribution survives into the transitions.
        assert!(ts
            .iter()
            .filter(|t| t.phase == MigrationPhase::Committed)
            .all(|t| t.window == Some(0)));
    }

    #[test]
    fn paced_move_walks_every_phase() {
        let config = MigrationConfig {
            drain_slots: 2,
            transfer_slots: 1,
            health_slots: 2,
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        // Slots 0-1 drain, slot 2 transfers (cutover at its end), slots
        // 3-4 health-check, commit at slot 4.
        for slot in 0..4 {
            let ts = step(&mut orch, slot, &[], &[true]);
            assert!(committed(&ts).is_empty(), "slot {slot} must not commit");
            let expect_serving = if slot < 2 { Some(0) } else { Some(1) };
            assert_eq!(orch.serving()[0], expect_serving, "slot {slot}");
        }
        let ts = step(&mut orch, 4, &[], &[true]);
        assert_eq!(committed(&ts), vec![0]);
        let report = orch.report(&["a"]);
        assert_eq!(report.moves[0].commit_slot, Some(4));
        // Draining + transferring slots double-book both ends.
        assert_eq!(report.double_booked_slots, 5);
        let phases: Vec<MigrationPhase> =
            report.moves[0].timeline.iter().map(|p| p.phase).collect();
        assert_eq!(
            phases,
            vec![
                MigrationPhase::Planned,
                MigrationPhase::Draining,
                MigrationPhase::Transferring,
                MigrationPhase::Cutover,
                MigrationPhase::HealthCheck,
                MigrationPhase::Committed,
            ]
        );
    }

    #[test]
    fn reservations_track_the_phase() {
        let config = MigrationConfig {
            drain_slots: 1,
            transfer_slots: 1,
            health_slots: 1,
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        orch.begin_slot(0, obs());
        // Draining: destination reserved.
        assert_eq!(orch.reservations(), vec![(0, 1)]);
        orch.complete_slot(0, &[], &[true], obs());
        orch.begin_slot(1, obs());
        assert_eq!(orch.reservations(), vec![(0, 1)], "transferring");
        orch.complete_slot(1, &[], &[true], obs());
        // Post-cutover: the source stays reserved for rollback safety.
        orch.begin_slot(2, obs());
        assert_eq!(orch.reservations(), vec![(0, 0)], "health check");
        assert_eq!(orch.serving()[0], Some(1));
        orch.complete_slot(2, &[], &[true], obs());
        assert!(orch.reservations().is_empty(), "committed releases all");
    }

    #[test]
    fn storm_caps_pace_the_wave_deterministically() {
        let config = MigrationConfig {
            transfer_slots: 1,
            ..MigrationConfig::teleport()
        }
        .with_max_in_flight(2);
        let current: Vec<Option<usize>> = (0..6).map(|_| Some(0)).collect();
        let target: Vec<Option<usize>> = (0..6).map(|i| Some(1 + i % 2)).collect();
        let mut orch = MigrationOrchestrator::new(config, current);
        orch.retarget(&target, &[], 0, None, obs());
        let mut commit_order = Vec::new();
        for slot in 0..8 {
            assert!(orch.in_flight() <= 2, "cap respected at slot {slot}");
            commit_order.extend(committed(&step(&mut orch, slot, &[], &[true; 6])));
        }
        // Plan order is app order; the cap admits two per wave.
        assert_eq!(commit_order, vec![0, 1, 2, 3, 4, 5]);
        let report = orch.report(&[]);
        assert_eq!(report.peak_in_flight, 2);
        assert!(report.deferred_slots > 0, "waves defer the tail");
        assert_eq!(report.committed, 6);
    }

    #[test]
    fn per_server_cap_limits_participation() {
        let config = MigrationConfig {
            transfer_slots: 1,
            ..MigrationConfig::teleport()
        }
        .with_max_in_flight_per_server(1);
        // Both moves leave server 0: only one may run at a time.
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0), Some(0)]);
        orch.retarget(&[Some(1), Some(2)], &[], 0, None, obs());
        orch.begin_slot(0, obs());
        assert_eq!(orch.in_flight(), 1);
        let ts = orch.complete_slot(0, &[], &[], obs());
        assert_eq!(committed(&ts), vec![0]);
        let ts = step(&mut orch, 1, &[], &[]);
        assert_eq!(committed(&ts), vec![1]);
    }

    #[test]
    fn displaced_repairs_start_before_rebalances() {
        let config = MigrationConfig {
            transfer_slots: 1,
            ..MigrationConfig::teleport()
        }
        .with_max_in_flight(1);
        // App 0 is a rebalance (live source), app 1 a repair (unplaced).
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0), None]);
        orch.retarget(&[Some(1), Some(1)], &[], 0, None, obs());
        let ts = step(&mut orch, 0, &[], &[]);
        assert_eq!(committed(&ts), vec![1], "repair wins the only slot");
        let ts = step(&mut orch, 1, &[], &[]);
        assert_eq!(committed(&ts), vec![0]);
    }

    #[test]
    fn unhealthy_destination_rolls_back_then_retries_with_backoff() {
        let config = MigrationConfig {
            health_slots: 1,
            max_retries: 1,
            backoff_slots: 2,
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        orch.begin_slot(0, obs());
        // Cutover happened instantly (drain/transfer free): serving at 1.
        assert_eq!(orch.serving()[0], Some(1));
        let ts = orch.complete_slot(0, &[], &[false], obs());
        assert!(ts.iter().any(|t| t.phase == MigrationPhase::RolledBack));
        assert_eq!(orch.serving()[0], Some(0), "rollback restores source");
        // Backoff: not eligible at slot 1, retries at slot 2.
        assert!(orch.begin_slot(1, obs()).is_empty());
        orch.complete_slot(1, &[], &[true], obs());
        orch.begin_slot(2, obs());
        let ts = orch.complete_slot(2, &[], &[true], obs());
        assert_eq!(committed(&ts), vec![0]);
        let report = orch.report(&["a"]);
        assert_eq!(
            (report.rolled_back, report.retries, report.committed),
            (1, 1, 1)
        );
    }

    #[test]
    fn retries_exhausted_becomes_failed() {
        let config = MigrationConfig {
            health_slots: 1,
            max_retries: 1,
            backoff_slots: 1,
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        let mut failed = false;
        for slot in 0..6 {
            let ts = step(&mut orch, slot, &[], &[false]);
            failed |= ts.iter().any(|t| t.phase == MigrationPhase::Failed);
        }
        assert!(failed);
        assert!(orch.is_idle());
        assert_eq!(orch.serving()[0], Some(0), "app never left its source");
        let report = orch.report(&["a"]);
        assert_eq!(
            (report.failed, report.rolled_back, report.committed),
            (1, 2, 0)
        );
    }

    #[test]
    fn drain_deadline_expiry_rolls_back() {
        let config = MigrationConfig {
            drain_slots: 4,
            drain_deadline_slots: Some(2),
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        // The destination is contended every slot: drain never advances
        // and the deadline expires after two slots.
        let contended = [false, true];
        let ts0 = step(&mut orch, 0, &contended, &[]);
        assert!(ts0.iter().all(|t| t.phase != MigrationPhase::RolledBack));
        let ts1 = step(&mut orch, 1, &contended, &[]);
        assert!(ts1.iter().any(|t| t.phase == MigrationPhase::RolledBack));
        assert!(ts1.iter().any(|t| t.phase == MigrationPhase::Failed));
        assert_eq!(orch.serving()[0], Some(0));
    }

    #[test]
    fn dead_source_skips_the_drain() {
        let config = MigrationConfig {
            drain_slots: 8,
            transfer_slots: 1,
            ..MigrationConfig::teleport()
        };
        // App displaced by a failure: unplaced, repairs onto server 1.
        let mut orch = MigrationOrchestrator::new(config, vec![None]);
        orch.retarget(&[Some(1)], &[0], 0, None, obs());
        let ts = orch.begin_slot(0, obs());
        assert!(committed(&ts).is_empty(), "one transfer slot first");
        assert_eq!(orch.serving()[0], None, "unserved until cutover");
        // The destination books capacity for the incoming app, but with
        // no live source there is nothing to double-book.
        assert_eq!(orch.reservations(), vec![(0, 1)]);
        assert_eq!(orch.report(&[]).double_booked_slots, 0);
        // The eight-slot drain was skipped: the transfer's single slot
        // completes the move at the end of slot 0.
        let ts = orch.complete_slot(0, &[], &[], obs());
        assert_eq!(committed(&ts), vec![0]);
        assert_eq!(orch.serving()[0], Some(1));
    }

    #[test]
    fn retarget_supersedes_stale_moves() {
        let config = MigrationConfig {
            transfer_slots: 10,
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        let _ = step(&mut orch, 0, &[], &[]);
        assert_eq!(orch.in_flight(), 1);
        // A new plan sends the app to server 2 instead.
        orch.retarget(&[Some(2)], &[], 1, None, obs());
        let report = orch.report(&["a"]);
        assert_eq!(report.superseded, 1);
        assert_eq!(report.planned, 2);
        assert_eq!(orch.serving()[0], Some(0), "never cut over");
        let ts: Vec<Transition> = (1..13).flat_map(|s| step(&mut orch, s, &[], &[])).collect();
        assert_eq!(committed(&ts), vec![0]);
        assert_eq!(orch.serving()[0], Some(2));
    }

    #[test]
    fn cancel_app_rolls_a_cutover_move_back() {
        let config = MigrationConfig {
            health_slots: 4,
            ..MigrationConfig::teleport()
        };
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, obs());
        orch.begin_slot(0, obs());
        assert_eq!(orch.serving()[0], Some(1), "health check serves at dest");
        assert!(orch.cancel_app(0, 0, obs()));
        assert_eq!(orch.serving()[0], Some(0));
        assert!(orch.is_idle());
        assert!(!orch.cancel_app(0, 1, obs()), "nothing left to cancel");
    }

    #[test]
    fn observability_counts_transitions() {
        let o = ropus_obs::Obs::deterministic();
        let ctx = ObsCtx::from(&o);
        let mut orch = MigrationOrchestrator::new(MigrationConfig::teleport(), vec![Some(0)]);
        orch.retarget(&[Some(1)], &[], 0, None, ctx);
        orch.begin_slot(0, ctx);
        let report = o.report();
        assert_eq!(report.counter("migration.planned"), 1);
        assert_eq!(report.counter("migration.committed"), 1);
        assert!(report.events_named("migration.transition").count() >= 2);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let config = MigrationConfig::paced().with_max_in_flight(2);
        let mut orch = MigrationOrchestrator::new(config, vec![Some(0), Some(0)]);
        orch.retarget(&[Some(1), Some(2)], &[], 0, None, obs());
        for slot in 0..12 {
            let _ = step(&mut orch, slot, &[], &[true, true]);
        }
        let report = orch.report(&["a", "b"]);
        let json = serde_json::to_string(&report).unwrap();
        let back: MigrationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
