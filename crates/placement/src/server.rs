//! Server specifications for the resource pool.

use serde::{Deserialize, Serialize};

/// A server in the pool: `Z` CPUs of a given per-CPU capacity.
///
/// The paper's case study uses homogeneous 16-way servers with unit
/// per-CPU capacity, so a server's capacity limit `L` is simply 16.
///
/// # Example
///
/// ```
/// use ropus_placement::server::ServerSpec;
///
/// let server = ServerSpec::sixteen_way();
/// assert_eq!(server.cpus(), 16);
/// assert_eq!(server.capacity(), 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    cpus: u32,
    cpu_capacity: f64,
    #[serde(default = "default_memory_gb")]
    memory_gb: f64,
}

/// Serde default for deserialized specs that predate the memory
/// attribute: the 16-way server's 64 GB.
fn default_memory_gb() -> f64 {
    64.0
}

impl ServerSpec {
    /// Creates a server spec.
    ///
    /// # Panics
    ///
    /// Panics if `cpus == 0` or `cpu_capacity <= 0`.
    pub fn new(cpus: u32, cpu_capacity: f64) -> Self {
        assert!(cpus > 0, "server must have at least one CPU");
        assert!(
            cpu_capacity.is_finite() && cpu_capacity > 0.0,
            "per-CPU capacity must be positive"
        );
        ServerSpec {
            cpus,
            cpu_capacity,
            memory_gb: 4.0 * cpus as f64,
        }
    }

    /// Replaces the default memory size (4 GB per CPU).
    ///
    /// Memory is the second capacity attribute (§II lists CPU, memory and
    /// I/O; §IX defers their statistical sharing to future work). It is
    /// treated as a *guaranteed* attribute: the aggregate memory footprint
    /// on a server must never exceed this limit.
    ///
    /// # Panics
    ///
    /// Panics if `memory_gb` is not positive and finite.
    pub fn with_memory_gb(mut self, memory_gb: f64) -> Self {
        assert!(
            memory_gb.is_finite() && memory_gb > 0.0,
            "memory capacity must be positive"
        );
        self.memory_gb = memory_gb;
        self
    }

    /// The paper's 16-way server with unit per-CPU capacity (and the
    /// default 64 GB of memory).
    pub fn sixteen_way() -> Self {
        ServerSpec {
            cpus: 16,
            cpu_capacity: 1.0,
            memory_gb: 64.0,
        }
    }

    /// Memory capacity in GB.
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Number of CPUs (the paper's `Z`).
    pub fn cpus(&self) -> u32 {
        self.cpus
    }

    /// Capacity of one CPU in allocation units.
    pub fn cpu_capacity(&self) -> f64 {
        self.cpu_capacity
    }

    /// Total capacity limit `L = Z × per-CPU capacity`.
    pub fn capacity(&self) -> f64 {
        self.cpus as f64 * self.cpu_capacity
    }
}

/// A homogeneous pool: `count` servers of the same spec.
///
/// The case study consolidates onto identical 16-way servers; heterogeneous
/// pools can be modelled by consolidating per-tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pool {
    /// The common server specification.
    pub server: ServerSpec,
    /// Number of servers available.
    pub count: usize,
}

impl Pool {
    /// Creates a pool of `count` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn homogeneous(server: ServerSpec, count: usize) -> Self {
        assert!(count > 0, "pool must contain at least one server");
        Pool { server, count }
    }

    /// Aggregate capacity of the whole pool.
    pub fn total_capacity(&self) -> f64 {
        self.server.capacity() * self.count as f64
    }

    /// The pool with one server removed — the §VI-C failure scenario.
    ///
    /// Returns `None` when only one server remains.
    pub fn without_one(&self) -> Option<Pool> {
        if self.count <= 1 {
            return None;
        }
        Some(Pool {
            server: self.server,
            count: self.count - 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_way_matches_paper() {
        let s = ServerSpec::sixteen_way();
        assert_eq!(s.cpus(), 16);
        assert_eq!(s.cpu_capacity(), 1.0);
        assert_eq!(s.capacity(), 16.0);
        assert_eq!(s.memory_gb(), 64.0);
    }

    #[test]
    fn memory_defaults_and_overrides() {
        let s = ServerSpec::new(4, 1.0);
        assert_eq!(s.memory_gb(), 16.0);
        let s = s.with_memory_gb(128.0);
        assert_eq!(s.memory_gb(), 128.0);
    }

    #[test]
    #[should_panic(expected = "memory capacity must be positive")]
    fn rejects_non_positive_memory() {
        ServerSpec::sixteen_way().with_memory_gb(0.0);
    }

    #[test]
    fn capacity_scales_with_cpu_capacity() {
        let s = ServerSpec::new(4, 2.5);
        assert_eq!(s.capacity(), 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn rejects_zero_cpus() {
        ServerSpec::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        ServerSpec::new(4, 0.0);
    }

    #[test]
    fn pool_arithmetic() {
        let pool = Pool::homogeneous(ServerSpec::sixteen_way(), 8);
        assert_eq!(pool.total_capacity(), 128.0);
        let smaller = pool.without_one().unwrap();
        assert_eq!(smaller.count, 7);
        let one = Pool::homogeneous(ServerSpec::sixteen_way(), 1);
        assert!(one.without_one().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn pool_rejects_zero_count() {
        Pool::homogeneous(ServerSpec::sixteen_way(), 0);
    }
}
