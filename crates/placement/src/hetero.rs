//! Consolidation onto *heterogeneous* pools.
//!
//! The paper's score function is defined for pools where "resources may
//! have different numbers of CPUs" — `f(U) = U^(2Z)` with a per-server
//! `Z`. The homogeneous path ([`crate::consolidate`]) covers the §VII
//! case study; this module generalizes the evaluator, the greedy seeding,
//! and the genetic search to a pool given as an explicit list of
//! [`ServerSpec`]s, so mixed fleets (e.g. 16-way boxes plus smaller
//! blades) can be consolidated with the same machinery.

// lint:allow(det-unordered-collection): the memo cache is lookup-only —
// never iterated, so hash order cannot reach any result.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ropus_qos::PoolCommitments;
use ropus_trace::rng::Rng;

use crate::engine::{parallel_map, EngineStats};
use crate::ga::GaOptions;
use crate::score::{ScoreModel, ServerOutcome};
use crate::server::ServerSpec;
use crate::simulator::{AggregateLoad, FitOptions, FitRequest};
use crate::workload::{validate_workloads, Workload};
use crate::PlacementError;

/// Cache key: (server equivalence class, sorted member set).
type FitKey = (u16, Vec<u16>);

/// Memoizing fit evaluator over an explicit (possibly mixed) server list.
///
/// Results are cached by *(server equivalence class, member set)*: two
/// servers with identical specs share cache entries, so a pool of 30
/// identical boxes costs no more than the homogeneous evaluator. The cache
/// and counters are thread-safe so population scoring can run on the same
/// scoped worker pool as the homogeneous [`FitEngine`](crate::engine).
#[derive(Debug)]
pub struct HeteroEvaluator<'a> {
    workloads: &'a [Workload],
    servers: Vec<ServerSpec>,
    classes: Vec<u16>,
    commitments: PoolCommitments,
    tolerance: f64,
    threads: usize,
    // lint:allow(det-unordered-collection): lookup-only cache, never
    // iterated; results are pure functions of the (class, members) key.
    cache: Mutex<HashMap<FitKey, Option<f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> HeteroEvaluator<'a> {
    /// Creates an evaluator for `workloads` over the given server list.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] for an empty pool or invalid workloads.
    pub fn new(
        workloads: &'a [Workload],
        servers: Vec<ServerSpec>,
        commitments: PoolCommitments,
        tolerance: f64,
    ) -> Result<Self, PlacementError> {
        if servers.is_empty() {
            return Err(PlacementError::InvalidServer {
                message: "pool has no servers".into(),
            });
        }
        validate_workloads(workloads)?;
        assert!(workloads.len() <= u16::MAX as usize, "too many workloads");
        assert!(tolerance > 0.0, "tolerance must be positive");
        // Equivalence classes: identical specs share one class id.
        let mut distinct: Vec<ServerSpec> = Vec::new();
        let classes = servers
            .iter()
            .map(|&s| match distinct.iter().position(|&d| d == s) {
                Some(i) => i as u16,
                None => {
                    distinct.push(s);
                    (distinct.len() - 1) as u16
                }
            })
            .collect();
        Ok(HeteroEvaluator {
            workloads,
            servers,
            classes,
            commitments,
            tolerance,
            threads: 1,
            // lint:allow(det-unordered-collection): see the field note —
            // the cache is never iterated.
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Sets the worker-thread count for population scoring (values below 1
    /// clamp to 1). Parallel scoring is bit-identical to serial scoring.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the evaluator's engine statistics.
    pub fn stats(&self) -> EngineStats {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        EngineStats {
            evaluations: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            threads: self.threads,
            ..EngineStats::default()
        }
    }

    /// The pool's servers, in index order.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// The workloads under evaluation.
    pub fn workloads(&self) -> &'a [Workload] {
        self.workloads
    }

    /// Number of uncached fit evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.misses.load(Ordering::Relaxed) as usize
    }

    /// Required capacity for workload indices `members` on server
    /// `server`; `None` when they do not fit it.
    ///
    /// # Panics
    ///
    /// Panics if `server` or a member index is out of range.
    pub fn server_required(&self, server: usize, members: &[u16]) -> Option<f64> {
        let spec = self.servers[server];
        let mut key_members: Vec<u16> = members.to_vec();
        key_members.sort_unstable();
        let key = (self.classes[server], key_members);
        // lint:allow(panic-expect): a poisoned mutex means a scoring
        // worker already panicked; propagating is the only sound move.
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let refs: Vec<&Workload> = key.1.iter().map(|&i| &self.workloads[i as usize]).collect();
        // lint:allow(panic-expect): member traces were validated aligned
        // at evaluator construction.
        let load = AggregateLoad::of(&refs).expect("validated at construction");
        let result = FitRequest::new(&load, &self.commitments)
            .with_options(
                FitOptions::new()
                    .with_memory_capacity(spec.memory_gb())
                    .with_tolerance(self.tolerance),
            )
            .required_capacity(spec.capacity());
        self.cache
            .lock()
            // lint:allow(panic-expect): see the lock note above.
            .expect("cache poisoned")
            .insert(key, result);
        result
    }

    /// Per-server outcomes of an assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range assignments or length mismatch.
    pub fn outcomes(&self, assignment: &[usize]) -> Vec<ServerOutcome> {
        assert_eq!(
            assignment.len(),
            self.workloads.len(),
            "assignment length mismatch"
        );
        let mut members: Vec<Vec<u16>> = vec![Vec::new(); self.servers.len()];
        for (app, &srv) in assignment.iter().enumerate() {
            assert!(srv < self.servers.len(), "server {srv} outside the pool");
            members[srv].push(app as u16);
        }
        members
            .iter()
            .enumerate()
            .map(|(srv, set)| {
                if set.is_empty() {
                    return ServerOutcome::Unused;
                }
                match self.server_required(srv, set) {
                    Some(required) => ServerOutcome::Fits {
                        required,
                        utilization: required / self.servers[srv].capacity(),
                    },
                    None => ServerOutcome::Overbooked {
                        workloads: set.len(),
                    },
                }
            })
            .collect()
    }

    /// Score (per-server `f(U; Z_s)`) and feasibility of an assignment.
    pub fn evaluate(&self, assignment: &[usize]) -> (f64, bool) {
        let outcomes = self.outcomes(assignment);
        let mut score = 0.0;
        let mut feasible = true;
        for (outcome, spec) in outcomes.iter().zip(&self.servers) {
            score += outcome.value_with(ScoreModel::PowerTwoZ, spec.cpus());
            feasible &= outcome.is_feasible();
        }
        (score, feasible)
    }

    /// Scores a whole population, in input order, on the configured worker
    /// pool. Bit-identical to calling [`evaluate`](Self::evaluate) per
    /// assignment serially.
    pub fn score_assignments(&self, assignments: &[Vec<usize>]) -> Vec<(f64, bool)> {
        parallel_map(self.threads, assignments, |a| self.evaluate(a))
    }
}

/// Greedy first-fit-decreasing seed over the heterogeneous pool: workloads
/// by descending peak allocation, servers tried largest-capacity first.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] when some workload fits no
/// server of the pool, even empty.
pub fn seed_ffd(evaluator: &HeteroEvaluator<'_>) -> Result<Vec<usize>, PlacementError> {
    let workloads = evaluator.workloads();
    let mut app_order: Vec<usize> = (0..workloads.len()).collect();
    app_order.sort_by(|&a, &b| {
        workloads[b]
            .total_peak()
            .total_cmp(&workloads[a].total_peak())
    });
    let mut server_order: Vec<usize> = (0..evaluator.servers().len()).collect();
    server_order.sort_by(|&a, &b| {
        evaluator.servers()[b]
            .capacity()
            .total_cmp(&evaluator.servers()[a].capacity())
    });

    let mut members: Vec<Vec<u16>> = vec![Vec::new(); evaluator.servers().len()];
    let mut assignment = vec![usize::MAX; workloads.len()];
    for &app in &app_order {
        let mut placed = false;
        for &srv in &server_order {
            let mut candidate = members[srv].clone();
            candidate.push(app as u16);
            if evaluator.server_required(srv, &candidate).is_some() {
                members[srv].push(app as u16);
                assignment[app] = srv;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(PlacementError::Infeasible {
                servers: evaluator.servers().len(),
                message: format!(
                    "workload {} fits no server of the pool",
                    workloads[app].name()
                ),
            });
        }
    }
    Ok(assignment)
}

/// Result of a heterogeneous consolidation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroReport {
    /// Final assignment (`app → server index` in the pool list).
    pub assignment: Vec<usize>,
    /// Indices of servers hosting at least one workload.
    pub used_servers: Vec<usize>,
    /// Final score.
    pub score: f64,
    /// Sum of per-used-server required capacities.
    pub required_capacity_total: f64,
}

/// Genetic consolidation over a heterogeneous pool. The operators mirror
/// the homogeneous search (Fig. 5): drain mutation biased toward servers
/// with poor `f(U; Z_s)`, random-share crossover, elitism.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] when no feasible assignment is
/// found.
pub fn consolidate_hetero(
    evaluator: &HeteroEvaluator<'_>,
    options: &GaOptions,
) -> Result<HeteroReport, PlacementError> {
    let seed = seed_ffd(evaluator)?;
    let servers = evaluator.servers().len();
    let mut rng = Rng::seed_from_u64(options.seed);

    let mut population: Vec<Vec<usize>> = vec![seed.clone()];
    while population.len() < options.population.max(2) {
        let mut variant = seed.clone();
        for gene in variant.iter_mut() {
            if rng.bernoulli(options.gene_mutation_probability.max(0.05)) {
                *gene = rng.below(servers);
            }
        }
        population.push(variant);
    }

    let mut scored = score_hetero_population(evaluator, population);
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut stagnation = 0usize;

    for _ in 0..options.max_generations {
        let mut improved = false;
        for (a, s, f) in &scored {
            if *f && best.as_ref().is_none_or(|(_, bs)| *s > bs + 1e-12) {
                best = Some((a.clone(), *s));
                improved = true;
            }
        }
        if improved {
            stagnation = 0;
        } else {
            stagnation += 1;
            if stagnation >= options.stagnation_limit {
                break;
            }
        }

        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut next: Vec<Vec<usize>> = scored.iter().take(2).map(|e| e.0.clone()).collect();
        while next.len() < options.population {
            let a = &scored[rng.below(scored.len()).min(scored.len() - 1)].0;
            let b = &scored[rng.below(scored.len())].0;
            let share = rng.next_f64();
            let mut child: Vec<usize> = a
                .iter()
                .zip(b.iter())
                .map(|(&ga, &gb)| if rng.next_f64() < share { ga } else { gb })
                .collect();
            if rng.bernoulli(options.drain_mutation_probability) {
                drain(&mut child, evaluator, &mut rng);
            }
            for gene in child.iter_mut() {
                if rng.bernoulli(options.gene_mutation_probability) {
                    *gene = rng.below(servers);
                }
            }
            next.push(child);
        }
        scored = score_hetero_population(evaluator, next);
    }
    // Fold in the final generation.
    for (a, s, f) in &scored {
        if *f && best.as_ref().is_none_or(|(_, bs)| *s > bs + 1e-12) {
            best = Some((a.clone(), *s));
        }
    }

    let (assignment, score) = best.ok_or_else(|| PlacementError::Infeasible {
        servers,
        message: "no feasible heterogeneous assignment found".into(),
    })?;
    let outcomes = evaluator.outcomes(&assignment);
    let mut used_servers = Vec::new();
    let mut required_capacity_total = 0.0;
    for (srv, outcome) in outcomes.iter().enumerate() {
        if let ServerOutcome::Fits { required, .. } = outcome {
            used_servers.push(srv);
            required_capacity_total += required;
        }
    }
    Ok(HeteroReport {
        assignment,
        used_servers,
        score,
        required_capacity_total,
    })
}

/// Scores a population through the evaluator's (possibly parallel)
/// scoring path.
fn score_hetero_population(
    evaluator: &HeteroEvaluator<'_>,
    population: Vec<Vec<usize>>,
) -> Vec<(Vec<usize>, f64, bool)> {
    let scores = evaluator.score_assignments(&population);
    population
        .into_iter()
        .zip(scores)
        .map(|(a, (s, f))| (a, s, f))
        .collect()
}

/// Drain mutation over the heterogeneous pool.
fn drain(assignment: &mut [usize], evaluator: &HeteroEvaluator<'_>, rng: &mut Rng) {
    let outcomes = evaluator.outcomes(assignment);
    let used: Vec<usize> = (0..outcomes.len())
        .filter(|&s| !matches!(outcomes[s], ServerOutcome::Unused))
        .collect();
    if used.len() < 2 {
        return;
    }
    let weights: Vec<f64> = used
        .iter()
        .map(|&s| {
            let z = evaluator.servers()[s].cpus();
            (1.0 - outcomes[s].value_with(ScoreModel::PowerTwoZ, z)).max(0.01)
        })
        .collect();
    let victim = used[rng.weighted_index(&weights)];
    let targets: Vec<usize> = used.iter().copied().filter(|&s| s != victim).collect();
    for gene in assignment.iter_mut() {
        if *gene == victim {
            // lint:allow(panic-expect): `targets` is `used` minus one
            // server and `used.len() >= 2` was checked on entry.
            let (_, &target) = rng.choose(&targets).expect("targets non-empty");
            *gene = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments() -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(1.0, 60).unwrap())
    }

    fn constant_fleet(sizes: &[f64]) -> Vec<Workload> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Workload::new(
                    format!("w{i}"),
                    Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
                    Trace::constant(cal(), s, cal().slots_per_week()).unwrap(),
                )
                .unwrap()
            })
            .collect()
    }

    fn mixed_pool() -> Vec<ServerSpec> {
        vec![
            ServerSpec::sixteen_way(),
            ServerSpec::new(4, 1.0),
            ServerSpec::new(4, 1.0),
        ]
    }

    #[test]
    fn equivalence_classes_share_cache_entries() {
        let fleet = constant_fleet(&[2.0, 2.0]);
        let eval = HeteroEvaluator::new(&fleet, mixed_pool(), commitments(), 0.05).unwrap();
        // Same member set on the two identical 4-ways: one evaluation.
        assert!(eval.server_required(1, &[0]).is_some());
        assert!(eval.server_required(2, &[0]).is_some());
        assert_eq!(eval.evaluations(), 1);
        // The 16-way is a different class.
        assert!(eval.server_required(0, &[0]).is_some());
        assert_eq!(eval.evaluations(), 2);
    }

    #[test]
    fn big_workloads_only_fit_the_big_server() {
        let fleet = constant_fleet(&[10.0, 1.0, 1.0]);
        let eval = HeteroEvaluator::new(&fleet, mixed_pool(), commitments(), 0.05).unwrap();
        assert!(eval.server_required(0, &[0]).is_some());
        assert!(
            eval.server_required(1, &[0]).is_none(),
            "10 CPUs on a 4-way"
        );
        let seed = seed_ffd(&eval).unwrap();
        assert_eq!(
            seed[0], 0,
            "FFD must put the 10-CPU workload on the 16-way: {seed:?}"
        );
    }

    #[test]
    fn consolidation_packs_feasibly_and_beats_the_seed() {
        let fleet = constant_fleet(&[10.0, 3.0, 3.0, 2.0, 1.5, 1.0]);
        let eval = HeteroEvaluator::new(&fleet, mixed_pool(), commitments(), 0.05).unwrap();
        let seed = seed_ffd(&eval).unwrap();
        let (seed_score, seed_feasible) = eval.evaluate(&seed);
        assert!(seed_feasible);
        let report = consolidate_hetero(&eval, &GaOptions::fast(3)).unwrap();
        assert!(
            report.score >= seed_score - 1e-9,
            "{} vs {}",
            report.score,
            seed_score
        );
        let (_, feasible) = eval.evaluate(&report.assignment);
        assert!(feasible);
        assert!(!report.used_servers.is_empty());
        assert!(report.required_capacity_total > 0.0);
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let fleet = constant_fleet(&[20.0]);
        let eval = HeteroEvaluator::new(&fleet, mixed_pool(), commitments(), 0.05).unwrap();
        assert!(matches!(
            seed_ffd(&eval),
            Err(PlacementError::Infeasible { .. })
        ));
        assert!(matches!(
            consolidate_hetero(&eval, &GaOptions::fast(0)),
            Err(PlacementError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_pool_rejected() {
        let fleet = constant_fleet(&[1.0]);
        assert!(matches!(
            HeteroEvaluator::new(&fleet, vec![], commitments(), 0.05),
            Err(PlacementError::InvalidServer { .. })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let fleet = constant_fleet(&[5.0, 4.0, 3.0, 2.0]);
        let run = |s| {
            let eval = HeteroEvaluator::new(&fleet, mixed_pool(), commitments(), 0.05).unwrap();
            consolidate_hetero(&eval, &GaOptions::fast(s)).unwrap()
        };
        assert_eq!(run(5), run(5));
    }
}
