//! Failure planning (§VI-C of the paper).
//!
//! Starting from the consolidated normal-mode configuration, the planner
//! removes one server at a time, switches applications to their
//! failure-mode QoS translations (see [`FailureScope`] for which ones),
//! and re-runs the consolidation onto the surviving servers. If every
//! single-server failure can be absorbed, no spare server is needed;
//! otherwise the pool needs a spare (or stronger failure-mode QoS
//! concessions).

use ropus_obs::ObsCtx;
use serde::{Deserialize, Serialize};

use crate::consolidate::{Consolidator, PlacementReport};
use crate::engine::parallel_map;
use crate::server::Pool;
use crate::workload::Workload;
use crate::PlacementError;

/// A consolidator suitable for running one failure case inside the sweep's
/// worker pool: when the sweep itself is parallel, each inner
/// consolidation runs serially so worker pools do not nest.
fn case_worker(consolidator: &Consolidator, threads: usize) -> Consolidator {
    if threads > 1 {
        Consolidator::new(
            consolidator.server(),
            consolidator.commitments(),
            consolidator.options().with_threads(1),
        )
    } else {
        *consolidator
    }
}

/// Which applications fall back to failure-mode QoS after a failure.
///
/// §VI-C of the paper re-associates only the *affected* applications
/// (those hosted on the failed server) with their failure-mode
/// requirements; the §VII case study argues from whole-system placements,
/// effectively relaxing *every* application during the repair window.
/// Both are useful: `AffectedOnly` disturbs fewer applications,
/// `AllApplications` frees more capacity on the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureScope {
    /// Only applications hosted on the failed server are relaxed (§VI-C).
    AffectedOnly,
    /// Every application runs under failure-mode QoS until repair (§VII).
    AllApplications,
}

/// Outcome of re-placing after one server's failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureCase {
    /// Index of the failed server (in the normal-mode report).
    pub failed_server: usize,
    /// Indices of the applications that were hosted on the failed server.
    pub affected: Vec<usize>,
    /// The re-placement onto the surviving servers, if one was found.
    pub placement: Option<PlacementReport>,
}

impl FailureCase {
    /// Whether this failure can be absorbed by the surviving servers.
    pub fn is_supported(&self) -> bool {
        self.placement.is_some()
    }
}

/// Aggregate result of the single-failure sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureAnalysis {
    /// One case per used server in the normal-mode placement.
    pub cases: Vec<FailureCase>,
    /// Servers used in normal mode.
    pub normal_servers: usize,
}

impl FailureAnalysis {
    /// Whether *every* single-server failure can be absorbed without a
    /// spare server.
    pub fn all_supported(&self) -> bool {
        self.cases.iter().all(FailureCase::is_supported)
    }

    /// Whether the pool needs a spare server to cover single failures.
    pub fn spare_needed(&self) -> bool {
        !self.all_supported()
    }

    /// The largest surviving-pool usage across supported cases.
    pub fn worst_case_servers(&self) -> Option<usize> {
        self.cases
            .iter()
            .filter_map(|c| c.placement.as_ref().map(|p| p.servers_used))
            .max()
    }
}

/// Outcome of re-placing after a simultaneous multi-server failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFailureCase {
    /// Indices of the failed servers (in the normal-mode report).
    pub failed_servers: Vec<usize>,
    /// Indices of the applications hosted on the failed servers.
    pub affected: Vec<usize>,
    /// The re-placement onto the surviving servers, if one was found.
    pub placement: Option<PlacementReport>,
}

impl MultiFailureCase {
    /// Whether this combination of failures can be absorbed.
    pub fn is_supported(&self) -> bool {
        self.placement.is_some()
    }
}

/// Aggregate result of a `k`-simultaneous-failure sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFailureAnalysis {
    /// One case per combination of `simultaneous` used servers.
    pub cases: Vec<MultiFailureCase>,
    /// Number of simultaneous failures analyzed.
    pub simultaneous: usize,
    /// Servers used in normal mode.
    pub normal_servers: usize,
}

impl MultiFailureAnalysis {
    /// Whether every combination can be absorbed without spares.
    pub fn all_supported(&self) -> bool {
        self.cases.iter().all(MultiFailureCase::is_supported)
    }

    /// Number of unsupported combinations.
    pub fn unsupported_count(&self) -> usize {
        self.cases.iter().filter(|c| !c.is_supported()).count()
    }
}

/// Sweeps every combination of `simultaneous` failed servers — the
/// paper's §III remark that the single-failure scenario "can be extended
/// to multiple node failures".
///
/// The number of cases is `C(servers_used, simultaneous)`; each runs a
/// full consolidation, so keep `simultaneous` small for large pools.
///
/// # Errors
///
/// Returns [`PlacementError::MisalignedWorkloads`] for mismatched workload
/// vectors and [`PlacementError::InvalidServer`] when `simultaneous` is 0
/// or not smaller than the number of used servers.
pub fn analyze_multi_failures(
    consolidator: &Consolidator,
    normal_report: &PlacementReport,
    normal: &[Workload],
    failure: &[Workload],
    scope: FailureScope,
    simultaneous: usize,
) -> Result<MultiFailureAnalysis, PlacementError> {
    if normal.len() != failure.len() {
        return Err(PlacementError::MisalignedWorkloads {
            name: "failure-mode workload set".to_string(),
        });
    }
    let used = normal_report.servers_used;
    if simultaneous == 0 || simultaneous >= used {
        return Err(PlacementError::InvalidServer {
            message: format!(
                "cannot analyze {simultaneous} simultaneous failures of {used} used servers"
            ),
        });
    }

    // Build every case's inputs serially, then re-place the independent
    // cases on the sweep's worker pool.
    let mut inputs: Vec<(Vec<usize>, Vec<usize>, Vec<Workload>)> = Vec::new();
    for combo in combinations(normal_report.servers.len(), simultaneous) {
        let failed_servers: Vec<usize> = combo
            .iter()
            .map(|&i| normal_report.servers[i].server)
            .collect();
        let affected: Vec<usize> = combo
            .iter()
            .flat_map(|&i| normal_report.servers[i].workloads.iter().copied())
            .collect();
        let mixed: Vec<Workload> = normal
            .iter()
            .enumerate()
            .map(|(i, w)| match scope {
                FailureScope::AllApplications => failure[i].clone(),
                FailureScope::AffectedOnly if affected.contains(&i) => failure[i].clone(),
                FailureScope::AffectedOnly => w.clone(),
            })
            .collect();
        inputs.push((failed_servers, affected, mixed));
    }

    let threads = consolidator.options().ga.threads;
    let worker = case_worker(consolidator, threads);
    let pool = Pool::homogeneous(consolidator.server(), used - simultaneous);
    let placements = parallel_map(threads, &inputs, |(_, _, mixed)| {
        worker.consolidate_onto(mixed, pool, ObsCtx::none()).ok()
    });
    let cases = inputs
        .into_iter()
        .zip(placements)
        .map(
            |((failed_servers, affected, _), placement)| MultiFailureCase {
                failed_servers,
                affected,
                placement,
            },
        )
        .collect();

    Ok(MultiFailureAnalysis {
        cases,
        simultaneous,
        normal_servers: used,
    })
}

/// All `k`-element index combinations of `0..n`, in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn recurse(
        n: usize,
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            // Prune: not enough elements left to complete the combination.
            if n - i < k - current.len() {
                break;
            }
            current.push(i);
            recurse(n, k, i + 1, current, out);
            current.pop();
        }
    }
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(k);
    recurse(n, k, 0, &mut current, &mut result);
    result
}

/// Sweeps all single-server failures of a normal-mode placement.
///
/// `normal` and `failure` are the per-application workloads translated
/// under the normal-mode and failure-mode QoS requirements respectively;
/// they must be index-aligned. For each used server, applications switch
/// to their failure-mode workloads according to `scope` and the whole
/// fleet is re-consolidated onto the surviving `servers_used − 1` servers.
///
/// # Errors
///
/// Returns [`PlacementError::MisalignedWorkloads`] when the two workload
/// vectors differ in length; infeasibility of an individual failure case is
/// *not* an error — it is recorded as an unsupported case.
pub fn analyze_single_failures(
    consolidator: &Consolidator,
    normal_report: &PlacementReport,
    normal: &[Workload],
    failure: &[Workload],
    scope: FailureScope,
) -> Result<FailureAnalysis, PlacementError> {
    if normal.len() != failure.len() {
        return Err(PlacementError::MisalignedWorkloads {
            name: "failure-mode workload set".to_string(),
        });
    }

    // The sweep is embarrassingly parallel: each case re-consolidates an
    // independent workload mix. Build the inputs serially (cheap clones),
    // then fan the consolidations out over the worker pool.
    let mut inputs: Vec<(usize, Vec<usize>, Vec<Workload>)> = Vec::new();
    for server_placement in &normal_report.servers {
        let affected = server_placement.workloads.clone();
        let mixed: Vec<Workload> = normal
            .iter()
            .enumerate()
            .map(|(i, w)| match scope {
                FailureScope::AllApplications => failure[i].clone(),
                FailureScope::AffectedOnly if affected.contains(&i) => failure[i].clone(),
                FailureScope::AffectedOnly => w.clone(),
            })
            .collect();
        inputs.push((server_placement.server, affected, mixed));
    }

    let threads = consolidator.options().ga.threads;
    let worker = case_worker(consolidator, threads);
    let placements = parallel_map(threads, &inputs, |(_, _, mixed)| {
        if normal_report.servers_used <= 1 {
            None
        } else {
            let pool = Pool::homogeneous(consolidator.server(), normal_report.servers_used - 1);
            worker.consolidate_onto(mixed, pool, ObsCtx::none()).ok()
        }
    });
    let cases = inputs
        .into_iter()
        .zip(placements)
        .map(|((failed_server, affected, _), placement)| FailureCase {
            failed_server,
            affected,
            placement,
        })
        .collect();

    Ok(FailureAnalysis {
        cases,
        normal_servers: normal_report.servers_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::ConsolidationOptions;
    use crate::server::ServerSpec;
    use ropus_qos::{CosSpec, PoolCommitments};
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments() -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(1.0, 60).unwrap())
    }

    fn wl(name: &str, size: f64) -> Workload {
        Workload::new(
            name,
            Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
            Trace::constant(cal(), size, cal().slots_per_week()).unwrap(),
        )
        .unwrap()
    }

    fn consolidator(seed: u64) -> Consolidator {
        Consolidator::new(
            ServerSpec::sixteen_way(),
            commitments(),
            ConsolidationOptions::fast(seed),
        )
    }

    #[test]
    fn failure_absorbed_when_failure_mode_shrinks_demand() {
        // Normal: four 6-CPU workloads -> 2 servers (6+6 each). Failure
        // mode shrinks an affected workload to 2 CPUs, so losing either
        // server leaves 2+2 (affected, failure mode) + 6+6 (survivors,
        // normal mode) = 16 on the one remaining 16-way server.
        let normal = vec![wl("a", 6.0), wl("b", 6.0), wl("c", 6.0), wl("d", 6.0)];
        let failure = vec![wl("a", 2.0), wl("b", 2.0), wl("c", 2.0), wl("d", 2.0)];
        let c = consolidator(4);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 2);
        let analysis =
            analyze_single_failures(&c, &report, &normal, &failure, FailureScope::AffectedOnly)
                .unwrap();
        assert_eq!(analysis.cases.len(), 2);
        assert!(analysis.all_supported(), "{analysis:?}");
        assert!(!analysis.spare_needed());
        assert_eq!(analysis.worst_case_servers(), Some(1));
    }

    #[test]
    fn spare_needed_when_failure_mode_gives_no_relief() {
        // Three 10-CPU workloads on 3 servers; failure mode identical:
        // two survivors cannot host three 10s.
        let normal = vec![wl("a", 10.0), wl("b", 10.0), wl("c", 10.0)];
        let c = consolidator(8);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 3);
        let analysis =
            analyze_single_failures(&c, &report, &normal, &normal, FailureScope::AffectedOnly)
                .unwrap();
        assert!(analysis.spare_needed());
        assert!(analysis.cases.iter().all(|case| !case.is_supported()));
    }

    #[test]
    fn single_server_normal_mode_cannot_absorb_failure() {
        let normal = vec![wl("a", 2.0), wl("b", 2.0)];
        let c = consolidator(1);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 1);
        let analysis =
            analyze_single_failures(&c, &report, &normal, &normal, FailureScope::AffectedOnly)
                .unwrap();
        assert!(analysis.spare_needed());
    }

    #[test]
    fn only_affected_apps_switch_to_failure_mode() {
        // Two servers: {a: 12}, {b: 12}. Failure mode shrinks everything to
        // 3. Losing either server must still fit: survivor hosts its own
        // normal 12 + affected failure-mode 3 = 15 <= 16. If *all* apps had
        // switched to failure mode it would be 6; if none, 24. The case is
        // only supported under the mixed interpretation.
        let normal = vec![wl("a", 12.0), wl("b", 12.0)];
        let failure = vec![wl("a", 3.0), wl("b", 3.0)];
        let c = consolidator(6);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 2);
        let analysis =
            analyze_single_failures(&c, &report, &normal, &failure, FailureScope::AffectedOnly)
                .unwrap();
        assert!(analysis.all_supported());
        for case in &analysis.cases {
            let placement = case.placement.as_ref().unwrap();
            assert_eq!(placement.servers_used, 1);
            // The survivor's required capacity reflects 12 + 3, not 6 or 24.
            let total = placement.required_capacity_total;
            assert!((total - 15.0).abs() < 0.3, "required {total}");
        }
    }

    #[test]
    fn all_applications_scope_frees_more_capacity() {
        // Normal: two 12s on two servers. Failure mode: 3 each. With
        // AffectedOnly the survivor hosts 12 + 3 = 15; with
        // AllApplications it hosts 3 + 3 = 6. Both fit here, but the
        // whole-system scope must report the smaller required capacity.
        let normal = vec![wl("a", 12.0), wl("b", 12.0)];
        let failure = vec![wl("a", 3.0), wl("b", 3.0)];
        let c = consolidator(2);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        let affected_only =
            analyze_single_failures(&c, &report, &normal, &failure, FailureScope::AffectedOnly)
                .unwrap();
        let all_apps = analyze_single_failures(
            &c,
            &report,
            &normal,
            &failure,
            FailureScope::AllApplications,
        )
        .unwrap();
        assert!(affected_only.all_supported() && all_apps.all_supported());
        for (a, b) in affected_only.cases.iter().zip(&all_apps.cases) {
            let ra = a.placement.as_ref().unwrap().required_capacity_total;
            let rb = b.placement.as_ref().unwrap().required_capacity_total;
            assert!(rb < ra, "all-apps {rb} should be below affected-only {ra}");
        }
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        assert_eq!(
            combinations(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(combinations(3, 0), vec![Vec::<usize>::new()]);
        assert!(combinations(2, 3).is_empty());
    }

    #[test]
    fn double_failure_sweep_enumerates_all_pairs() {
        // Six 4-CPU workloads -> 2 per server on 16-ways? FFD packs four
        // per server (16/4): 2 servers of 3? 6 x 4 = 24 -> 2 servers.
        // Make it 3 servers: six 7-CPU workloads (two per server).
        let normal: Vec<Workload> = (0..6).map(|i| wl(&format!("w{i}"), 7.0)).collect();
        let failure: Vec<Workload> = (0..6).map(|i| wl(&format!("w{i}"), 2.0)).collect();
        let c = consolidator(3);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 3);
        let analysis = analyze_multi_failures(
            &c,
            &report,
            &normal,
            &failure,
            FailureScope::AllApplications,
            2,
        )
        .unwrap();
        // C(3, 2) = 3 pairs; with every app at 2 CPUs, 12 total fits one
        // surviving server.
        assert_eq!(analysis.cases.len(), 3);
        assert!(analysis.all_supported(), "{analysis:?}");
        assert_eq!(analysis.unsupported_count(), 0);
        for case in &analysis.cases {
            assert_eq!(case.failed_servers.len(), 2);
            assert_eq!(case.affected.len(), 4);
            assert_eq!(case.placement.as_ref().unwrap().servers_used, 1);
        }
    }

    #[test]
    fn double_failure_unsupported_without_relief() {
        let normal: Vec<Workload> = (0..6).map(|i| wl(&format!("w{i}"), 7.0)).collect();
        let c = consolidator(5);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        assert_eq!(report.servers_used, 3);
        let analysis =
            analyze_multi_failures(&c, &report, &normal, &normal, FailureScope::AffectedOnly, 2)
                .unwrap();
        // Six 7s cannot fit one 16-way survivor.
        assert_eq!(analysis.unsupported_count(), 3);
        assert!(!analysis.all_supported());
    }

    #[test]
    fn multi_failure_rejects_degenerate_k() {
        let normal = vec![wl("a", 2.0), wl("b", 2.0)];
        let c = consolidator(0);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        for k in [0, report.servers_used, report.servers_used + 1] {
            let err = analyze_multi_failures(
                &c,
                &report,
                &normal,
                &normal,
                FailureScope::AffectedOnly,
                k,
            )
            .unwrap_err();
            assert!(
                matches!(err, PlacementError::InvalidServer { .. }),
                "k = {k}"
            );
        }
    }

    #[test]
    fn mismatched_workload_vectors_are_rejected() {
        let normal = vec![wl("a", 1.0)];
        let c = consolidator(0);
        let report = c.consolidate(&normal, ObsCtx::none()).unwrap();
        let err = analyze_single_failures(&c, &report, &normal, &[], FailureScope::AffectedOnly)
            .unwrap_err();
        assert!(matches!(err, PlacementError::MisalignedWorkloads { .. }));
    }
}
