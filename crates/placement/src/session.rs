//! The incremental fit-engine session: the delta re-fit path behind
//! `ropus serve` and the thin-client batch report.
//!
//! A batch consolidation answers "how should this *fixed* fleet be
//! packed?". An [`EngineSession`] answers the online question: workloads
//! arrive ([`admit`](EngineSession::admit)), leave
//! ([`depart`](EngineSession::depart)), or move
//! ([`reassign`](EngineSession::reassign)) one at a time, and only the
//! *touched* servers' [`AggregateLoad`]s and required capacities are
//! invalidated and recomputed — the rest of the pool keeps its cached
//! results. Each mutation returns a [`PlanDelta`] naming the servers it
//! invalidated; [`refresh`](EngineSession::refresh) (or any read that
//! needs fresh numbers) recomputes exactly the stale set, fanning the
//! independent per-server binary searches over
//! [`parallel_map`].
//!
//! # Determinism
//!
//! A session's plan is a pure function of its final state (the member
//! *sets* per server), never of the delta history or thread count:
//!
//! * [`AggregateLoad`] sums its members in canonical (name-sorted) order
//!   regardless of admission order, so an incrementally maintained load
//!   is bit-identical to a cold build over the same set;
//! * each per-server required capacity is a pure function of that load,
//!   and [`parallel_map`] preserves input
//!   order, so recomputing stale servers in parallel is bit-identical to
//!   the serial path.
//!
//! The `session_matches_cold_replan` proptest in `tests/serve.rs` holds
//! this contract to arbitrary admit/depart/reassign sequences across
//! 1 and 4 threads.

use serde::{Deserialize, Serialize};

use ropus_qos::PoolCommitments;

use crate::consolidate::{PlacementReport, ServerPlacement};
use crate::engine::{parallel_map, EngineStats};
use crate::score::{assignment_score_with, ScoreModel, ServerOutcome};
use crate::server::ServerSpec;
use crate::simulator::{AggregateLoad, FitOptions, FitRequest};
use crate::workload::{validate_workloads, Workload};
use crate::PlacementError;

/// Stable identifier of a workload within one [`EngineSession`].
///
/// Ids are slot indices: the smallest free slot is reused after a
/// departure, so the id space stays dense and deterministic for any
/// admit/depart history.
pub type WorkloadId = u16;

/// What one session mutation (or refresh) did to the plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanDelta {
    /// Servers whose aggregate load or required capacity this operation
    /// invalidated (mutations) or recomputed (refresh), ascending.
    pub touched: Vec<usize>,
    /// Per-server required-capacity recomputations performed by this
    /// call; mutations defer recomputation, so theirs is 0.
    pub recomputed: usize,
}

/// One placed workload: the payload plus its current server.
#[derive(Debug, Clone)]
struct Entry {
    workload: Workload,
    server: usize,
    /// Destination server of an in-flight migration, if any: the
    /// workload still *serves* on [`Entry::server`] while the
    /// destination carries a capacity reservation for it.
    migrating_to: Option<usize>,
}

/// Per-server incremental state.
#[derive(Debug, Clone, Default)]
struct ServerState {
    /// Member workload ids, ascending.
    members: Vec<WorkloadId>,
    /// Ids reserved by in-flight migrations, ascending: their demand is
    /// booked into [`ServerState::load`] (double-booked with the source)
    /// but they are not members until the move commits.
    reserved: Vec<WorkloadId>,
    /// Incrementally maintained aggregate; `None` when the server is
    /// empty *or* the aggregate has not been built yet (after a bulk
    /// [`EngineSession::with_assignment`] load it is built on first
    /// refresh, in parallel with the required-capacity search).
    load: Option<AggregateLoad>,
    /// `None` = stale; `Some(r)` = computed, where `r` is `None` when
    /// the members do not fit at the server's capacity limit.
    required: Option<Option<f64>>,
}

impl ServerState {
    fn is_stale(&self) -> bool {
        self.required.is_none()
    }

    /// Whether neither members nor reservations occupy the server.
    fn is_vacant(&self) -> bool {
        self.members.is_empty() && self.reserved.is_empty()
    }

    /// Releases one workload from the aggregate (after a membership or
    /// reservation retain) and marks the fit stale.
    fn release(&mut self, name: &str) {
        self.load = match (self.is_vacant(), self.load.take()) {
            (true, _) | (false, None) => None,
            (false, Some(mut load)) => match load.remove(name) {
                Ok(_) => Some(load),
                // Unreachable in a consistent session; fall back to a
                // lazy rebuild rather than carrying a wrong aggregate.
                Err(_) => None,
            },
        };
        self.required = None;
    }
}

/// The incremental fit session. See the module docs for the contract.
#[derive(Debug)]
pub struct EngineSession {
    server: ServerSpec,
    commitments: PoolCommitments,
    tolerance: f64,
    threads: usize,
    entries: Vec<Option<Entry>>,
    servers: Vec<ServerState>,
    /// Cumulative per-server required-capacity recomputations.
    recomputes: u64,
}

impl EngineSession {
    /// Creates an empty session for one server type and commitment set.
    ///
    /// Defaults: tolerance 0.05 capacity units, serial refresh.
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is not positive.
    pub fn new(server: ServerSpec, commitments: PoolCommitments) -> Self {
        EngineSession {
            server,
            commitments,
            tolerance: 0.05,
            threads: 1,
            entries: Vec::new(),
            servers: Vec::new(),
            recomputes: 0,
        }
    }

    /// Sets the binary-search tolerance, in capacity units.
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is not positive.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.tolerance = tolerance;
        self
    }

    /// Sets the worker-thread count for refreshes; values below 1 are
    /// clamped to 1 (serial). Thread count never changes any result.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Bulk-loads a fleet under a given assignment — the cold-start path
    /// used by the batch report and by snapshot comparisons. Aggregates
    /// are built lazily on the first refresh so the whole pool is summed
    /// and searched on the worker pool in one pass.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] when the fleet fails
    /// [`validate_workloads`], contains duplicate names, or the
    /// assignment length differs from the fleet size.
    pub fn with_assignment(
        mut self,
        workloads: &[Workload],
        assignment: &[usize],
    ) -> Result<Self, PlacementError> {
        validate_workloads(workloads)?;
        if workloads.len() != assignment.len() {
            return Err(PlacementError::Infeasible {
                servers: self.servers.len(),
                message: format!(
                    "assignment covers {} workloads, fleet has {}",
                    assignment.len(),
                    workloads.len()
                ),
            });
        }
        assert!(
            self.entries.is_empty(),
            "bulk load requires a fresh session"
        );
        for (workload, &server) in workloads.iter().zip(assignment) {
            self.check_admissible(workload)?;
            let id = self.entries.len() as WorkloadId;
            self.entries.push(Some(Entry {
                workload: workload.clone(),
                server,
                migrating_to: None,
            }));
            self.server_mut(server).members.push(id);
        }
        Ok(self)
    }

    /// The server type.
    pub fn server(&self) -> ServerSpec {
        self.server
    }

    /// The pool commitments.
    pub fn commitments(&self) -> PoolCommitments {
        self.commitments
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of live (placed) workloads.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Whether no workload is placed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of servers the session has touched so far (including ones
    /// that are currently empty).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Cumulative per-server required-capacity recomputations — the
    /// quantity the incremental path exists to minimize.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Live workload ids, ascending.
    pub fn live_ids(&self) -> Vec<WorkloadId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i as WorkloadId)
            .collect()
    }

    /// The workload behind an id, if it is live.
    pub fn workload(&self, id: WorkloadId) -> Option<&Workload> {
        self.entry(id).map(|e| &e.workload)
    }

    /// The server an id is currently placed on, if it is live.
    pub fn assignment_of(&self, id: WorkloadId) -> Option<usize> {
        self.entry(id).map(|e| e.server)
    }

    /// Looks a live workload up by name.
    pub fn find(&self, name: &str) -> Option<WorkloadId> {
        self.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.workload.name() == name))
            .map(|i| i as WorkloadId)
    }

    /// Member ids of one server, ascending (empty for untouched servers).
    pub fn server_members(&self, server: usize) -> &[WorkloadId] {
        self.servers.get(server).map_or(&[], |s| &s.members)
    }

    fn entry(&self, id: WorkloadId) -> Option<&Entry> {
        self.entries.get(id as usize).and_then(Option::as_ref)
    }

    fn server_mut(&mut self, server: usize) -> &mut ServerState {
        if server >= self.servers.len() {
            self.servers.resize_with(server + 1, ServerState::default);
        }
        // lint:allow(panic-slice-index): resized to cover `server` above.
        &mut self.servers[server]
    }

    /// Validates a candidate against the live fleet: unique name, aligned
    /// calendar/length, whole weeks.
    fn check_admissible(&self, workload: &Workload) -> Result<(), PlacementError> {
        if self.find(workload.name()).is_some() {
            return Err(PlacementError::DuplicateWorkload {
                name: workload.name().to_string(),
            });
        }
        let anchor = self.entries.iter().flatten().next().map(|e| &e.workload);
        validate_workloads(anchor.into_iter().chain(std::iter::once(workload)))?;
        Ok(())
    }

    /// Admits one workload onto a server, invalidating only that server.
    /// Returns the workload's stable id and the delta.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] when the workload's name is already
    /// live, its traces are misaligned with the fleet, or it does not
    /// cover whole weeks.
    ///
    /// # Panics
    ///
    /// Panics if the session already holds `u16::MAX` slots.
    pub fn admit(
        &mut self,
        workload: Workload,
        server: usize,
    ) -> Result<(WorkloadId, PlanDelta), PlacementError> {
        self.check_admissible(&workload)?;
        let slot = self.entries.iter().position(Option::is_none);
        let id = match slot {
            Some(free) => free,
            None => {
                assert!(self.entries.len() < u16::MAX as usize, "session is full");
                self.entries.push(None);
                self.entries.len() - 1
            }
        } as WorkloadId;
        let delta = self.place(workload, server, id)?;
        Ok((id, delta))
    }

    /// Inserts a validated workload into a known-empty slot on a server,
    /// maintaining that server's membership and aggregate.
    fn place(
        &mut self,
        workload: Workload,
        server: usize,
        id: WorkloadId,
    ) -> Result<PlanDelta, PlacementError> {
        let state = self.server_mut(server);
        let at = state.members.partition_point(|&m| m < id);
        state.members.insert(at, id);
        // Maintain the aggregate incrementally when it exists; a lazy
        // (not-yet-built) aggregate stays lazy.
        let mut load_err = None;
        if let Some(load) = state.load.as_mut() {
            if let Err(e) = load.add(&workload) {
                load_err = Some(e);
            }
        } else if state.members.len() == 1 && state.reserved.is_empty() {
            match AggregateLoad::of(&[&workload]) {
                Ok(load) => state.load = Some(load),
                Err(e) => load_err = Some(e),
            }
        }
        if let Some(e) = load_err {
            // Roll the membership back so the session stays consistent.
            state.members.retain(|&m| m != id);
            return Err(e);
        }
        state.required = None;
        // lint:allow(panic-slice-index): callers pass an id that indexes
        // `entries` (a reused free slot, a freshly pushed one, or the
        // slot a reassign just vacated).
        self.entries[id as usize] = Some(Entry {
            workload,
            server,
            migrating_to: None,
        });
        Ok(PlanDelta {
            touched: vec![server],
            recomputed: 0,
        })
    }

    /// Removes one workload, invalidating only its server (plus the
    /// destination of any in-flight migration, which is rolled back
    /// first). Returns the departed workload and the delta.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownWorkload`] when the id is not
    /// live.
    pub fn depart(&mut self, id: WorkloadId) -> Result<(Workload, PlanDelta), PlacementError> {
        let mut extra = Vec::new();
        if self.entry(id).is_some_and(|e| e.migrating_to.is_some()) {
            extra = self.rollback_migration(id)?.touched;
        }
        let entry = self
            .entries
            .get_mut(id as usize)
            .and_then(Option::take)
            .ok_or_else(|| PlacementError::UnknownWorkload {
                name: format!("#{id}"),
            })?;
        let state = self.server_mut(entry.server);
        state.members.retain(|&m| m != id);
        state.release(entry.workload.name());
        let mut touched = vec![entry.server];
        touched.extend(extra);
        touched.sort_unstable();
        touched.dedup();
        Ok((
            entry.workload,
            PlanDelta {
                touched,
                recomputed: 0,
            },
        ))
    }

    /// Moves one workload to another server — the single-workload re-fit
    /// — invalidating exactly the two touched servers. Equivalent to a
    /// zero-cost migration: [`begin_migration`](Self::begin_migration)
    /// and [`commit_migration`](Self::commit_migration) back to back,
    /// which leaves the exact same per-server aggregates bit-for-bit as
    /// the historical depart-and-place path (same add on the
    /// destination, same remove on the source).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownWorkload`] when the id is not
    /// live.
    pub fn reassign(&mut self, id: WorkloadId, server: usize) -> Result<PlanDelta, PlacementError> {
        let from = self
            .assignment_of(id)
            .ok_or_else(|| PlacementError::UnknownWorkload {
                name: format!("#{id}"),
            })?;
        if self.entry(id).is_some_and(|e| e.migrating_to.is_some()) {
            self.rollback_migration(id)?;
        }
        if from == server {
            return Ok(PlanDelta::default());
        }
        self.begin_migration(id, server)?;
        self.commit_migration(id)
    }

    /// Opens a migration of one workload to `to`: the destination books
    /// the workload's demand into its aggregate (double-booked with the
    /// source, which keeps serving) and is invalidated; the source is
    /// untouched. The move stays open until
    /// [`commit_migration`](Self::commit_migration) or
    /// [`rollback_migration`](Self::rollback_migration).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownWorkload`] when the id is not
    /// live and [`PlacementError::InvalidServer`] when the workload is
    /// already migrating or `to` is its current server.
    pub fn begin_migration(
        &mut self,
        id: WorkloadId,
        to: usize,
    ) -> Result<PlanDelta, PlacementError> {
        let entry = self
            .entry(id)
            .ok_or_else(|| PlacementError::UnknownWorkload {
                name: format!("#{id}"),
            })?;
        if entry.migrating_to.is_some() {
            return Err(PlacementError::InvalidServer {
                message: format!("workload #{id} is already migrating"),
            });
        }
        if entry.server == to {
            return Err(PlacementError::InvalidServer {
                message: format!("workload #{id} already serves on server {to}"),
            });
        }
        let workload = entry.workload.clone();
        let state = self.server_mut(to);
        let at = state.reserved.partition_point(|&m| m < id);
        state.reserved.insert(at, id);
        let mut load_err = None;
        if let Some(load) = state.load.as_mut() {
            if let Err(e) = load.add(&workload) {
                load_err = Some(e);
            }
        } else if state.members.is_empty() && state.reserved.len() == 1 {
            match AggregateLoad::of(&[&workload]) {
                Ok(load) => state.load = Some(load),
                Err(e) => load_err = Some(e),
            }
        }
        if let Some(e) = load_err {
            state.reserved.retain(|&m| m != id);
            return Err(e);
        }
        state.required = None;
        if let Some(entry) = self.entries.get_mut(id as usize).and_then(Option::as_mut) {
            entry.migrating_to = Some(to);
        }
        Ok(PlanDelta {
            touched: vec![to],
            recomputed: 0,
        })
    }

    /// Commits an open migration: the source releases the workload, the
    /// destination promotes its reservation to membership. The
    /// destination's aggregate already carries the workload, so only the
    /// source is invalidated by the release; the membership flip itself
    /// changes no demand.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownWorkload`] when the id is not
    /// live and [`PlacementError::InvalidServer`] when no migration is
    /// open for it.
    pub fn commit_migration(&mut self, id: WorkloadId) -> Result<PlanDelta, PlacementError> {
        let (from, to, name) = self.open_migration(id)?;
        let state = self.server_mut(from);
        state.members.retain(|&m| m != id);
        state.release(&name);
        let state = self.server_mut(to);
        state.reserved.retain(|&m| m != id);
        let at = state.members.partition_point(|&m| m < id);
        state.members.insert(at, id);
        if let Some(entry) = self.entries.get_mut(id as usize).and_then(Option::as_mut) {
            entry.server = to;
            entry.migrating_to = None;
        }
        Ok(PlanDelta {
            touched: vec![from.min(to), from.max(to)],
            recomputed: 0,
        })
    }

    /// Rolls an open migration back: the destination releases its
    /// reservation and is invalidated. The source was never mutated by
    /// the migration, so its aggregate and cached fit are bit-exactly
    /// what they were before [`begin_migration`](Self::begin_migration)
    /// — the nothing-subtracted invariant the rollback proptest holds.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownWorkload`] when the id is not
    /// live and [`PlacementError::InvalidServer`] when no migration is
    /// open for it.
    pub fn rollback_migration(&mut self, id: WorkloadId) -> Result<PlanDelta, PlacementError> {
        let (_, to, name) = self.open_migration(id)?;
        let state = self.server_mut(to);
        state.reserved.retain(|&m| m != id);
        state.release(&name);
        if let Some(entry) = self.entries.get_mut(id as usize).and_then(Option::as_mut) {
            entry.migrating_to = None;
        }
        Ok(PlanDelta {
            touched: vec![to],
            recomputed: 0,
        })
    }

    /// The open migration of `id` as `(from, to, name)`.
    fn open_migration(&self, id: WorkloadId) -> Result<(usize, usize, String), PlacementError> {
        let entry = self
            .entry(id)
            .ok_or_else(|| PlacementError::UnknownWorkload {
                name: format!("#{id}"),
            })?;
        let to = entry
            .migrating_to
            .ok_or_else(|| PlacementError::InvalidServer {
                message: format!("workload #{id} is not migrating"),
            })?;
        Ok((entry.server, to, entry.workload.name().to_string()))
    }

    /// Destination of the workload's in-flight migration, if one is
    /// open.
    pub fn migrating_to(&self, id: WorkloadId) -> Option<usize> {
        self.entry(id).and_then(|e| e.migrating_to)
    }

    /// Ids reserved on one server by in-flight migrations, ascending.
    pub fn server_reserved(&self, server: usize) -> &[WorkloadId] {
        self.servers.get(server).map_or(&[], |s| &s.reserved)
    }

    /// Required capacity of the named server's current members at the
    /// session tolerance, answering from cache unless the server is
    /// stale. `Some(0.0)` for empty servers, `None` when the members do
    /// not fit at the server's capacity limit.
    pub fn server_required(&mut self, server: usize) -> Option<f64> {
        if self
            .servers
            .get(server)
            .is_none_or(|state| !state.is_stale())
        {
            return self
                .servers
                .get(server)
                .and_then(|s| s.required)
                .unwrap_or(Some(0.0));
        }
        self.refresh();
        self.servers.get(server).and_then(|s| s.required)?
    }

    /// Probes an admission without mutating the session: the capacity the
    /// server would require with `workload` added to its current members,
    /// or `None` when the enlarged set does not fit.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] when the workload fails admission
    /// validation (duplicate name, misaligned, partial weeks).
    pub fn probe(&self, workload: &Workload, server: usize) -> Result<Option<f64>, PlacementError> {
        self.check_admissible(workload)?;
        let mut refs: Vec<&Workload> = self
            .server_members(server)
            .iter()
            .chain(self.server_reserved(server))
            .filter_map(|&id| self.workload(id))
            .collect();
        refs.push(workload);
        let load = AggregateLoad::of(&refs)?;
        Ok(self.required_of(&load))
    }

    fn fit_options(&self) -> FitOptions {
        FitOptions::new()
            .with_memory_capacity(self.server.memory_gb())
            .with_tolerance(self.tolerance)
    }

    fn required_of(&self, load: &AggregateLoad) -> Option<f64> {
        FitRequest::new(load, &self.commitments)
            .with_options(self.fit_options())
            .required_capacity(self.server.capacity())
    }

    /// Recomputes every stale server's aggregate and required capacity,
    /// fanning the independent per-server searches over the worker pool.
    /// Untouched servers are left alone — this is the delta re-fit.
    pub fn refresh(&mut self) -> PlanDelta {
        let stale: Vec<usize> = (0..self.servers.len())
            .filter(|&s| {
                // lint:allow(panic-slice-index): s ranges over the vec.
                let state = &self.servers[s];
                state.is_stale() && !state.is_vacant()
            })
            .collect();
        // Settle trivially-vacant stale servers without a search.
        for state in &mut self.servers {
            if state.is_stale() && state.is_vacant() {
                state.required = Some(Some(0.0));
            }
        }
        if stale.is_empty() {
            return PlanDelta::default();
        }
        // Per stale server: the maintained aggregate when present, else
        // the member refs to build one from. Pure per-server work, so the
        // parallel fan-out is bit-identical to the serial path.
        let work: Vec<(Option<&AggregateLoad>, Vec<&Workload>)> = stale
            .iter()
            .map(|&s| {
                // lint:allow(panic-slice-index): stale indices come from
                // the 0..len scan above.
                let state = &self.servers[s];
                // Reserved (migrating-in) workloads count toward the fit
                // exactly like members: their demand is double-booked
                // until the move commits or rolls back.
                let refs = state
                    .members
                    .iter()
                    .chain(&state.reserved)
                    .filter_map(|&id| self.entry(id).map(|e| &e.workload))
                    .collect();
                (state.load.as_ref(), refs)
            })
            .collect();
        let results: Vec<(Option<AggregateLoad>, Option<f64>)> =
            parallel_map(self.threads, &work, |(load, refs)| match load {
                Some(load) => (None, self.required_of(load)),
                None => match AggregateLoad::of(refs) {
                    Ok(load) => {
                        let required = self.required_of(&load);
                        (Some(load), required)
                    }
                    // Unreachable for a consistent session (members were
                    // validated on admission); surface as "does not fit".
                    Err(_) => (None, None),
                },
            });
        let recomputed = results.len();
        for (&s, (built, required)) in stale.iter().zip(results) {
            // lint:allow(panic-slice-index): stale indices are in range.
            let state = &mut self.servers[s];
            if let Some(load) = built {
                state.load = Some(load);
            }
            state.required = Some(required);
        }
        self.recomputes = self.recomputes.saturating_add(recomputed as u64);
        PlanDelta {
            touched: stale,
            recomputed,
        }
    }

    /// The live plan as a [`PlacementReport`], refreshing stale servers
    /// first.
    ///
    /// Workload indices in the report refer to positions in the live-id
    /// order (ascending [`WorkloadId`]); [`live_ids`](Self::live_ids)
    /// maps them back to session ids. The report's `stats` are default
    /// (session counters live in [`recomputes`](Self::recomputes)), so
    /// two reports of the same final state serialize byte-identically
    /// regardless of delta history or thread count.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NoWorkloads`] for an empty session and
    /// [`PlacementError::Infeasible`] when a server's members no longer
    /// fit at the capacity limit.
    pub fn report(&mut self) -> Result<PlacementReport, PlacementError> {
        if self.is_empty() {
            return Err(PlacementError::NoWorkloads);
        }
        self.refresh();
        let live = self.live_ids();
        let position_of = |id: WorkloadId| -> usize { live.partition_point(|&l| l < id) };
        let mut assignment = Vec::with_capacity(live.len());
        for &id in &live {
            // lint:allow(panic-expect): live ids are live by definition.
            let server = self.assignment_of(id).expect("live id has a server");
            assignment.push(server);
        }
        let mut servers = Vec::new();
        let mut outcomes = Vec::with_capacity(self.servers.len());
        for (index, state) in self.servers.iter().enumerate() {
            // Empty servers contribute nothing: a touched-but-vacated
            // server must not change the score, or the report would
            // depend on the delta history rather than the final state.
            if state.members.is_empty() {
                continue;
            }
            let required = state
                .required
                .flatten()
                .ok_or_else(|| PlacementError::Infeasible {
                    servers: self.servers.len(),
                    message: format!("server {index} does not satisfy commitments"),
                })?;
            let utilization = required / self.server.capacity();
            outcomes.push(ServerOutcome::Fits {
                required,
                utilization,
            });
            servers.push(ServerPlacement {
                server: index,
                workloads: state.members.iter().map(|&id| position_of(id)).collect(),
                required_capacity: required,
                utilization,
            });
        }
        let score = assignment_score_with(&outcomes, ScoreModel::PowerTwoZ, self.server.cpus());
        let required_capacity_total = servers.iter().map(|s| s.required_capacity).sum();
        let peak_allocation_total = live
            .iter()
            .filter_map(|&id| self.workload(id))
            .map(Workload::total_peak)
            .sum();
        Ok(PlacementReport {
            servers_used: servers.len(),
            assignment,
            required_capacity_total,
            peak_allocation_total,
            score,
            servers,
            stats: EngineStats::default(),
            obs: None,
        })
    }

    /// Per-server placements of the current assignment, refreshed — the
    /// piece of [`report`](Self::report) the batch consolidation report
    /// consumes as a thin client.
    ///
    /// # Errors
    ///
    /// As for [`report`](Self::report).
    pub fn server_placements(&mut self) -> Result<Vec<ServerPlacement>, PlacementError> {
        Ok(self.report()?.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;
    use ropus_trace::{Calendar, Trace};

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn commitments(theta: f64) -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(theta, 60).unwrap())
    }

    fn wl(name: &str, c2: f64) -> Workload {
        Workload::new(
            name,
            Trace::constant(cal(), 0.0, cal().slots_per_week()).unwrap(),
            Trace::constant(cal(), c2, cal().slots_per_week()).unwrap(),
        )
        .unwrap()
    }

    fn session() -> EngineSession {
        EngineSession::new(ServerSpec::sixteen_way(), commitments(1.0))
    }

    #[test]
    fn admit_depart_touch_only_their_server() {
        let mut s = session();
        let (a, delta) = s.admit(wl("a", 2.0), 0).unwrap();
        assert_eq!(delta.touched, vec![0]);
        let (_b, delta) = s.admit(wl("b", 3.0), 1).unwrap();
        assert_eq!(delta.touched, vec![1]);
        let refreshed = s.refresh();
        assert_eq!(refreshed.touched, vec![0, 1]);
        assert_eq!(refreshed.recomputed, 2);
        // A third admission onto server 1 leaves server 0's cache alone.
        let (_c, _) = s.admit(wl("c", 1.0), 1).unwrap();
        let refreshed = s.refresh();
        assert_eq!(refreshed.touched, vec![1]);
        assert_eq!(refreshed.recomputed, 1);
        assert_eq!(s.recomputes(), 3);
        // Departing `a` empties server 0: required settles to 0 without
        // a search.
        let (gone, delta) = s.depart(a).unwrap();
        assert_eq!(gone.name(), "a");
        assert_eq!(delta.touched, vec![0]);
        assert_eq!(s.refresh().recomputed, 0);
        assert_eq!(s.server_required(0), Some(0.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ids_reuse_the_smallest_free_slot() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 1.0), 0).unwrap();
        let (b, _) = s.admit(wl("b", 1.0), 0).unwrap();
        assert_eq!((a, b), (0, 1));
        s.depart(a).unwrap();
        let (c, _) = s.admit(wl("c", 1.0), 0).unwrap();
        assert_eq!(c, 0, "freed slot is reused");
        assert_eq!(s.find("c"), Some(0));
        assert_eq!(s.find("b"), Some(1));
        assert_eq!(s.live_ids(), vec![0, 1]);
    }

    #[test]
    fn duplicate_and_misaligned_admissions_are_rejected() {
        let mut s = session();
        s.admit(wl("a", 1.0), 0).unwrap();
        assert!(matches!(
            s.admit(wl("a", 2.0), 1),
            Err(PlacementError::DuplicateWorkload { .. })
        ));
        let short = Workload::new(
            "s",
            Trace::constant(cal(), 0.0, 100).unwrap(),
            Trace::constant(cal(), 1.0, 100).unwrap(),
        )
        .unwrap();
        assert!(s.admit(short, 0).is_err());
        assert_eq!(s.len(), 1, "failed admissions leave no residue");
        assert_eq!(s.server_members(0), &[0]);
    }

    #[test]
    fn reassign_touches_both_servers_and_keeps_id() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 2.0), 0).unwrap();
        let (_b, _) = s.admit(wl("b", 3.0), 0).unwrap();
        s.refresh();
        let delta = s.reassign(a, 2).unwrap();
        assert_eq!(delta.touched, vec![0, 2]);
        assert_eq!(s.assignment_of(a), Some(2));
        assert_eq!(s.reassign(a, 2).unwrap(), PlanDelta::default());
        assert!(s.reassign(99, 0).is_err());
    }

    #[test]
    fn reassign_keeps_id_even_with_lower_free_slots() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 1.0), 0).unwrap();
        let (b, _) = s.admit(wl("b", 1.0), 0).unwrap();
        // Slot 0 becomes a hole; the move must not migrate b into it.
        s.depart(a).unwrap();
        s.reassign(b, 1).unwrap();
        assert_eq!(s.find("b"), Some(b));
        assert_eq!(s.assignment_of(b), Some(1));
        assert_eq!(s.live_ids(), vec![b]);
    }

    #[test]
    fn server_required_matches_batch_simulator() {
        let mut s = session();
        s.admit(wl("a", 2.0), 0).unwrap();
        s.admit(wl("b", 3.0), 0).unwrap();
        let required = s.server_required(0).unwrap();
        let (a, b) = (wl("a", 2.0), wl("b", 3.0));
        let load = AggregateLoad::of(&[&a, &b]).unwrap();
        let expected = FitRequest::new(&load, &commitments(1.0))
            .with_options(
                FitOptions::new()
                    .with_memory_capacity(ServerSpec::sixteen_way().memory_gb())
                    .with_tolerance(0.05),
            )
            .required_capacity(16.0)
            .unwrap();
        assert_eq!(required.to_bits(), expected.to_bits());
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut s = session();
        s.admit(wl("a", 10.0), 0).unwrap();
        let fits = s.probe(&wl("b", 5.0), 0).unwrap();
        assert!(fits.is_some());
        let overflow = s.probe(&wl("big", 10.0), 0).unwrap();
        assert!(overflow.is_none(), "20 > 16 cannot fit");
        assert!(s.probe(&wl("a", 1.0), 0).is_err(), "duplicate name");
        assert_eq!(s.len(), 1);
        assert_eq!(s.server_members(0), &[0]);
    }

    #[test]
    fn report_matches_bulk_assignment_build() {
        let fleet = vec![wl("a", 2.0), wl("b", 9.0), wl("c", 9.0)];
        let assignment = vec![0, 0, 1];
        let mut incremental = session().with_threads(4);
        for (w, &srv) in fleet.iter().zip(&assignment) {
            incremental.admit(w.clone(), srv).unwrap();
        }
        let mut bulk = session().with_assignment(&fleet, &assignment).unwrap();
        let a = incremental.report().unwrap();
        let b = bulk.report().unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "byte-identical across delta history and thread count"
        );
        assert_eq!(a.servers_used, 2);
        assert_eq!(a.assignment, assignment);
    }

    #[test]
    fn report_positions_compact_over_free_slots() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 1.0), 0).unwrap();
        s.admit(wl("b", 1.0), 1).unwrap();
        s.admit(wl("c", 1.0), 1).unwrap();
        s.depart(a).unwrap();
        let report = s.report().unwrap();
        // Live ids are [1, 2] -> positions [0, 1] on server 1.
        assert_eq!(report.assignment, vec![1, 1]);
        assert_eq!(report.servers.len(), 1);
        assert_eq!(report.servers[0].workloads, vec![0, 1]);
    }

    #[test]
    fn migration_double_books_until_commit() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 4.0), 0).unwrap();
        s.admit(wl("b", 3.0), 1).unwrap();
        let source_before = s.server_required(0).unwrap();
        let dest_alone = s.server_required(1).unwrap();
        let delta = s.begin_migration(a, 1).unwrap();
        assert_eq!(delta.touched, vec![1], "source is untouched");
        assert_eq!(s.migrating_to(a), Some(1));
        assert_eq!(s.server_reserved(1), &[a]);
        // Mid-move, both servers carry the workload's demand.
        assert_eq!(
            s.server_required(0).unwrap().to_bits(),
            source_before.to_bits()
        );
        assert!(s.server_required(1).unwrap() > dest_alone);
        let delta = s.commit_migration(a).unwrap();
        assert_eq!(delta.touched, vec![0, 1]);
        assert_eq!(s.assignment_of(a), Some(1));
        assert_eq!(s.migrating_to(a), None);
        assert!(s.server_reserved(1).is_empty());
        assert_eq!(s.server_required(0), Some(0.0));
    }

    #[test]
    fn rollback_restores_both_servers_bit_exactly() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 4.0), 0).unwrap();
        s.admit(wl("b", 3.0), 1).unwrap();
        let source_before = s.server_required(0).unwrap();
        let dest_before = s.server_required(1).unwrap();
        s.begin_migration(a, 1).unwrap();
        let delta = s.rollback_migration(a).unwrap();
        assert_eq!(delta.touched, vec![1]);
        assert_eq!(s.migrating_to(a), None);
        assert_eq!(s.assignment_of(a), Some(0));
        // Nothing was ever subtracted from the source, and the
        // destination released exactly what it booked.
        assert_eq!(
            s.server_required(0).unwrap().to_bits(),
            source_before.to_bits()
        );
        assert_eq!(
            s.server_required(1).unwrap().to_bits(),
            dest_before.to_bits()
        );
    }

    #[test]
    fn migration_guards_reject_bad_states() {
        let mut s = session();
        let (a, _) = s.admit(wl("a", 1.0), 0).unwrap();
        assert!(matches!(
            s.begin_migration(a, 0),
            Err(PlacementError::InvalidServer { .. })
        ));
        assert!(matches!(
            s.commit_migration(a),
            Err(PlacementError::InvalidServer { .. })
        ));
        s.begin_migration(a, 1).unwrap();
        assert!(matches!(
            s.begin_migration(a, 2),
            Err(PlacementError::InvalidServer { .. })
        ));
        assert!(s.begin_migration(99, 1).is_err());
        // A departure mid-move rolls the reservation back first.
        let (_, delta) = s.depart(a).unwrap();
        assert_eq!(delta.touched, vec![0, 1]);
        assert_eq!(s.server_required(1), Some(0.0));
        assert!(s.server_reserved(1).is_empty());
    }

    #[test]
    fn reassign_equals_begin_plus_commit() {
        let fleet = [wl("a", 2.0), wl("b", 3.0)];
        let mut via_reassign = session();
        let mut via_migration = session();
        for s in [&mut via_reassign, &mut via_migration] {
            for (i, w) in fleet.iter().enumerate() {
                s.admit(w.clone(), i).unwrap();
            }
        }
        via_reassign.reassign(0, 1).unwrap();
        via_migration.begin_migration(0, 1).unwrap();
        via_migration.commit_migration(0).unwrap();
        let a = via_reassign.report().unwrap();
        let b = via_migration.report().unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn infeasible_server_is_reported() {
        let mut s = session();
        s.admit(wl("a", 20.0), 0).unwrap();
        assert_eq!(s.server_required(0), None);
        assert!(matches!(s.report(), Err(PlacementError::Infeasible { .. })));
        assert!(matches!(
            session().report(),
            Err(PlacementError::NoWorkloads)
        ));
    }
}
