use std::fmt;

use ropus_trace::TraceError;

/// Error raised by the workload placement service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementError {
    /// No workloads were supplied.
    NoWorkloads,
    /// Workload traces are not aligned to the same calendar and length.
    MisalignedWorkloads {
        /// Name of the offending workload.
        name: String,
    },
    /// Workload traces must cover whole weeks for the `θ` measurement.
    PartialWeeks {
        /// Name of the offending workload.
        name: String,
    },
    /// A server specification was invalid (zero CPUs or capacity).
    InvalidServer {
        /// Reason the spec was rejected.
        message: String,
    },
    /// The workloads cannot be placed on the available pool while meeting
    /// the resource access commitments.
    Infeasible {
        /// Number of servers that were available.
        servers: usize,
        /// Human-readable explanation (e.g. which constraint failed).
        message: String,
    },
    /// A session already holds a workload with this name.
    DuplicateWorkload {
        /// Name of the offending workload.
        name: String,
    },
    /// A session operation referenced a workload that is not present.
    UnknownWorkload {
        /// Name (or `#id`) of the missing workload.
        name: String,
    },
    /// The underlying trace layer reported an error.
    Trace(TraceError),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoWorkloads => write!(f, "no workloads supplied"),
            PlacementError::MisalignedWorkloads { name } => {
                write!(f, "workload {name} is not aligned with the others")
            }
            PlacementError::PartialWeeks { name } => {
                write!(f, "workload {name} does not cover whole weeks")
            }
            PlacementError::InvalidServer { message } => {
                write!(f, "invalid server specification: {message}")
            }
            PlacementError::Infeasible { servers, message } => {
                write!(f, "placement infeasible on {servers} servers: {message}")
            }
            PlacementError::DuplicateWorkload { name } => {
                write!(f, "workload {name} is already placed in the session")
            }
            PlacementError::UnknownWorkload { name } => {
                write!(f, "workload {name} is not present in the session")
            }
            PlacementError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for PlacementError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlacementError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for PlacementError {
    fn from(err: TraceError) -> Self {
        PlacementError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errors = [
            PlacementError::NoWorkloads,
            PlacementError::MisalignedWorkloads { name: "a".into() },
            PlacementError::PartialWeeks { name: "b".into() },
            PlacementError::InvalidServer {
                message: "zero cpus".into(),
            },
            PlacementError::Infeasible {
                servers: 3,
                message: "cos1 overflow".into(),
            },
            PlacementError::DuplicateWorkload { name: "d".into() },
            PlacementError::UnknownWorkload { name: "u".into() },
            PlacementError::Trace(TraceError::Empty),
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PlacementError>();
    }
}
