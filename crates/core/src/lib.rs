//! # R-Opus
//!
//! A reproduction of **"R-Opus: A Composite Framework for Application
//! Performability and QoS in Shared Resource Pools"** (Cherkasova & Rolia,
//! DSN 2006) as a production-quality Rust workspace.
//!
//! R-Opus automates capacity management for shared server pools. Four
//! pieces compose:
//!
//! 1. **Application QoS requirements** (`ropus-qos`): per application, an
//!    acceptable utilization-of-allocation band `(U_low, U_high)` plus a
//!    bounded, time-limited degradation allowance — specified independently
//!    for normal operation and for operation while a server failure is
//!    outstanding.
//! 2. **Resource pool CoS commitments** (`ropus-qos`): a guaranteed class
//!    and a statistical class with access probability `θ` and deadline `s`.
//! 3. **QoS translation** (`ropus-qos::translation`): the portfolio method
//!    that divides each application's demand across the two classes so its
//!    QoS holds whenever the pool honours its commitments.
//! 4. **Workload placement** (`ropus-placement`): a trace-replay fit
//!    simulator plus a genetic-algorithm consolidation search, with
//!    single-failure planning.
//!
//! This crate is the facade: [`Framework`] runs the whole pipeline
//! (translate → consolidate → failure sweep), and [`case_study`] packages
//! the paper's §VII evaluation setup.
//!
//! # Quickstart
//!
//! ```
//! use ropus::prelude::*;
//!
//! # fn main() -> Result<(), ropus::FrameworkError> {
//! // 1. Synthesize a small fleet (stand-in for monitored demand traces).
//! let fleet = case_study_fleet(&FleetConfig { apps: 4, weeks: 1, ..FleetConfig::paper() });
//!
//! // 2. Describe requirements and pool commitments.
//! let policy = QosPolicy {
//!     normal: AppQos::paper_default(Some(30)),
//!     failure: AppQos::paper_default(None),
//! };
//! let commitments = PoolCommitments::new(CosSpec::new(0.9, 60)?);
//!
//! // 3. Plan capacity.
//! let framework = Framework::builder()
//!     .server(ServerSpec::sixteen_way())
//!     .commitments(commitments)
//!     .options(ConsolidationOptions::fast(1))
//!     .build();
//! let apps: Vec<AppSpec> = fleet
//!     .into_iter()
//!     .map(|app| AppSpec::new(app.name, app.trace, policy))
//!     .collect();
//! let plan = framework.plan(&apps)?;
//! assert!(plan.normal_placement.servers_used >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod framework;

pub mod case_study;
pub mod chaos;
pub mod daemon;
pub mod lifecycle;
pub mod planning;
pub mod runtime;

pub use error::FrameworkError;
pub use framework::{AppPlan, AppSpec, CapacityPlan, Framework, FrameworkBuilder, PlanRequest};

/// One-stop imports for typical R-Opus use.
pub mod prelude {
    pub use crate::case_study::{self, CaseConfig, CaseResult};
    pub use crate::daemon::admission::{
        AdmissionContext, AdmissionDecision, AdmissionPolicy, BestFit, FirstFit, ServerProbe,
    };
    pub use crate::daemon::protocol::{Command, DemandSpec, Response, ServeStats};
    pub use crate::daemon::{Daemon, DaemonConfig};
    pub use crate::lifecycle::{EpochOutcome, LifecycleReport};
    pub use crate::planning::{estimate_weekly_growth, CapacityForecast, ForecastEntry};
    pub use crate::runtime::{AppRuntimeOutcome, PoolRuntimeReport};
    pub use crate::{AppPlan, AppSpec, CapacityPlan, Framework, FrameworkError, PlanRequest};
    pub use ropus_chaos::{
        AppChaosOutcome, ChaosApp, ChaosError, ChaosReport, DegradationPolicy, DegradedWindow,
        FailureEvent, FailureSchedule, ReplayOptions, StochasticProfile,
    };
    pub use ropus_obs::{
        AlertEvent, AlertKind, BurnRateRule, NullClock, Obs, ObsCtx, ObsReport, SloAttainment,
        SloContract, SloEngine, SloSummary, WallClock,
    };
    pub use ropus_placement::consolidate::{ConsolidationOptions, Consolidator, PlacementReport};
    pub use ropus_placement::engine::{EngineStats, FitEngine};
    pub use ropus_placement::failure::{FailureAnalysis, FailureScope};
    pub use ropus_placement::ga::GaOptions;
    pub use ropus_placement::greedy::GreedyPolicy;
    pub use ropus_placement::migration::{
        MigrationConfig, MigrationOrchestrator, MigrationPhase, MigrationReport,
    };
    pub use ropus_placement::server::{Pool, ServerSpec};
    pub use ropus_placement::session::{EngineSession, PlanDelta, WorkloadId};
    pub use ropus_placement::workload::Workload;
    pub use ropus_qos::translation::{translate, Translation, TranslationReport};
    pub use ropus_qos::{
        AppQos, CosSpec, DegradationSpec, PoolCommitments, QosPolicy, UtilizationBand,
    };
    pub use ropus_trace::gen::{case_study_fleet, FleetConfig, WorkloadProfile};
    pub use ropus_trace::{Calendar, Trace};
}
