//! The paper's §VII case study, packaged for reuse by tests, examples, and
//! the benchmark harness.
//!
//! The study evaluates 26 enterprise order-entry applications over four
//! weeks of 5-minute CPU demand traces (synthesized here — see
//! `ropus-trace::gen`), under the QoS grid of Table I:
//!
//! | case | `M_degr` | `θ`  | `T_degr` |
//! |------|----------|------|----------|
//! | 1    | 0%       | 0.60 | —        |
//! | 2    | 3%       | 0.60 | 30 min   |
//! | 3    | 3%       | 0.60 | —        |
//! | 4    | 0%       | 0.95 | —        |
//! | 5    | 3%       | 0.95 | 30 min   |
//! | 6    | 3%       | 0.95 | —        |
//!
//! with band `(U_low, U_high) = (0.5, 0.66)`, `U_degr = 0.9`, a 60-minute
//! CoS2 deadline, and 16-way servers.

use serde::{Deserialize, Serialize};

use ropus_obs::ObsCtx;
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator, PlacementReport};
use ropus_placement::engine::parallel_map;
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;
use ropus_qos::translation::{translate, TranslationReport};
use ropus_qos::{AppQos, CosSpec, DegradationSpec, PoolCommitments, UtilizationBand};
use ropus_trace::gen::AppWorkload;

use crate::FrameworkError;

/// One row configuration of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseConfig {
    /// Case number as used in the paper (1–6).
    pub id: usize,
    /// Fraction of measurements allowed to be degraded (`M_degr`).
    pub m_degr: f64,
    /// Resource access probability of CoS2.
    pub theta: f64,
    /// Time limit on contiguous degradation, minutes (`T_degr`).
    pub t_degr: Option<u32>,
}

impl CaseConfig {
    /// The six Table I cases.
    pub fn table1() -> [CaseConfig; 6] {
        [
            CaseConfig {
                id: 1,
                m_degr: 0.0,
                theta: 0.60,
                t_degr: None,
            },
            CaseConfig {
                id: 2,
                m_degr: 0.03,
                theta: 0.60,
                t_degr: Some(30),
            },
            CaseConfig {
                id: 3,
                m_degr: 0.03,
                theta: 0.60,
                t_degr: None,
            },
            CaseConfig {
                id: 4,
                m_degr: 0.0,
                theta: 0.95,
                t_degr: None,
            },
            CaseConfig {
                id: 5,
                m_degr: 0.03,
                theta: 0.95,
                t_degr: Some(30),
            },
            CaseConfig {
                id: 6,
                m_degr: 0.03,
                theta: 0.95,
                t_degr: None,
            },
        ]
    }

    /// The application QoS requirement this case imposes.
    pub fn app_qos(&self) -> AppQos {
        let band = UtilizationBand::paper_default();
        if self.m_degr == 0.0 {
            AppQos::strict(band)
        } else {
            AppQos::new(
                band,
                Some(
                    DegradationSpec::new(self.m_degr, 0.9, self.t_degr)
                        // lint:allow(panic-expect): the case table holds
                        // the paper's literal (M_degr, U_degr, T_degr)
                        // values, inside DegradationSpec's ranges.
                        .expect("case-study constants are valid"),
                ),
            )
        }
    }

    /// The pool commitments this case imposes (60-minute CoS2 deadline,
    /// per the paper's footnote 3).
    pub fn commitments(&self) -> PoolCommitments {
        // lint:allow(panic-expect): case-study θ values are the paper's
        // literal operating points (0.95 / 0.6), valid by inspection.
        PoolCommitments::new(CosSpec::new(self.theta, 60).expect("case-study θ is valid"))
    }
}

/// One application's translation under a case.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatedApp {
    /// Application name.
    pub name: String,
    /// Placement-ready workload (per-CoS allocation traces).
    pub workload: Workload,
    /// Translation intermediates (Fig. 7/8 inputs).
    pub report: TranslationReport,
}

/// Translates the whole fleet under one case's QoS and commitments.
///
/// # Errors
///
/// Propagates translation failures (which the case-study constants should
/// never trigger).
pub fn translate_fleet(
    fleet: &[AppWorkload],
    case: &CaseConfig,
) -> Result<Vec<TranslatedApp>, FrameworkError> {
    translate_fleet_threaded(fleet, case, 1)
}

/// Translates the whole fleet across `threads` workers.
///
/// Per-app translations are independent, and the order-preserving
/// [`parallel_map`](ropus_placement::engine::parallel_map()) joins
/// results in input order, so the output — and every placement computed
/// from it — is bit-identical to the serial [`translate_fleet`] path.
///
/// # Errors
///
/// Propagates translation failures (which the case-study constants should
/// never trigger).
pub fn translate_fleet_threaded(
    fleet: &[AppWorkload],
    case: &CaseConfig,
    threads: usize,
) -> Result<Vec<TranslatedApp>, FrameworkError> {
    let qos = case.app_qos();
    let cos2 = case.commitments().cos2;
    parallel_map(threads, fleet, |app| {
        let t = translate(&app.trace, &qos, &cos2, ObsCtx::none())?;
        Ok(TranslatedApp {
            name: app.name.clone(),
            report: t.report,
            workload: Workload::from_translation(app.name.clone(), t),
        })
    })
    .into_iter()
    .collect()
}

/// One Table I result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The case configuration.
    pub case: CaseConfig,
    /// Number of 16-way servers the placement service used.
    pub servers: usize,
    /// Sum of per-server required capacities (`C_requ`), CPUs.
    pub c_requ: f64,
    /// Sum of per-application peak allocations (`C_peak`), CPUs.
    pub c_peak: f64,
    /// `1 − C_requ / C_peak` — the paper's 37–45% sharing savings.
    pub sharing_savings: f64,
    /// Lower bound on servers if *all* demand used the guaranteed class:
    /// `ceil(C_peak / server capacity)` (the paper's "at least 15 servers
    /// for case 1" argument).
    pub all_cos1_servers_lower_bound: usize,
}

/// Runs one Table I case end to end: translate, consolidate, report.
///
/// # Errors
///
/// Propagates translation and placement failures.
pub fn run_case(
    fleet: &[AppWorkload],
    case: &CaseConfig,
    options: ConsolidationOptions,
) -> Result<(CaseResult, PlacementReport), FrameworkError> {
    let translated = translate_fleet(fleet, case)?;
    let workloads: Vec<Workload> = translated.iter().map(|t| t.workload.clone()).collect();
    let consolidator = Consolidator::new(ServerSpec::sixteen_way(), case.commitments(), options);
    let report = consolidator.consolidate(&workloads, ObsCtx::none())?;
    let c_peak = report.peak_allocation_total;
    let result = CaseResult {
        case: *case,
        servers: report.servers_used,
        c_requ: report.required_capacity_total,
        c_peak,
        sharing_savings: report.sharing_savings(),
        all_cos1_servers_lower_bound: (c_peak / ServerSpec::sixteen_way().capacity()).ceil()
            as usize,
    };
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_trace::gen::{case_study_fleet, FleetConfig};

    fn small_fleet() -> Vec<AppWorkload> {
        case_study_fleet(&FleetConfig {
            apps: 6,
            weeks: 1,
            ..FleetConfig::paper()
        })
    }

    #[test]
    fn table1_grid_matches_paper() {
        let cases = CaseConfig::table1();
        assert_eq!(cases.len(), 6);
        assert_eq!(cases[0].m_degr, 0.0);
        assert_eq!(cases[1].t_degr, Some(30));
        assert_eq!(cases[3].theta, 0.95);
        for c in &cases {
            assert!(c.app_qos().validate().is_ok());
            assert_eq!(c.commitments().cos2.deadline_minutes(), 60);
        }
    }

    #[test]
    fn strict_cases_have_no_degradation() {
        let cases = CaseConfig::table1();
        assert!(cases[0].app_qos().degradation().is_none());
        assert!(cases[1].app_qos().degradation().is_some());
    }

    #[test]
    fn translate_fleet_produces_one_entry_per_app() {
        let fleet = small_fleet();
        let translated = translate_fleet(&fleet, &CaseConfig::table1()[1]).unwrap();
        assert_eq!(translated.len(), fleet.len());
        for t in &translated {
            assert!(t.report.peak_allocation > 0.0);
            assert!(t.workload.total_peak() > 0.0);
        }
    }

    #[test]
    fn relaxed_case_needs_no_more_peak_than_strict() {
        let fleet = small_fleet();
        let strict = translate_fleet(&fleet, &CaseConfig::table1()[0]).unwrap();
        let relaxed = translate_fleet(&fleet, &CaseConfig::table1()[2]).unwrap();
        for (s, r) in strict.iter().zip(relaxed.iter()) {
            assert!(r.report.peak_allocation <= s.report.peak_allocation + 1e-9);
        }
    }

    #[test]
    fn threaded_translation_is_bit_identical_to_serial() {
        let fleet = small_fleet();
        for case in &CaseConfig::table1() {
            let serial = translate_fleet(&fleet, case).unwrap();
            let threaded = translate_fleet_threaded(&fleet, case, 4).unwrap();
            assert_eq!(serial, threaded, "case {} diverged across threads", case.id);
        }
    }

    #[test]
    fn run_case_produces_consistent_row() {
        let fleet = small_fleet();
        let (row, report) = run_case(
            &fleet,
            &CaseConfig::table1()[1],
            ConsolidationOptions::fast(3),
        )
        .unwrap();
        assert_eq!(row.servers, report.servers_used);
        assert!(row.c_requ <= row.c_peak + 1e-9);
        assert!((row.sharing_savings - (1.0 - row.c_requ / row.c_peak)).abs() < 1e-12);
        assert!(row.all_cos1_servers_lower_bound >= 1);
    }
}
