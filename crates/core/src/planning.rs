//! Long-term capacity planning — the leftmost timescale of the paper's
//! Fig. 1 ("decide when additional capacity is needed for a pool so that
//! a procurement process can be initiated").
//!
//! The paper's medium-term machinery answers *how many servers does this
//! fleet need today*; this module extrapolates it: estimate each fleet's
//! demand growth from its trace history, scale the traces forward, and
//! re-run the translation + consolidation pipeline at each horizon step
//! until the pool size is known for every future week. The paper notes
//! that demands "are likely to change slowly (e.g., over several months)"
//! — exactly the regime where trend extrapolation is sound.

use serde::{Deserialize, Serialize};

use ropus_trace::stats;
use ropus_trace::Trace;

use crate::framework::{AppSpec, Framework};
use crate::FrameworkError;

/// Estimates the weekly multiplicative demand growth of a trace.
///
/// Fits ordinary least squares to the logarithm of the weekly mean demand
/// and returns `exp(slope)` — the factor by which demand grows per week.
/// Returns 1.0 (no growth) when fewer than two whole weeks are available
/// or when any week has zero mean (no meaningful trend).
///
/// # Example
///
/// ```
/// use ropus::planning::estimate_weekly_growth;
/// use ropus_trace::{Calendar, Trace};
///
/// let cal = Calendar::new(60)?;
/// // Two weeks, the second 10% hotter.
/// let mut samples = vec![1.0; cal.slots_per_week()];
/// samples.extend(vec![1.1; cal.slots_per_week()]);
/// let trace = Trace::from_samples(cal, samples)?;
/// let growth = estimate_weekly_growth(&trace);
/// assert!((growth - 1.1).abs() < 1e-9);
/// # Ok::<(), ropus_trace::TraceError>(())
/// ```
pub fn estimate_weekly_growth(trace: &Trace) -> f64 {
    let weeks = trace.weeks();
    if weeks < 2 {
        return 1.0;
    }
    let mut log_means = Vec::with_capacity(weeks);
    for w in 0..weeks {
        // lint:allow(panic-expect): `w < trace.weeks()` by the loop bound.
        let week = trace.week(w).expect("week index within whole weeks");
        let mean = stats::mean(week);
        if mean <= 0.0 {
            return 1.0;
        }
        log_means.push(mean.ln());
    }
    // OLS slope of log_means against week index.
    let n = log_means.len() as f64;
    let x_mean = (n - 1.0) / 2.0;
    let y_mean = stats::mean(&log_means);
    let mut numer = 0.0;
    let mut denom = 0.0;
    for (i, &y) in log_means.iter().enumerate() {
        let dx = i as f64 - x_mean;
        numer += dx * (y - y_mean);
        denom += dx * dx;
    }
    if denom == 0.0 {
        return 1.0;
    }
    (numer / denom).exp()
}

/// One step of a capacity forecast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecastEntry {
    /// Weeks from now.
    pub weeks_ahead: usize,
    /// Demand scale factor applied (`growth ^ weeks_ahead`).
    pub scale: f64,
    /// Servers the scaled fleet needs in normal mode, or `None` when some
    /// scaled application no longer fits any server at all.
    pub servers: Option<usize>,
    /// Sum of per-server required capacities at that point, when placeable.
    pub required_capacity: Option<f64>,
}

/// A capacity forecast over a horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityForecast {
    /// The weekly growth factor used.
    pub weekly_growth: f64,
    /// One entry per evaluated step, in increasing horizon order.
    pub entries: Vec<ForecastEntry>,
}

impl CapacityForecast {
    /// The first horizon (weeks ahead) at which the fleet needs more than
    /// `available` servers (or stops being placeable); `None` if the pool
    /// suffices for the whole horizon.
    pub fn exhaustion_week(&self, available: usize) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| e.servers.is_none_or(|s| s > available))
            .map(|e| e.weeks_ahead)
    }
}

impl Framework {
    /// Forecasts pool needs over `horizon_weeks`, evaluating every
    /// `step_weeks`, with demand scaled by `weekly_growth` per week.
    ///
    /// Growth is applied uniformly; per-application growth can be modelled
    /// by pre-scaling individual traces. An unplaceable step is recorded
    /// (servers = `None`) rather than failing the whole forecast.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::NoApplications`] for an empty fleet and
    /// propagates trace/QoS errors. Growth must be positive and finite.
    pub fn forecast(
        &self,
        apps: &[AppSpec],
        weekly_growth: f64,
        horizon_weeks: usize,
        step_weeks: usize,
    ) -> Result<CapacityForecast, FrameworkError> {
        if apps.is_empty() {
            return Err(FrameworkError::NoApplications);
        }
        assert!(
            weekly_growth.is_finite() && weekly_growth > 0.0,
            "growth factor must be positive"
        );
        assert!(step_weeks > 0, "step must be at least one week");

        let mut entries = Vec::new();
        let mut week = 0usize;
        while week <= horizon_weeks {
            let scale = weekly_growth.powi(week as i32);
            let scaled: Result<Vec<AppSpec>, FrameworkError> = apps
                .iter()
                .map(|app| {
                    let demand = app.demand().scaled(scale)?;
                    let spec = AppSpec::new(app.name(), demand, app.policy());
                    match app.memory() {
                        // Memory footprints grow with load too, though
                        // sub-linearly in practice; uniform scaling is the
                        // conservative choice.
                        Some(memory) => spec.with_memory(memory.scaled(scale)?),
                        None => Ok(spec),
                    }
                })
                .collect();
            let scaled = scaled?;
            let (servers, required_capacity) = match self.plan_normal_only(&scaled) {
                Ok(report) => (
                    Some(report.servers_used),
                    Some(report.required_capacity_total),
                ),
                Err(FrameworkError::Placement(_)) => (None, None),
                Err(other) => return Err(other),
            };
            entries.push(ForecastEntry {
                weeks_ahead: week,
                scale,
                servers,
                required_capacity,
            });
            week += step_weeks;
        }
        Ok(CapacityForecast {
            weekly_growth,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_placement::consolidate::ConsolidationOptions;
    use ropus_placement::server::ServerSpec;
    use ropus_qos::{AppQos, CosSpec, PoolCommitments, QosPolicy};
    use ropus_trace::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn framework(seed: u64) -> Framework {
        Framework::builder()
            .server(ServerSpec::sixteen_way())
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(seed))
            .build()
    }

    fn app(name: &str, level: f64) -> AppSpec {
        AppSpec::new(
            name,
            Trace::constant(cal(), level, cal().slots_per_week()).unwrap(),
            QosPolicy::uniform(AppQos::paper_default(None)),
        )
    }

    #[test]
    fn growth_estimation_recovers_known_trend() {
        let per_week = cal().slots_per_week();
        let mut samples = Vec::new();
        for w in 0..4 {
            samples.extend(vec![2.0 * 1.05f64.powi(w); per_week]);
        }
        let trace = Trace::from_samples(cal(), samples).unwrap();
        let growth = estimate_weekly_growth(&trace);
        assert!((growth - 1.05).abs() < 1e-9, "growth {growth}");
    }

    #[test]
    fn growth_estimation_degenerate_inputs() {
        let one_week = Trace::constant(cal(), 1.0, cal().slots_per_week()).unwrap();
        assert_eq!(estimate_weekly_growth(&one_week), 1.0);
        let zero = Trace::constant(cal(), 0.0, 2 * cal().slots_per_week()).unwrap();
        assert_eq!(estimate_weekly_growth(&zero), 1.0);
        let flat = Trace::constant(cal(), 3.0, 3 * cal().slots_per_week()).unwrap();
        assert!((estimate_weekly_growth(&flat) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_grows_server_needs_until_exhaustion() {
        // Four 4-CPU apps (allocation 8 each): one 16-way holds two.
        let apps: Vec<AppSpec> = (0..4).map(|i| app(&format!("a{i}"), 4.0)).collect();
        // 20% growth per week, forecast 8 weeks at 2-week steps.
        let forecast = framework(1).forecast(&apps, 1.2, 8, 2).unwrap();
        assert_eq!(forecast.entries.len(), 5);
        let servers: Vec<Option<usize>> = forecast.entries.iter().map(|e| e.servers).collect();
        // Server needs never decrease along the horizon.
        for pair in servers.windows(2) {
            match (pair[0], pair[1]) {
                (Some(a), Some(b)) => assert!(b >= a, "{servers:?}"),
                (None, Some(_)) => panic!("placeability cannot recover: {servers:?}"),
                _ => {}
            }
        }
        assert_eq!(servers[0], Some(2));
        // At 1.2^4 ≈ 2.07x, each app allocates ~16.6 CPUs: nothing fits.
        assert_eq!(servers[2], None);
        assert_eq!(servers[4], None);
        // Exhaustion against a 2-server pool happens as soon as 3+ servers
        // (or unplaceability) are needed.
        let week = forecast.exhaustion_week(2).expect("pool must exhaust");
        assert!((2..=4).contains(&week), "week {week}");
        assert_eq!(
            forecast.exhaustion_week(1000),
            Some(4),
            "unplaceable step still counts"
        );
    }

    #[test]
    fn no_growth_forecast_is_flat() {
        let apps: Vec<AppSpec> = (0..2).map(|i| app(&format!("a{i}"), 2.0)).collect();
        let forecast = framework(2).forecast(&apps, 1.0, 4, 2).unwrap();
        let first = forecast.entries[0].servers;
        assert!(forecast.entries.iter().all(|e| e.servers == first));
        assert_eq!(forecast.exhaustion_week(first.unwrap()), None);
    }

    #[test]
    fn empty_fleet_rejected() {
        assert!(matches!(
            framework(0).forecast(&[], 1.1, 4, 1),
            Err(FrameworkError::NoApplications)
        ));
    }
}
