//! The end-to-end R-Opus pipeline (Fig. 2 of the paper).

use serde::{Deserialize, Serialize};

use ropus_obs::{Obs, ObsCtx};
use ropus_placement::consolidate::{ConsolidationOptions, Consolidator, PlacementReport};
use ropus_placement::failure::{analyze_single_failures, FailureAnalysis, FailureScope};
use ropus_placement::server::ServerSpec;
use ropus_placement::workload::Workload;
use ropus_qos::analysis::{check_report, FleetSavings};
use ropus_qos::translation::{translate, TranslationReport};
use ropus_qos::{PoolCommitments, QosPolicy};
use ropus_trace::Trace;

use crate::FrameworkError;

/// Output of [`Framework::translate_fleet`]: per-application plan
/// summaries plus the normal- and failure-mode placement workloads.
pub type TranslatedFleet = (Vec<AppPlan>, Vec<Workload>, Vec<Workload>);

/// One application as submitted by its owner: a name, a demand trace, and
/// the two-mode QoS policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    name: String,
    demand: Trace,
    policy: QosPolicy,
    memory: Option<Trace>,
}

impl AppSpec {
    /// Creates an application specification.
    pub fn new(name: impl Into<String>, demand: Trace, policy: QosPolicy) -> Self {
        AppSpec {
            name: name.into(),
            demand,
            policy,
            memory: None,
        }
    }

    /// Attaches a memory-footprint trace (GB per slot). Memory is placed
    /// as a guaranteed attribute alongside the CPU classes of service.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::Trace`] when the memory trace is not
    /// aligned with the demand trace.
    pub fn with_memory(mut self, memory: Trace) -> Result<Self, FrameworkError> {
        if memory.len() != self.demand.len() {
            return Err(FrameworkError::Trace(ropus_trace::TraceError::Misaligned {
                left: self.demand.len(),
                right: memory.len(),
            }));
        }
        self.memory = Some(memory);
        Ok(self)
    }

    /// The memory-footprint trace, if attached.
    pub fn memory(&self) -> Option<&Trace> {
        self.memory.as_ref()
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The demand trace.
    pub fn demand(&self) -> &Trace {
        &self.demand
    }

    /// The two-mode QoS policy.
    pub fn policy(&self) -> QosPolicy {
        self.policy
    }
}

/// Per-application planning output: both translations' reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPlan {
    /// Application name.
    pub name: String,
    /// Normal-mode translation report.
    pub normal: TranslationReport,
    /// Failure-mode translation report.
    pub failure: TranslationReport,
}

/// The complete capacity plan for a fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityPlan {
    /// Per-application translation summaries.
    pub apps: Vec<AppPlan>,
    /// The consolidated normal-mode placement.
    pub normal_placement: PlacementReport,
    /// The single-failure sweep over the normal-mode placement.
    pub failure_analysis: FailureAnalysis,
    /// Aggregate savings of the normal-mode translations.
    pub savings: FleetSavings,
}

impl CapacityPlan {
    /// Servers needed in normal mode.
    pub fn normal_servers(&self) -> usize {
        self.normal_placement.servers_used
    }

    /// Whether a spare server is needed to cover any single failure.
    pub fn spare_needed(&self) -> bool {
        self.failure_analysis.spare_needed()
    }

    /// Total servers to provision: normal-mode servers plus a spare when
    /// the failure sweep demands one.
    pub fn servers_to_provision(&self) -> usize {
        self.normal_servers() + usize::from(self.spare_needed())
    }
}

/// A planning request: the fleet to plan plus everything that rides
/// along with it — today an optional observability context, built up in
/// builder style.
///
/// Every [`Framework`] entry point takes `impl Into<PlanRequest>`, so
/// plain fleets still read naturally at the call site:
///
/// ```ignore
/// framework.plan(&apps)?;                                  // bare fleet
/// framework.plan(PlanRequest::of(&apps).with_obs(&obs))?;  // instrumented
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest<'a> {
    apps: &'a [AppSpec],
    obs: ObsCtx<'a>,
}

impl<'a> PlanRequest<'a> {
    /// Starts a request for the given fleet.
    pub fn of(apps: &'a [AppSpec]) -> Self {
        PlanRequest {
            apps,
            obs: ObsCtx::none(),
        }
    }

    /// Attaches an observability collector: pipeline stages run under
    /// `pipeline.*` spans and per-layer counters/events ride along.
    pub fn with_obs(mut self, obs: &'a Obs) -> Self {
        self.obs = ObsCtx::from(obs);
        self
    }

    /// Attaches an already-built observability context.
    pub fn with_obs_ctx(mut self, obs: ObsCtx<'a>) -> Self {
        self.obs = obs;
        self
    }

    /// The fleet being planned.
    pub fn apps(&self) -> &'a [AppSpec] {
        self.apps
    }

    /// The observability context riding along with the request.
    pub fn obs(&self) -> ObsCtx<'a> {
        self.obs
    }
}

impl<'a> From<&'a [AppSpec]> for PlanRequest<'a> {
    fn from(apps: &'a [AppSpec]) -> Self {
        PlanRequest::of(apps)
    }
}

impl<'a> From<&'a Vec<AppSpec>> for PlanRequest<'a> {
    fn from(apps: &'a Vec<AppSpec>) -> Self {
        PlanRequest::of(apps)
    }
}

impl<'a, const N: usize> From<&'a [AppSpec; N]> for PlanRequest<'a> {
    fn from(apps: &'a [AppSpec; N]) -> Self {
        PlanRequest::of(apps)
    }
}

/// The R-Opus capacity self-management framework.
///
/// Owns the pool-level configuration (server type, CoS commitments, search
/// options) and turns a fleet of [`AppSpec`]s into a [`CapacityPlan`].
/// Build with [`Framework::builder`].
#[derive(Debug, Clone, Copy)]
pub struct Framework {
    server: ServerSpec,
    commitments: PoolCommitments,
    options: ConsolidationOptions,
    failure_scope: FailureScope,
}

impl Framework {
    /// Starts building a framework; defaults: 16-way servers, `θ = 0.95`
    /// with a 60-minute deadline, thorough search options.
    pub fn builder() -> FrameworkBuilder {
        FrameworkBuilder {
            server: ServerSpec::sixteen_way(),
            commitments: PoolCommitments::paper_defaults().0,
            options: ConsolidationOptions::thorough(0),
            failure_scope: FailureScope::AffectedOnly,
        }
    }

    /// The pool's server type.
    pub fn server(&self) -> ServerSpec {
        self.server
    }

    /// The pool's CoS commitments.
    pub fn commitments(&self) -> PoolCommitments {
        self.commitments
    }

    /// The consolidation search options in force.
    pub fn options(&self) -> ConsolidationOptions {
        self.options
    }

    /// Which applications fall back to failure-mode QoS after a failure.
    pub fn failure_scope(&self) -> FailureScope {
        self.failure_scope
    }

    /// Translates every application for both modes.
    ///
    /// Returns, per application, the plan summary plus the normal- and
    /// failure-mode [`Workload`]s ready for placement. When the request
    /// carries an observability context, the whole fleet translation runs
    /// under a `pipeline.translate` span and each application's
    /// translation emits its breakpoint and relaxation events.
    ///
    /// # Errors
    ///
    /// Propagates QoS validation and translation errors.
    pub fn translate_fleet<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
    ) -> Result<TranslatedFleet, FrameworkError> {
        let request = request.into();
        let (apps, obs) = (request.apps(), request.obs());
        if apps.is_empty() {
            return Err(FrameworkError::NoApplications);
        }
        let _span = obs.span("pipeline.translate");
        let cos2 = self.commitments.cos2;
        let mut plans = Vec::with_capacity(apps.len());
        let mut normal = Vec::with_capacity(apps.len());
        let mut failure = Vec::with_capacity(apps.len());
        for app in apps {
            app.policy.validate()?;
            let n = translate(&app.demand, &app.policy.normal, &cos2, obs)?;
            let f = translate(&app.demand, &app.policy.failure, &cos2, obs)?;
            check_report(&app.policy.normal, &n.report)?;
            check_report(&app.policy.failure, &f.report)?;
            plans.push(AppPlan {
                name: app.name.clone(),
                normal: n.report,
                failure: f.report,
            });
            let mut normal_workload = Workload::from_translation(app.name.clone(), n);
            let mut failure_workload = Workload::from_translation(app.name.clone(), f);
            if let Some(memory) = &app.memory {
                normal_workload = normal_workload
                    .with_memory(memory.clone())
                    // lint:allow(panic-expect): AppSpec::with_memory
                    // already validated the memory trace against the
                    // demand calendar; translation preserves alignment.
                    .expect("memory alignment checked by AppSpec::with_memory");
                failure_workload = failure_workload
                    .with_memory(memory.clone())
                    // lint:allow(panic-expect): same alignment invariant.
                    .expect("memory alignment checked by AppSpec::with_memory");
            }
            normal.push(normal_workload);
            failure.push(failure_workload);
        }
        Ok((plans, normal, failure))
    }

    /// Translates the normal mode and consolidates, without the failure
    /// sweep — the inner step of iterative services such as
    /// [`forecast`](crate::planning) that only need pool sizing.
    ///
    /// # Errors
    ///
    /// As for [`plan`](Self::plan).
    pub fn plan_normal_only<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
    ) -> Result<PlacementReport, FrameworkError> {
        let request = request.into();
        let obs = request.obs();
        let (_, normal, _) = self.translate_fleet(request)?;
        let _span = obs.span("pipeline.consolidate");
        let consolidator = Consolidator::new(self.server, self.commitments, self.options);
        Ok(consolidator.consolidate(&normal, obs)?)
    }

    /// Runs the full pipeline: translate both modes, consolidate the
    /// normal-mode workloads, and sweep single failures. When the request
    /// carries an observability context, the three pipeline stages run
    /// under `pipeline.translate`, `pipeline.consolidate`, and
    /// `pipeline.failure_sweep` spans, with the per-layer counters and
    /// events of each stage riding along.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameworkError`] if translation fails or the fleet
    /// cannot be placed at all. An *unsupported failure case* is not an
    /// error; it surfaces as [`CapacityPlan::spare_needed`].
    pub fn plan<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
    ) -> Result<CapacityPlan, FrameworkError> {
        let request = request.into();
        let obs = request.obs();
        let (plans, normal, failure) = self.translate_fleet(request)?;
        let consolidator = Consolidator::new(self.server, self.commitments, self.options);
        let normal_placement = {
            let _span = obs.span("pipeline.consolidate");
            consolidator.consolidate(&normal, obs)?
        };
        let failure_analysis = {
            let _span = obs.span("pipeline.failure_sweep");
            analyze_single_failures(
                &consolidator,
                &normal_placement,
                &normal,
                &failure,
                self.failure_scope,
            )?
        };
        obs.counter(
            "pipeline.failure_sweep.unsupported_cases",
            failure_analysis
                .cases
                .iter()
                .filter(|c| !c.is_supported())
                .count() as u64,
        );
        let savings = FleetSavings::aggregate(&plans.iter().map(|p| p.normal).collect::<Vec<_>>());
        Ok(CapacityPlan {
            apps: plans,
            normal_placement,
            failure_analysis,
            savings,
        })
    }
}

/// Builder for [`Framework`].
#[derive(Debug, Clone, Copy)]
pub struct FrameworkBuilder {
    server: ServerSpec,
    commitments: PoolCommitments,
    options: ConsolidationOptions,
    failure_scope: FailureScope,
}

impl FrameworkBuilder {
    /// Sets the pool's server type.
    pub fn server(mut self, server: ServerSpec) -> Self {
        self.server = server;
        self
    }

    /// Sets the pool's CoS commitments.
    pub fn commitments(mut self, commitments: PoolCommitments) -> Self {
        self.commitments = commitments;
        self
    }

    /// Sets the consolidation search options.
    pub fn options(mut self, options: ConsolidationOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the worker-thread count for the placement engine (1 = serial,
    /// the default). Plans are bit-identical regardless of thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.options = self.options.with_threads(threads);
        self
    }

    /// Bounds the placement engine's fit cache (0 = unbounded, the
    /// default).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.options = self.options.with_cache_capacity(capacity);
        self
    }

    /// Sets which applications relax to failure-mode QoS after a failure
    /// (default [`FailureScope::AffectedOnly`], the paper's §VI-C rule).
    pub fn failure_scope(mut self, scope: FailureScope) -> Self {
        self.failure_scope = scope;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Framework {
        Framework {
            server: self.server,
            commitments: self.commitments,
            options: self.options,
            failure_scope: self.failure_scope,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::{AppQos, CosSpec};
    use ropus_trace::Calendar;

    fn cal() -> Calendar {
        Calendar::five_minute()
    }

    fn app(name: &str, level: f64) -> AppSpec {
        let demand = Trace::constant(cal(), level, cal().slots_per_week()).unwrap();
        AppSpec::new(
            name,
            demand,
            QosPolicy {
                normal: AppQos::paper_default(Some(30)),
                failure: AppQos::paper_default(None),
            },
        )
    }

    fn framework(seed: u64) -> Framework {
        Framework::builder()
            .server(ServerSpec::sixteen_way())
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(seed))
            .build()
    }

    #[test]
    fn plan_produces_consistent_outputs() {
        let apps = vec![app("a", 2.0), app("b", 1.5), app("c", 3.0)];
        let plan = framework(1).plan(&apps).unwrap();
        assert_eq!(plan.apps.len(), 3);
        assert_eq!(plan.apps[0].name, "a");
        // Constant demand of 2.0 -> allocation 4.0 peak.
        assert!((plan.apps[0].normal.peak_allocation - 4.0).abs() < 1e-9);
        assert!(plan.normal_servers() >= 1);
        assert_eq!(plan.failure_analysis.normal_servers, plan.normal_servers());
        assert_eq!(
            plan.servers_to_provision(),
            plan.normal_servers() + usize::from(plan.spare_needed())
        );
        // Aggregate savings cover all apps.
        assert_eq!(plan.savings.apps, 3);
    }

    #[test]
    fn empty_fleet_rejected() {
        assert!(matches!(
            framework(0).plan(&[]),
            Err(FrameworkError::NoApplications)
        ));
    }

    #[test]
    fn invalid_policy_surfaces_as_qos_error() {
        use ropus_qos::{DegradationSpec, UtilizationBand};
        let demand = Trace::constant(cal(), 1.0, cal().slots_per_week()).unwrap();
        let bad = AppQos::new(
            UtilizationBand::new(0.5, 0.66).unwrap(),
            Some(DegradationSpec::new(0.03, 0.6, None).unwrap()),
        );
        let spec = AppSpec::new("x", demand, QosPolicy::uniform(bad));
        assert!(matches!(
            framework(0).plan(&[spec]),
            Err(FrameworkError::Qos(_))
        ));
    }

    #[test]
    fn oversized_app_surfaces_as_placement_error() {
        let spec = app("huge", 20.0);
        assert!(matches!(
            framework(0).plan(&[spec]),
            Err(FrameworkError::Placement(_))
        ));
    }

    #[test]
    fn memory_constrained_plan_uses_more_servers() {
        // Three small-CPU apps that would share one server, but whose
        // 30 GB footprints only pack two per 64 GB box.
        let mk = |with_mem: bool| -> Vec<AppSpec> {
            (0..3)
                .map(|i| {
                    let spec = app(&format!("m{i}"), 1.0);
                    if with_mem {
                        let mem = Trace::constant(cal(), 30.0, cal().slots_per_week()).unwrap();
                        spec.with_memory(mem).unwrap()
                    } else {
                        spec
                    }
                })
                .collect()
        };
        let without = framework(10).plan(&mk(false)).unwrap();
        let with = framework(10).plan(&mk(true)).unwrap();
        assert_eq!(without.normal_servers(), 1);
        assert_eq!(with.normal_servers(), 2);
    }

    #[test]
    fn misaligned_memory_is_rejected() {
        let spec = app("x", 1.0);
        let bad = Trace::constant(cal(), 1.0, 10).unwrap();
        assert!(matches!(
            spec.with_memory(bad),
            Err(FrameworkError::Trace(_))
        ));
    }

    #[test]
    fn plan_is_deterministic() {
        let apps = vec![app("a", 2.0), app("b", 1.0)];
        let p1 = framework(5).plan(&apps).unwrap();
        let p2 = framework(5).plan(&apps).unwrap();
        assert_eq!(
            p1.normal_placement.assignment,
            p2.normal_placement.assignment
        );
        assert_eq!(p1.savings, p2.savings);
    }
}
