//! Pluggable admission control for the serve daemon.
//!
//! An [`AdmissionPolicy`] sees one probed candidate — the capacity each
//! open server would require with the workload added, under the pool's θ
//! and CoS commitments — and renders a verdict: place it on a server,
//! park it in the queue (to retry on later ticks until a deadline), or
//! reject it outright.

use crate::daemon::protocol::ServeStats;

/// One open server as seen by a policy: the capacity it would require
/// with the candidate admitted, when the enlarged member set still fits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerProbe {
    /// Server index.
    pub server: usize,
    /// Required capacity with the candidate added; `None` when the
    /// enlarged set cannot satisfy the commitments at the capacity limit.
    pub required: Option<f64>,
}

impl ServerProbe {
    /// Headroom left after admission (`capacity - required`), when the
    /// candidate fits.
    pub fn headroom(&self, capacity: f64) -> Option<f64> {
        self.required.map(|r| capacity - r)
    }
}

/// Everything a policy may score an admission against.
#[derive(Debug, Clone)]
pub struct AdmissionContext<'a> {
    /// Probe results for every server the session has touched, ascending
    /// by server index. Includes currently-empty servers.
    pub probes: &'a [ServerProbe],
    /// Capacity of one server, in capacity units.
    pub capacity: f64,
    /// Servers currently holding at least one workload.
    pub servers_open: usize,
    /// Pool size cap; `None` = unbounded (a fresh server can always be
    /// opened).
    pub max_servers: Option<usize>,
    /// Admissions currently waiting in the queue.
    pub queue_len: usize,
    /// The daemon's logical slot.
    pub slot: u64,
}

impl AdmissionContext<'_> {
    /// Whether the pool may open one more server under its cap.
    pub fn can_open_server(&self) -> bool {
        self.max_servers.is_none_or(|cap| self.probes.len() < cap)
    }

    /// Probes on which the candidate fits.
    pub fn feasible(&self) -> impl Iterator<Item = &ServerProbe> {
        self.probes.iter().filter(|p| p.required.is_some())
    }
}

/// A policy's verdict on one admission request.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// Place the workload on this server now.
    Accept {
        /// Target server index.
        server: usize,
    },
    /// Park the request; the daemon retries it on each tick until its
    /// deadline passes.
    Queue,
    /// Refuse the request.
    Reject {
        /// Operator-facing reason.
        reason: String,
    },
}

/// An admission controller: scores one probed request against the pool's
/// remaining headroom and renders an [`AdmissionDecision`].
///
/// Policies must be deterministic — the verdict may depend only on the
/// context, never on wall-clock time or randomness — so a replayed
/// command script always produces the same plan.
pub trait AdmissionPolicy {
    /// Renders the verdict for one probed admission request.
    fn decide(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision;

    /// The policy's wire name (echoed in snapshots and logs).
    fn name(&self) -> &'static str;
}

/// Best-fit: place on the feasible server with the least post-admission
/// headroom (ties to the lowest index), open a new server when none
/// fits and the pool cap allows, otherwise queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

/// First-fit: place on the lowest-indexed feasible server, open a new
/// server when none fits and the pool cap allows, otherwise queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

fn fallback(ctx: &AdmissionContext<'_>) -> AdmissionDecision {
    if ctx.can_open_server() {
        AdmissionDecision::Accept {
            server: ctx.probes.len(),
        }
    } else {
        AdmissionDecision::Queue
    }
}

impl AdmissionPolicy for BestFit {
    fn decide(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let tightest = ctx.feasible().min_by(|a, b| {
            // lint:allow(panic-expect): feasible() yields Some(required).
            let (ra, rb) = (a.required.expect("feasible"), b.required.expect("feasible"));
            // Highest required = least headroom; ties to the lower index,
            // which `min_by` already gives us on a stable ascending scan.
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        match tightest {
            Some(probe) => AdmissionDecision::Accept {
                server: probe.server,
            },
            None => fallback(ctx),
        }
    }

    fn name(&self) -> &'static str {
        "best-fit"
    }
}

impl AdmissionPolicy for FirstFit {
    fn decide(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        match ctx.feasible().next() {
            Some(probe) => AdmissionDecision::Accept {
                server: probe.server,
            },
            None => fallback(ctx),
        }
    }

    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// A load-shedding wrapper: rejects (instead of queueing) once the queue
/// is full, and otherwise defers to the inner policy.
#[derive(Debug, Clone, Copy)]
pub struct BoundedQueue<P> {
    inner: P,
    limit: usize,
}

impl<P> BoundedQueue<P> {
    /// Caps the queue the inner policy may grow to `limit` entries.
    pub fn new(inner: P, limit: usize) -> Self {
        BoundedQueue { inner, limit }
    }
}

impl<P: AdmissionPolicy> AdmissionPolicy for BoundedQueue<P> {
    fn decide(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        match self.inner.decide(ctx) {
            AdmissionDecision::Queue if ctx.queue_len >= self.limit => AdmissionDecision::Reject {
                reason: format!("queue full ({} waiting)", ctx.queue_len),
            },
            verdict => verdict,
        }
    }

    fn name(&self) -> &'static str {
        "bounded-queue"
    }
}

/// Resolves a policy by wire name (`best-fit` / `first-fit`).
pub fn policy_by_name(name: &str) -> Option<Box<dyn AdmissionPolicy + Send>> {
    match name {
        "best-fit" => Some(Box::new(BestFit)),
        "first-fit" => Some(Box::new(FirstFit)),
        _ => None,
    }
}

/// Folds one decision into the running stats.
pub(crate) fn count_decision(stats: &mut ServeStats, decision: &AdmissionDecision) {
    match decision {
        AdmissionDecision::Accept { .. } => stats.admitted += 1,
        AdmissionDecision::Queue => stats.queued += 1,
        AdmissionDecision::Reject { .. } => stats.rejected += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(probes: &'a [ServerProbe], max_servers: Option<usize>) -> AdmissionContext<'a> {
        AdmissionContext {
            probes,
            capacity: 16.0,
            servers_open: probes.len(),
            max_servers,
            queue_len: 0,
            slot: 0,
        }
    }

    #[test]
    fn best_fit_picks_least_headroom() {
        let probes = [
            ServerProbe {
                server: 0,
                required: Some(4.0),
            },
            ServerProbe {
                server: 1,
                required: Some(12.0),
            },
            ServerProbe {
                server: 2,
                required: None,
            },
        ];
        assert_eq!(
            BestFit.decide(&ctx(&probes, None)),
            AdmissionDecision::Accept { server: 1 }
        );
        assert_eq!(
            FirstFit.decide(&ctx(&probes, None)),
            AdmissionDecision::Accept { server: 0 }
        );
    }

    #[test]
    fn best_fit_ties_break_to_lowest_server() {
        let probes = [
            ServerProbe {
                server: 0,
                required: Some(8.0),
            },
            ServerProbe {
                server: 1,
                required: Some(8.0),
            },
        ];
        assert_eq!(
            BestFit.decide(&ctx(&probes, None)),
            AdmissionDecision::Accept { server: 0 }
        );
    }

    #[test]
    fn infeasible_everywhere_opens_a_server_under_the_cap() {
        let probes = [ServerProbe {
            server: 0,
            required: None,
        }];
        assert_eq!(
            BestFit.decide(&ctx(&probes, None)),
            AdmissionDecision::Accept { server: 1 }
        );
        assert_eq!(
            BestFit.decide(&ctx(&probes, Some(2))),
            AdmissionDecision::Accept { server: 1 }
        );
        assert_eq!(
            BestFit.decide(&ctx(&probes, Some(1))),
            AdmissionDecision::Queue
        );
        assert_eq!(
            FirstFit.decide(&ctx(&probes, Some(1))),
            AdmissionDecision::Queue
        );
    }

    #[test]
    fn bounded_queue_sheds_load() {
        let probes = [ServerProbe {
            server: 0,
            required: None,
        }];
        let policy = BoundedQueue::new(BestFit, 1);
        let mut c = ctx(&probes, Some(1));
        assert_eq!(policy.decide(&c), AdmissionDecision::Queue);
        c.queue_len = 1;
        assert!(matches!(
            policy.decide(&c),
            AdmissionDecision::Reject { .. }
        ));
    }

    #[test]
    fn policies_resolve_by_wire_name() {
        assert_eq!(policy_by_name("best-fit").unwrap().name(), "best-fit");
        assert_eq!(policy_by_name("first-fit").unwrap().name(), "first-fit");
        assert!(policy_by_name("random").is_none());
    }
}
