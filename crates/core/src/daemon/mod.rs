//! The `ropus serve` online planner daemon.
//!
//! A long-running loop that ingests demand incrementally over the
//! line-delimited JSON protocol of [`protocol`], maintains a live plan in
//! an incremental [`EngineSession`], and answers admission requests with
//! a pluggable [`AdmissionPolicy`] scored
//! against each server's remaining headroom under the pool's θ and CoS
//! commitments:
//!
//! * `admit` translates the offered demand into per-CoS allocation
//!   requirements (the same [`translate`] every batch path uses), probes
//!   every open server without mutating the plan, and lets the policy
//!   accept (naming a server), queue (with a deadline), or reject;
//! * `depart` removes a live application, invalidating only its server;
//! * `tick` advances logical time: queued admissions are retried in FIFO
//!   order, expired ones are dropped, and exactly the touched servers'
//!   required capacities are recomputed;
//! * `snapshot` emits the live plan — bit-identical to a cold batch
//!   consolidation of the same assignment (see `tests/serve.rs` and the
//!   ci.sh serve gate);
//! * `subscribe` switches on telemetry streaming: every subsequent
//!   response line is followed by the [`protocol::StreamLine`]s it
//!   produced — lifecycle events, SLO burn-rate alerts from the
//!   streaming [`SloEngine`] each tick feeds, and (when a collector is
//!   attached) metric snapshot deltas that re-sum to the final report;
//! * `shutdown` reports aggregate statistics and stops the loop.
//!
//! Every decision is a pure function of the command stream and the
//! daemon configuration, so a replayed script reproduces the exact plan
//! — the same determinism contract the batch pipeline holds.

pub mod admission;
pub mod protocol;

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};

use ropus_obs::{names, BurnRateRule, ObsCtx, ObsReport, SloEngine};
use ropus_placement::migration::{
    MigrationConfig, MigrationOrchestrator, MigrationPhase, Transition,
};
use ropus_placement::server::ServerSpec;
use ropus_placement::session::{EngineSession, WorkloadId};
use ropus_placement::workload::Workload;
use ropus_qos::translation::translate;
use ropus_qos::{AppQos, PoolCommitments};
use ropus_trace::{Calendar, Trace};
use ropus_wlm::metrics::slo_contract;

use admission::{
    count_decision, AdmissionContext, AdmissionDecision, AdmissionPolicy, BestFit, ServerProbe,
};
use protocol::{parse_command, Command, DemandSpec, Response, ServeStats, StreamLine};

/// Latency buckets for the `serve.tick.latency_ms` histogram.
static TICK_LATENCY_BOUNDS_MS: [f64; 6] = [0.1, 1.0, 5.0, 25.0, 100.0, 500.0];

/// Static configuration of one serve daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The pool's server type.
    pub server: ServerSpec,
    /// The pool's CoS commitments (θ and deadline).
    pub commitments: PoolCommitments,
    /// The application QoS every admitted demand is translated under.
    pub qos: AppQos,
    /// Slot calendar demand arrives on.
    pub calendar: Calendar,
    /// Horizon, in weeks, that `level`-style admissions are planned over.
    pub weeks: usize,
    /// Required-capacity binary-search tolerance, in capacity units.
    pub tolerance: f64,
    /// Worker threads for delta refreshes (never changes any result).
    pub threads: usize,
    /// Ticks a queued admission survives before expiring; 0 disables the
    /// queue (every `Queue` verdict becomes a rejection).
    pub queue_deadline_slots: u64,
    /// Base backoff, in ticks, between queue retry attempts; each failed
    /// re-decide doubles the wait. 1 retries every tick at first.
    pub retry_backoff_base: u64,
    /// Failed re-decides before a queued admission is dropped.
    pub retry_max_attempts: u32,
    /// Migration lifecycle model for `migrate` commands. The default
    /// zero-cost [`MigrationConfig::teleport`] commits a move in the
    /// command itself; a paced config plans it and lets ticks walk the
    /// drain → transfer → cutover → health-check machine.
    pub migration: MigrationConfig,
    /// Pool size cap; `None` = unbounded.
    pub max_servers: Option<usize>,
}

impl DaemonConfig {
    /// A config with the paper's defaults: one-week horizon, 0.05
    /// tolerance, serial refresh, 12-tick queue deadline, unbounded pool.
    pub fn new(
        server: ServerSpec,
        commitments: PoolCommitments,
        qos: AppQos,
        calendar: Calendar,
    ) -> Self {
        DaemonConfig {
            server,
            commitments,
            qos,
            calendar,
            weeks: 1,
            tolerance: 0.05,
            threads: 1,
            queue_deadline_slots: 12,
            retry_backoff_base: 1,
            retry_max_attempts: 32,
            migration: MigrationConfig::teleport(),
            max_servers: None,
        }
    }
}

/// One admission parked by a `Queue` verdict.
#[derive(Debug, Clone)]
struct QueuedAdmission {
    workload: Workload,
    /// The offered demand samples, retained so a late admission can still
    /// register its SLO watch entry.
    samples: Vec<f64>,
    /// Last slot (inclusive) at which a retry may still admit it.
    deadline: u64,
    /// Failed re-decides so far; drives the exponential backoff.
    attempts: u32,
    /// First slot at which the next retry may run.
    next_retry: u64,
}

/// Per-live-application SLO watch state: the contract's engine index plus
/// the series needed to derive a per-slot utilization-of-allocation proxy
/// `u(t) = demand(t) / (cos1(t) + cos2(t))`.
#[derive(Debug, Clone)]
struct WatchedApp {
    /// Index of this app's contract in the daemon's [`SloEngine`].
    slo_index: usize,
    /// Offered demand, one sample per calendar slot (cycled past the end).
    demand: Vec<f64>,
    /// Translated total allocation (CoS1 + CoS2), aligned with `demand`.
    alloc: Vec<f64>,
}

/// The online planner: an [`EngineSession`] plus admission queue, driven
/// by protocol commands. See the module docs for the command semantics.
pub struct Daemon {
    config: DaemonConfig,
    policy: Box<dyn AdmissionPolicy + Send>,
    session: EngineSession,
    queue: VecDeque<QueuedAdmission>,
    /// Migration machine for paced `migrate` commands; its app indices
    /// are tickets into `move_ids`.
    orch: MigrationOrchestrator,
    /// Orchestrator app index → live workload, one entry per migration
    /// ever requested.
    move_ids: Vec<WorkloadId>,
    slot: u64,
    stats: ServeStats,
    /// Whether a `subscribe` command has switched on telemetry streaming.
    subscribed: bool,
    /// Streaming SLO engine: one contract per admitted application, fed
    /// one utilization sample per live app per tick.
    slo: SloEngine,
    /// Live app name → SLO watch state. A `BTreeMap` so the per-tick
    /// observation order is the deterministic name order.
    watch: BTreeMap<String, WatchedApp>,
    /// Stream lines produced since the last drain; [`run`](Self::run)
    /// writes them after each response line once subscribed.
    pending: Vec<StreamLine>,
    /// Metric snapshot at the previous delta emission (delta baseline).
    last_report: ObsReport,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("policy", &self.policy.name())
            .field("live", &self.session.len())
            .field("queued", &self.queue.len())
            .field("slot", &self.slot)
            .finish()
    }
}

impl Daemon {
    /// Creates a daemon with the default [`BestFit`] policy.
    pub fn new(config: DaemonConfig) -> Self {
        Daemon::with_policy(config, Box::new(BestFit))
    }

    /// Creates a daemon with an explicit admission policy.
    pub fn with_policy(config: DaemonConfig, policy: Box<dyn AdmissionPolicy + Send>) -> Self {
        let session = EngineSession::new(config.server, config.commitments)
            .with_tolerance(config.tolerance)
            .with_threads(config.threads);
        let orch = MigrationOrchestrator::new(config.migration, Vec::new());
        Daemon {
            config,
            policy,
            session,
            queue: VecDeque::new(),
            orch,
            move_ids: Vec::new(),
            slot: 0,
            stats: ServeStats::default(),
            subscribed: false,
            slo: SloEngine::new(BurnRateRule::default_rules()),
            watch: BTreeMap::new(),
            pending: Vec::new(),
            last_report: ObsReport::default(),
        }
    }

    /// The daemon's logical slot (ticks processed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.stats;
        stats.recomputes = self.session.recomputes();
        stats
    }

    /// Names currently waiting in the queue, FIFO order.
    pub fn queued_names(&self) -> Vec<String> {
        self.queue
            .iter()
            .map(|q| q.workload.name().to_string())
            .collect()
    }

    /// The live session (for snapshot comparisons in tests).
    pub fn session_mut(&mut self) -> &mut EngineSession {
        &mut self.session
    }

    /// Translates an offered demand into a placeable workload under the
    /// daemon's QoS and commitments, returning the demand samples too so
    /// admission can retain them for the SLO watch.
    fn translate_demand(
        &self,
        name: &str,
        demand: &DemandSpec,
        obs: ObsCtx<'_>,
    ) -> Result<(Workload, Vec<f64>), String> {
        let trace = match demand {
            DemandSpec::Level(level) => Trace::constant(
                self.config.calendar,
                *level,
                self.config.weeks * self.config.calendar.slots_per_week(),
            ),
            DemandSpec::Samples(samples) => {
                // lint:allow(needless-trace-clone): ownership hand-off — the
                // command keeps its sample vector; the trace needs its own.
                Trace::from_samples(self.config.calendar, samples.clone())
            }
        }
        .map_err(|e| format!("bad demand: {e}"))?;
        // lint:allow(needless-trace-clone): the daemon retains its own copy
        // of the demand so the SLO watch can replay it every slot after the
        // trace itself has been folded into the workload.
        let samples = trace.samples().to_vec();
        let translation = translate(&trace, &self.config.qos, &self.config.commitments.cos2, obs)
            .map_err(|e| format!("translation failed: {e}"))?;
        Ok((
            Workload::from_translation(name.to_string(), translation),
            samples,
        ))
    }

    /// Registers an SLO contract and utilization watch for a newly placed
    /// application. Re-admitting a departed name registers a fresh
    /// contract; the old one stops receiving samples.
    fn watch_admit(&mut self, workload: &Workload, samples: Vec<f64>) {
        let contract = slo_contract(
            workload.name(),
            &self.config.qos,
            self.config.calendar.slot_minutes(),
        );
        let slo_index = self.slo.register(contract);
        let alloc: Vec<f64> = workload
            .cos1()
            .samples()
            .iter()
            .zip(workload.cos2().samples())
            .map(|(a, b)| a + b)
            .collect();
        self.watch.insert(
            workload.name().to_string(),
            WatchedApp {
                slo_index,
                demand: samples,
                alloc,
            },
        );
    }

    /// Queues a `watch.stream.event` line when subscribed.
    fn push_event(&mut self, event: &str, name: Option<String>, server: Option<usize>) {
        if !self.subscribed {
            return;
        }
        let mut line = StreamLine::new(names::WATCH_STREAM_EVENT, self.slot);
        line.event = Some(event.to_string());
        line.name = name;
        line.server = server;
        self.pending.push(line);
    }

    /// Stream lines produced since the last drain, in emission order.
    /// [`run`](Self::run) calls this after every response; tests and
    /// embedders driving [`execute`](Self::execute) directly should too.
    pub fn drain_stream(&mut self) -> Vec<StreamLine> {
        std::mem::take(&mut self.pending)
    }

    /// Probes every touched server and asks the policy for a verdict.
    /// Returns the probes too so callers can answer "what would the
    /// target require?" without forcing a refresh.
    fn decide(&self, workload: &Workload) -> Result<(AdmissionDecision, Vec<ServerProbe>), String> {
        let mut probes = Vec::with_capacity(self.session.server_count());
        for server in 0..self.session.server_count() {
            let required = self
                .session
                .probe(workload, server)
                .map_err(|e| e.to_string())?;
            probes.push(ServerProbe { server, required });
        }
        let servers_open = (0..self.session.server_count())
            .filter(|&s| !self.session.server_members(s).is_empty())
            .count();
        let ctx = AdmissionContext {
            probes: &probes,
            capacity: self.config.server.capacity(),
            servers_open,
            max_servers: self.config.max_servers,
            queue_len: self.queue.len(),
            slot: self.slot,
        };
        let mut decision = self.policy.decide(&ctx);
        if let AdmissionDecision::Accept { server } = decision {
            if self.config.max_servers.is_some_and(|cap| server >= cap) {
                return Err(format!(
                    "policy {} placed on server {server} beyond the pool cap",
                    self.policy.name()
                ));
            }
            // A placement on a fresh (never-probed) server must still
            // fit: a demand that cannot satisfy the commitments alone on
            // an empty server can never be placed, so reject it rather
            // than queueing it forever.
            if server >= probes.len()
                && self
                    .session
                    .probe(workload, server)
                    .map_err(|e| e.to_string())?
                    .is_none()
            {
                decision = AdmissionDecision::Reject {
                    reason: "demand does not fit an empty server".to_string(),
                };
            }
        }
        if matches!(decision, AdmissionDecision::Queue) && self.config.queue_deadline_slots == 0 {
            decision = AdmissionDecision::Reject {
                reason: "no feasible server and queueing is disabled".to_string(),
            };
        }
        Ok((decision, probes))
    }

    /// Handles `admit`: translate, probe, decide, and apply the verdict.
    pub fn admit(&mut self, name: &str, demand: &DemandSpec, obs: ObsCtx<'_>) -> Response {
        let mut response = Response::ok("admit");
        response.name = Some(name.to_string());
        if self.queued_names().iter().any(|n| n == name) {
            return Response::error("admit", format!("{name:?} is already queued"));
        }
        let (workload, samples) = match self.translate_demand(name, demand, obs) {
            Ok(w) => w,
            Err(e) => return Response::error("admit", e),
        };
        let (decision, probes) = match self.decide(&workload) {
            Ok(d) => d,
            Err(e) => return Response::error("admit", e),
        };
        count_decision(&mut self.stats, &decision);
        match decision {
            AdmissionDecision::Accept { server } => {
                // Answer the post-admission requirement from the probe
                // (recomputing it for a freshly opened server) rather
                // than refreshing the whole pool — the deferred batch
                // recompute stays with `tick`.
                let required = probes
                    .iter()
                    .find(|p| p.server == server)
                    .map(|p| p.required)
                    .unwrap_or_else(|| self.session.probe(&workload, server).ok().flatten());
                self.watch_admit(&workload, samples);
                if let Err(e) = self.session.admit(workload, server) {
                    self.watch.remove(name);
                    return Response::error("admit", e.to_string());
                }
                obs.counter("serve.admit.accepted", 1);
                self.push_event("admitted", Some(name.to_string()), Some(server));
                response.decision = Some("accepted".to_string());
                response.server = Some(server);
                response.required = required;
            }
            AdmissionDecision::Queue => {
                let deadline = self.slot + self.config.queue_deadline_slots;
                self.queue.push_back(QueuedAdmission {
                    workload,
                    samples,
                    deadline,
                    attempts: 0,
                    next_retry: self.slot,
                });
                obs.counter("serve.admit.queued", 1);
                self.push_event("queued", Some(name.to_string()), None);
                response.decision = Some("queued".to_string());
                response.deadline_slot = Some(deadline);
            }
            AdmissionDecision::Reject { reason } => {
                obs.counter("serve.admit.rejected", 1);
                self.push_event("rejected", Some(name.to_string()), None);
                response.decision = Some("rejected".to_string());
                response.reason = Some(reason);
            }
        }
        response
    }

    /// Handles `depart`: removes a live application by name.
    pub fn depart(&mut self, name: &str, obs: ObsCtx<'_>) -> Response {
        // A queued (not yet placed) application may also withdraw.
        if let Some(at) = self.queue.iter().position(|q| q.workload.name() == name) {
            self.queue.remove(at);
            self.stats.departed += 1;
            obs.counter("serve.depart.count", 1);
            self.push_event("departed", Some(name.to_string()), None);
            let mut response = Response::ok("depart");
            response.name = Some(name.to_string());
            return response;
        }
        let Some(id) = self.session.find(name) else {
            return Response::error("depart", format!("{name:?} is not a live application"));
        };
        // An open migration dies with the application: cancel the machine
        // ticket first (the session rolls back its reservation below).
        let open: Vec<usize> = self
            .move_ids
            .iter()
            .enumerate()
            .filter(|&(idx, &mid)| mid == id && self.orch.has_active_move(idx))
            .map(|(idx, _)| idx)
            .collect();
        for idx in open {
            self.orch.cancel_app(idx, self.slot as usize, obs);
        }
        match self.session.depart(id) {
            Ok(_) => {
                self.stats.departed += 1;
                obs.counter("serve.depart.count", 1);
                self.watch.remove(name);
                self.push_event("departed", Some(name.to_string()), None);
                let mut response = Response::ok("depart");
                response.name = Some(name.to_string());
                response
            }
            Err(e) => Response::error("depart", e.to_string()),
        }
    }

    /// Handles `tick`: advance `slots` logical slots, retrying and
    /// expiring queued admissions at each one, then recompute exactly the
    /// touched servers.
    pub fn tick(&mut self, slots: u64, obs: ObsCtx<'_>) -> Response {
        let started_ms = obs.now_ms();
        let mut admitted_from_queue = Vec::new();
        let mut expired = Vec::new();
        let mut migrated = Vec::new();
        for _ in 0..slots {
            self.slot += 1;
            self.stats.ticks += 1;
            self.drain_queue(&mut admitted_from_queue, &mut expired, obs);
            self.advance_migrations(&mut migrated, obs);
            self.observe_slot(obs);
        }
        let delta = self.session.refresh();
        obs.counter("serve.tick.count", slots);
        obs.counter("serve.queue.admitted", admitted_from_queue.len() as u64);
        obs.counter("serve.queue.expired", expired.len() as u64);
        obs.histogram(
            "serve.tick.latency_ms",
            &TICK_LATENCY_BOUNDS_MS,
            obs.now_ms() - started_ms,
        );
        if self.subscribed {
            for name in &admitted_from_queue {
                self.push_event("queue.admitted", Some(name.clone()), None);
            }
            for name in &expired {
                self.push_event("queue.expired", Some(name.clone()), None);
            }
            for name in &migrated {
                self.push_event("migrated", Some(name.clone()), None);
            }
            for alert in self.slo.drain_alerts() {
                let mut line = StreamLine::new(names::WATCH_STREAM_ALERT, self.slot);
                line.name = Some(alert.app.clone());
                line.alert = Some(alert);
                self.pending.push(line);
            }
            if obs.is_enabled() {
                let report = obs.obs().report();
                let mut line = StreamLine::new(names::WATCH_STREAM_DELTA, self.slot);
                line.delta = Some(report.delta_since(&self.last_report));
                self.last_report = report;
                self.pending.push(line);
            }
        }
        let mut response = Response::ok("tick");
        response.slot = Some(self.slot);
        response.recomputed = Some(delta.recomputed);
        if !admitted_from_queue.is_empty() {
            response.admitted_from_queue = Some(admitted_from_queue);
        }
        if !expired.is_empty() {
            response.expired = Some(expired);
        }
        if !migrated.is_empty() {
            response.migrated = Some(migrated);
        }
        response
    }

    /// One slot of the SLO watch: feed each live application's
    /// utilization-of-allocation proxy for the slot just entered into the
    /// streaming engine, in deterministic name order. Slot `n` (1-based
    /// daemon time) observes calendar sample `n - 1`, cycling demands
    /// shorter than the session.
    fn observe_slot(&mut self, obs: ObsCtx<'_>) {
        if self.watch.is_empty() {
            return;
        }
        let t = (self.slot - 1) as usize;
        let samples: Vec<(usize, f64)> = self
            .watch
            .values()
            .filter(|app| !app.demand.is_empty() && !app.alloc.is_empty())
            .map(|app| {
                // lint:allow(panic-slice-index): index is taken modulo the
                // length, and empty traces are filtered out above.
                let demand = app.demand[t % app.demand.len()];
                // lint:allow(panic-slice-index): same modulo bound as above.
                let alloc = app.alloc[t % app.alloc.len()];
                let u = if alloc > 0.0 { demand / alloc } else { 0.0 };
                (app.slo_index, u)
            })
            .collect();
        for (index, u) in samples {
            self.slo.observe(index, t, u, obs);
        }
    }

    /// One slot's queue pass: FIFO retry under exponential backoff, then
    /// deadline expiry. A failed re-decide is a retry: the entry waits
    /// `retry_backoff_base * 2^(attempts-1)` ticks before the next one,
    /// and `retry_max_attempts` failures drop it outright.
    fn drain_queue(
        &mut self,
        admitted: &mut Vec<String>,
        expired: &mut Vec<String>,
        obs: ObsCtx<'_>,
    ) {
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        while let Some(mut entry) = self.queue.pop_front() {
            if self.slot < entry.next_retry {
                // Still backing off; only the deadline may touch it.
                if self.slot > entry.deadline {
                    self.stats.expired += 1;
                    expired.push(entry.workload.name().to_string());
                } else {
                    remaining.push_back(entry);
                }
                continue;
            }
            let verdict = match self.decide(&entry.workload) {
                Ok((v, _)) => v,
                // A queued workload can no longer fail validation; treat
                // a probe error as "still waiting".
                Err(_) => AdmissionDecision::Queue,
            };
            match verdict {
                AdmissionDecision::Accept { server }
                    if self.session.admit(entry.workload.clone(), server).is_ok() =>
                {
                    self.stats.admitted += 1;
                    self.watch_admit(&entry.workload, entry.samples);
                    admitted.push(entry.workload.name().to_string());
                }
                _ if self.slot > entry.deadline
                    || entry.attempts >= self.config.retry_max_attempts =>
                {
                    self.stats.expired += 1;
                    expired.push(entry.workload.name().to_string());
                }
                _ => {
                    entry.attempts += 1;
                    self.stats.retries += 1;
                    obs.counter("serve.retries", 1);
                    let exponent = (entry.attempts - 1).min(32);
                    let wait = self
                        .config
                        .retry_backoff_base
                        .max(1)
                        .saturating_mul(1u64 << exponent);
                    entry.next_retry = self.slot.saturating_add(wait);
                    remaining.push_back(entry);
                }
            }
        }
        self.queue = remaining;
    }

    /// Handles `migrate`: commit immediately under the teleport config,
    /// or plan a paced move for ticks to drive.
    pub fn migrate(&mut self, name: &str, server: usize, obs: ObsCtx<'_>) -> Response {
        let mut response = Response::ok("migrate");
        response.name = Some(name.to_string());
        response.server = Some(server);
        let Some(id) = self.session.find(name) else {
            return Response::error("migrate", format!("{name:?} is not a live application"));
        };
        let from = self.session.assignment_of(id);
        if from == Some(server) {
            return Response::error(
                "migrate",
                format!("{name:?} already runs on server {server}"),
            );
        }
        if self.config.max_servers.is_some_and(|cap| server >= cap) {
            return Response::error("migrate", format!("server {server} is beyond the pool cap"));
        }
        if self.config.migration.is_teleport() {
            return match self.session.reassign(id, server) {
                Ok(_) => {
                    self.stats.migrations += 1;
                    obs.counter("serve.migrations", 1);
                    self.push_event("migrated", Some(name.to_string()), Some(server));
                    response.decision = Some("committed".to_string());
                    response
                }
                Err(e) => Response::error("migrate", e.to_string()),
            };
        }
        if self
            .move_ids
            .iter()
            .enumerate()
            .any(|(idx, &mid)| mid == id && self.orch.has_active_move(idx))
        {
            return Response::error("migrate", format!("{name:?} is already migrating"));
        }
        let idx = self.move_ids.len();
        self.move_ids.push(id);
        self.orch.ensure_apps(self.move_ids.len());
        self.orch.set_current(idx, from);
        self.orch
            .plan_move(idx, server, 1, self.slot as usize, None);
        obs.counter("migration.planned", 1);
        self.push_event("migration.planned", Some(name.to_string()), Some(server));
        response.decision = Some("planned".to_string());
        response
    }

    /// One slot of the migration machine: start eligible moves under the
    /// storm caps, derive contention/health from the live session, and
    /// apply the resulting phase work to the session.
    fn advance_migrations(&mut self, migrated: &mut Vec<String>, obs: ObsCtx<'_>) {
        if self.orch.is_idle() {
            return;
        }
        let slot = self.slot as usize;
        let begin = self.orch.begin_slot(slot, obs);
        self.apply_transitions(&begin, migrated, obs);
        let capacity = self.config.server.capacity();
        let servers = self.session.server_count();
        let mut contended = vec![false; servers];
        for (s, flag) in contended.iter_mut().enumerate() {
            *flag = self
                .session
                .server_required(s)
                .is_some_and(|required| required > capacity);
        }
        let mut healthy = vec![true; self.move_ids.len()];
        for (app, to) in self.orch.in_health_check() {
            // Healthy = the destination (reservation included) still fits
            // its commitments within one server.
            let fits = self
                .session
                .server_required(to)
                .is_none_or(|required| required <= capacity);
            if let Some(h) = healthy.get_mut(app) {
                *h = fits;
            }
        }
        let done = self.orch.complete_slot(slot, &contended, &healthy, obs);
        self.apply_transitions(&done, migrated, obs);
    }

    /// Mirrors machine transitions into the session: a drain start
    /// reserves the destination, a commit promotes the reservation, a
    /// rollback releases it.
    fn apply_transitions(
        &mut self,
        transitions: &[Transition],
        migrated: &mut Vec<String>,
        obs: ObsCtx<'_>,
    ) {
        for t in transitions {
            let Some(&id) = self.move_ids.get(t.app) else {
                continue;
            };
            // Collapsing these ifs into match guards would run session
            // mutations (begin/commit) inside guard expressions.
            #[allow(clippy::collapsible_match)]
            match t.phase {
                MigrationPhase::Draining => {
                    // A refused reservation (stale id, impossible server)
                    // drops the machine ticket too, so the move can never
                    // cut over against a session that is not booking it.
                    if self.session.begin_migration(id, t.to).is_err() {
                        self.orch.cancel_app(t.app, self.slot as usize, obs);
                    }
                }
                MigrationPhase::Committed => {
                    if self.session.commit_migration(id).is_ok() {
                        self.stats.migrations += 1;
                        obs.counter("serve.migrations", 1);
                        if let Some(w) = self.session.workload(id) {
                            migrated.push(w.name().to_string());
                        }
                    }
                }
                MigrationPhase::RolledBack => {
                    // lint:allow(robust-result-discard): a move whose
                    // begin was refused has no open reservation — there
                    // is nothing to roll back and no state to repair.
                    let _ = self.session.rollback_migration(id);
                }
                _ => {}
            }
        }
    }

    /// Handles `snapshot`: the live plan, queue, and slot.
    pub fn snapshot(&mut self) -> Response {
        let mut response = Response::ok("snapshot");
        response.slot = Some(self.slot);
        response.queue = Some(self.queued_names());
        if !self.session.is_empty() {
            match self.session.report() {
                Ok(plan) => response.plan = Some(plan),
                Err(e) => return Response::error("snapshot", e.to_string()),
            }
        }
        response
    }

    /// Handles `subscribe`: switch on telemetry streaming. Pre-subscribe
    /// alerts and metrics are history — the alert cursor and the delta
    /// baseline both reset here, so the stream covers exactly what
    /// happens from this command on.
    pub fn subscribe(&mut self, obs: ObsCtx<'_>) -> Response {
        self.subscribed = true;
        self.slo.drain_alerts();
        self.last_report = obs.obs().report();
        let mut response = Response::ok("subscribe");
        response.slot = Some(self.slot);
        response
    }

    /// Handles `shutdown`: final statistics.
    pub fn shutdown(&mut self) -> Response {
        let mut response = Response::ok("shutdown");
        response.slot = Some(self.slot);
        response.stats = Some(self.stats());
        response
    }

    /// Executes one parsed command. `Shutdown` only reports; stopping the
    /// loop is the caller's job (see [`run`](Self::run)).
    pub fn execute(&mut self, command: &Command, obs: ObsCtx<'_>) -> Response {
        match command {
            Command::Admit { name, demand } => self.admit(name, demand, obs),
            Command::Depart { name } => self.depart(name, obs),
            Command::Migrate { name, server } => self.migrate(name, *server, obs),
            Command::Tick { slots } => self.tick(*slots, obs),
            Command::Snapshot => self.snapshot(),
            Command::Subscribe => self.subscribe(obs),
            Command::Shutdown => self.shutdown(),
        }
    }

    /// Drives the daemon over line-delimited JSON: one command per input
    /// line, one response per output line. Returns the final statistics
    /// at `shutdown` or end of input.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when reading a command line or
    /// writing a response fails; protocol-level problems (unparseable or
    /// inapplicable commands) are reported in-band as `ok: false`
    /// responses and do not stop the loop.
    pub fn run(
        &mut self,
        reader: impl BufRead,
        mut writer: impl Write,
        obs: ObsCtx<'_>,
    ) -> std::io::Result<ServeStats> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = match parse_command(&line) {
                Ok(command) => {
                    let response = self.execute(&command, obs);
                    writeln!(writer, "{}", response.to_line())?;
                    for stream_line in self.drain_stream() {
                        writeln!(writer, "{}", stream_line.to_line())?;
                    }
                    if matches!(command, Command::Shutdown) {
                        writer.flush()?;
                        return Ok(self.stats());
                    }
                    continue;
                }
                Err(message) => Response::error("error", message),
            };
            writeln!(writer, "{}", response.to_line())?;
        }
        writer.flush()?;
        Ok(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;

    fn config() -> DaemonConfig {
        DaemonConfig::new(
            ServerSpec::sixteen_way(),
            PoolCommitments::new(CosSpec::new(1.0, 60).unwrap()),
            AppQos::paper_default(None),
            Calendar::five_minute(),
        )
    }

    fn admit_level(d: &mut Daemon, name: &str, level: f64) -> Response {
        d.admit(name, &DemandSpec::Level(level), ObsCtx::none())
    }

    #[test]
    fn admissions_fill_then_open_servers() {
        let mut d = Daemon::new(config());
        // The paper-default band turns a constant demand of 4 into an
        // allocation of about 4 / 0.66 ≈ 6.1 capacity units.
        let r = admit_level(&mut d, "a", 4.0);
        assert_eq!(r.decision.as_deref(), Some("accepted"));
        assert_eq!(r.server, Some(0));
        assert!(r.required.is_some());
        // Best-fit keeps packing server 0 while it fits.
        let r = admit_level(&mut d, "b", 4.0);
        assert_eq!(r.server, Some(0));
        // Three at ~6.1 exceed 16: the next one opens server 1.
        let r = admit_level(&mut d, "c", 4.0);
        assert_eq!(r.server, Some(1));
        let snap = d.snapshot();
        let plan = snap.plan.unwrap();
        assert_eq!(plan.servers_used, 2);
        assert_eq!(plan.assignment, vec![0, 0, 1]);
    }

    #[test]
    fn pool_cap_queues_then_admits_after_departure() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 4;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        let r = admit_level(&mut d, "b", 7.0);
        assert_eq!(r.decision.as_deref(), Some("queued"));
        assert_eq!(r.deadline_slot, Some(4));
        assert_eq!(d.queued_names(), vec!["b"]);
        // Still no room: the tick leaves it queued.
        let r = d.tick(1, ObsCtx::none());
        assert!(r.admitted_from_queue.is_none());
        // `a` departs; the next tick admits `b` from the queue.
        d.depart("a", ObsCtx::none());
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.admitted_from_queue, Some(vec!["b".to_string()]));
        assert!(d.queued_names().is_empty());
        let stats = d.stats();
        assert_eq!((stats.admitted, stats.queued, stats.departed), (2, 1, 1));
    }

    #[test]
    fn queued_admissions_expire_at_their_deadline() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 2;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        admit_level(&mut d, "b", 7.0);
        let r = d.tick(2, ObsCtx::none());
        assert!(r.expired.is_none(), "deadline slot itself still waits");
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.expired, Some(vec!["b".to_string()]));
        assert_eq!(d.stats().expired, 1);
    }

    #[test]
    fn zero_deadline_disables_the_queue() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 0;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        let r = admit_level(&mut d, "b", 7.0);
        assert_eq!(r.decision.as_deref(), Some("rejected"));
        assert!(r.reason.unwrap().contains("queueing is disabled"));
    }

    #[test]
    fn never_fitting_demand_is_rejected_not_queued() {
        let mut d = Daemon::new(config());
        // A constant demand of 12 translates to an allocation beyond one
        // 16-way server, so no pool of these servers can ever host it.
        let r = admit_level(&mut d, "whale", 12.0);
        assert_eq!(r.decision.as_deref(), Some("rejected"));
        assert!(r.reason.unwrap().contains("does not fit an empty server"));
        assert!(d.queued_names().is_empty());
    }

    #[test]
    fn duplicate_names_are_refused_everywhere() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        assert!(!admit_level(&mut d, "a", 1.0).ok, "live duplicate");
        admit_level(&mut d, "b", 7.0);
        assert!(!admit_level(&mut d, "b", 1.0).ok, "queued duplicate");
    }

    #[test]
    fn depart_covers_live_queued_and_unknown() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        admit_level(&mut d, "b", 7.0);
        assert!(d.depart("b", ObsCtx::none()).ok, "queued withdraw");
        assert!(d.depart("a", ObsCtx::none()).ok, "live depart");
        assert!(!d.depart("ghost", ObsCtx::none()).ok);
        assert_eq!(d.stats().departed, 2);
    }

    #[test]
    fn tick_recomputes_only_touched_servers() {
        let mut d = Daemon::new(config());
        admit_level(&mut d, "a", 4.0);
        admit_level(&mut d, "b", 7.0);
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.recomputed, Some(2));
        // Nothing changed: the next tick recomputes nothing.
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.recomputed, Some(0));
        admit_level(&mut d, "c", 1.0);
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.recomputed, Some(1));
    }

    #[test]
    fn teleport_migrate_commits_immediately() {
        let obs = ropus_obs::Obs::deterministic();
        let mut d = Daemon::new(config());
        admit_level(&mut d, "a", 4.0);
        admit_level(&mut d, "b", 4.0);
        let r = d.migrate("b", 1, ObsCtx::from(&obs));
        assert!(r.ok);
        assert_eq!(r.decision.as_deref(), Some("committed"));
        assert_eq!(r.server, Some(1));
        assert_eq!(d.stats().migrations, 1);
        assert_eq!(obs.report().counter("serve.migrations"), 1);
        let snap = d.snapshot();
        assert_eq!(snap.plan.unwrap().assignment, vec![0, 1]);
        // Guards: unknown app, no-op move.
        assert!(!d.migrate("ghost", 1, ObsCtx::none()).ok);
        assert!(!d.migrate("b", 1, ObsCtx::none()).ok);
    }

    #[test]
    fn paced_migrate_walks_the_machine_over_ticks() {
        let mut cfg = config();
        cfg.migration = MigrationConfig::paced();
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 4.0);
        admit_level(&mut d, "b", 4.0);
        let r = d.migrate("b", 1, ObsCtx::none());
        assert!(r.ok);
        assert_eq!(r.decision.as_deref(), Some("planned"));
        assert!(!d.migrate("b", 1, ObsCtx::none()).ok, "one move at a time");
        // 2 drain + 1 transfer + 2 health slots: commit on the fifth tick.
        for _ in 0..4 {
            let r = d.tick(1, ObsCtx::none());
            assert!(r.migrated.is_none());
        }
        // Mid-move the destination is double-booked by the reservation.
        assert_eq!(d.session_mut().server_reserved(1).len(), 1);
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.migrated, Some(vec!["b".to_string()]));
        assert_eq!(d.stats().migrations, 1);
        assert!(d.session_mut().server_reserved(1).is_empty());
        let snap = d.snapshot();
        assert_eq!(snap.plan.unwrap().assignment, vec![0, 1]);
    }

    #[test]
    fn departing_app_cancels_its_paced_move() {
        let mut cfg = config();
        cfg.migration = MigrationConfig::paced();
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 4.0);
        admit_level(&mut d, "b", 4.0);
        d.migrate("b", 1, ObsCtx::none());
        d.tick(1, ObsCtx::none());
        assert_eq!(d.session_mut().server_reserved(1).len(), 1);
        assert!(d.depart("b", ObsCtx::none()).ok);
        assert!(d.session_mut().server_reserved(1).is_empty());
        let r = d.tick(3, ObsCtx::none());
        assert!(r.migrated.is_none());
        assert_eq!(d.stats().migrations, 0);
    }

    #[test]
    fn queue_retries_back_off_exponentially() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 40;
        cfg.retry_backoff_base = 2;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        admit_level(&mut d, "b", 7.0);
        // Retries run at slots 1, 3 (+2), 7 (+4); the next waits until 15.
        d.tick(8, ObsCtx::none());
        assert_eq!(d.stats().retries, 3);
        // Freed capacity is only noticed at the next backoff point.
        d.depart("a", ObsCtx::none());
        let r = d.tick(6, ObsCtx::none());
        assert!(r.admitted_from_queue.is_none());
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.admitted_from_queue, Some(vec!["b".to_string()]));
    }

    #[test]
    fn retry_attempts_cap_drops_the_admission() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 100;
        cfg.retry_max_attempts = 2;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        admit_level(&mut d, "b", 7.0);
        // Slot 1 and 2 fail (two retries); the slot-4 re-decide hits the
        // attempt cap and drops the admission long before its deadline.
        let r = d.tick(3, ObsCtx::none());
        assert!(r.expired.is_none());
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.expired, Some(vec!["b".to_string()]));
        assert_eq!(d.stats().retries, 2);
        assert_eq!(d.stats().expired, 1);
    }

    #[test]
    fn run_loop_speaks_the_protocol_end_to_end() {
        let script = concat!(
            r#"{"cmd":"admit","name":"a","level":4.0}"#,
            "\n",
            "not json\n",
            "\n",
            r#"{"cmd":"tick"}"#,
            "\n",
            r#"{"cmd":"snapshot"}"#,
            "\n",
            r#"{"cmd":"shutdown"}"#,
            "\n",
            r#"{"cmd":"tick"}"#,
            "\n",
        );
        let mut d = Daemon::new(config());
        let mut out = Vec::new();
        let stats = d.run(script.as_bytes(), &mut out, ObsCtx::none()).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 5, "shutdown stops the loop");
        assert!(lines[0].contains(r#""decision":"accepted""#));
        assert!(lines[1].contains(r#""ok":false"#));
        assert!(lines[2].contains(r#""cmd":"tick""#));
        assert!(lines[3].contains(r#""plan""#));
        assert!(lines[4].contains(r#""stats""#));
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.ticks, 1);
    }

    #[test]
    fn subscribe_streams_events_alerts_and_deltas() {
        let obs = ropus_obs::Obs::deterministic();
        let mut d = Daemon::new(config());
        // Nothing streams before the subscription.
        admit_level(&mut d, "quiet", 4.0);
        assert!(d.drain_stream().is_empty());
        let r = d.subscribe(ObsCtx::from(&obs));
        assert!(r.ok);
        admit_level(&mut d, "a", 4.0);
        let lines = d.drain_stream();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].kind, ropus_obs::names::WATCH_STREAM_EVENT);
        assert_eq!(lines[0].event.as_deref(), Some("admitted"));
        assert_eq!(lines[0].name.as_deref(), Some("a"));
        // A tick with a collector attached emits a snapshot delta; the
        // paper-default band keeps a constant demand inside (U_low,
        // U_high], so no alert fires.
        d.tick(1, ObsCtx::from(&obs));
        let lines = d.drain_stream();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].kind, ropus_obs::names::WATCH_STREAM_DELTA);
        let delta = lines[0].delta.as_ref().unwrap();
        assert_eq!(delta.counter("serve.tick.count"), 1);
        // Deltas re-sum: a second tick's delta holds only its own tick.
        d.tick(1, ObsCtx::from(&obs));
        let lines = d.drain_stream();
        assert_eq!(
            lines[0].delta.as_ref().unwrap().counter("serve.tick.count"),
            1
        );
        d.depart("a", ObsCtx::from(&obs));
        let lines = d.drain_stream();
        assert_eq!(lines[0].event.as_deref(), Some("departed"));
    }

    #[test]
    fn sustained_overload_streams_a_burn_rate_alert() {
        let mut d = Daemon::new(config());
        d.subscribe(ObsCtx::none());
        // A contiguous burst covering < M_degr of the week: the M_degr
        // percentile cap in translation excludes the burst from the
        // allocation, so every burst slot runs degraded (u > U_high)
        // while the weekly degraded fraction still honors the contract.
        // Concentrated in one run, the fast-burn short window saturates
        // and must fire — and clear once the burst passes.
        let slots = Calendar::five_minute().slots_per_week();
        let samples: Vec<f64> = (0..slots)
            .map(|t| if (100..150).contains(&t) { 3.2 } else { 2.0 })
            .collect();
        let r = d.admit("bursty", &DemandSpec::Samples(samples), ObsCtx::none());
        assert_eq!(r.decision.as_deref(), Some("accepted"));
        d.drain_stream();
        d.tick(200, ObsCtx::none());
        let lines = d.drain_stream();
        let alerts: Vec<_> = lines
            .iter()
            .filter(|l| l.kind == ropus_obs::names::WATCH_STREAM_ALERT)
            .map(|l| l.alert.as_ref().unwrap())
            .collect();
        assert!(
            alerts
                .iter()
                .any(|a| a.kind == ropus_obs::AlertKind::Fire && a.app == "bursty"),
            "a concentrated degraded run must fire a burn-rate alert: {alerts:?}"
        );
        assert!(
            alerts.iter().any(|a| a.kind == ropus_obs::AlertKind::Clear),
            "the alert must clear once the burst passes: {alerts:?}"
        );
    }

    #[test]
    fn observability_counts_the_admission_flow() {
        let obs = ropus_obs::Obs::deterministic();
        let mut cfg = config();
        cfg.max_servers = Some(1);
        let mut d = Daemon::new(cfg);
        d.admit("a", &DemandSpec::Level(7.0), ObsCtx::from(&obs));
        d.admit("b", &DemandSpec::Level(7.0), ObsCtx::from(&obs));
        d.tick(1, ObsCtx::from(&obs));
        d.depart("a", ObsCtx::from(&obs));
        d.tick(1, ObsCtx::from(&obs));
        let report = obs.report();
        assert_eq!(report.counter("serve.admit.accepted"), 1);
        assert_eq!(report.counter("serve.admit.queued"), 1);
        assert_eq!(report.counter("serve.retries"), 1);
        assert_eq!(report.counter("serve.queue.admitted"), 1);
        assert_eq!(report.counter("serve.depart.count"), 1);
        assert_eq!(report.counter("serve.tick.count"), 2);
        assert!(report.histogram("serve.tick.latency_ms").is_some());
    }
}
