//! The `ropus serve` online planner daemon.
//!
//! A long-running loop that ingests demand incrementally over the
//! line-delimited JSON protocol of [`protocol`], maintains a live plan in
//! an incremental [`EngineSession`], and answers admission requests with
//! a pluggable [`AdmissionPolicy`] scored
//! against each server's remaining headroom under the pool's θ and CoS
//! commitments:
//!
//! * `admit` translates the offered demand into per-CoS allocation
//!   requirements (the same [`translate`] every batch path uses), probes
//!   every open server without mutating the plan, and lets the policy
//!   accept (naming a server), queue (with a deadline), or reject;
//! * `depart` removes a live application, invalidating only its server;
//! * `tick` advances logical time: queued admissions are retried in FIFO
//!   order, expired ones are dropped, and exactly the touched servers'
//!   required capacities are recomputed;
//! * `snapshot` emits the live plan — bit-identical to a cold batch
//!   consolidation of the same assignment (see `tests/serve.rs` and the
//!   ci.sh serve gate);
//! * `shutdown` reports aggregate statistics and stops the loop.
//!
//! Every decision is a pure function of the command stream and the
//! daemon configuration, so a replayed script reproduces the exact plan
//! — the same determinism contract the batch pipeline holds.

pub mod admission;
pub mod protocol;

use std::collections::VecDeque;
use std::io::{BufRead, Write};

use ropus_obs::ObsCtx;
use ropus_placement::server::ServerSpec;
use ropus_placement::session::EngineSession;
use ropus_placement::workload::Workload;
use ropus_qos::translation::translate;
use ropus_qos::{AppQos, PoolCommitments};
use ropus_trace::{Calendar, Trace};

use admission::{
    count_decision, AdmissionContext, AdmissionDecision, AdmissionPolicy, BestFit, ServerProbe,
};
use protocol::{parse_command, Command, DemandSpec, Response, ServeStats};

/// Latency buckets for the `serve.tick.latency_ms` histogram.
static TICK_LATENCY_BOUNDS_MS: [f64; 6] = [0.1, 1.0, 5.0, 25.0, 100.0, 500.0];

/// Static configuration of one serve daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The pool's server type.
    pub server: ServerSpec,
    /// The pool's CoS commitments (θ and deadline).
    pub commitments: PoolCommitments,
    /// The application QoS every admitted demand is translated under.
    pub qos: AppQos,
    /// Slot calendar demand arrives on.
    pub calendar: Calendar,
    /// Horizon, in weeks, that `level`-style admissions are planned over.
    pub weeks: usize,
    /// Required-capacity binary-search tolerance, in capacity units.
    pub tolerance: f64,
    /// Worker threads for delta refreshes (never changes any result).
    pub threads: usize,
    /// Ticks a queued admission survives before expiring; 0 disables the
    /// queue (every `Queue` verdict becomes a rejection).
    pub queue_deadline_slots: u64,
    /// Pool size cap; `None` = unbounded.
    pub max_servers: Option<usize>,
}

impl DaemonConfig {
    /// A config with the paper's defaults: one-week horizon, 0.05
    /// tolerance, serial refresh, 12-tick queue deadline, unbounded pool.
    pub fn new(
        server: ServerSpec,
        commitments: PoolCommitments,
        qos: AppQos,
        calendar: Calendar,
    ) -> Self {
        DaemonConfig {
            server,
            commitments,
            qos,
            calendar,
            weeks: 1,
            tolerance: 0.05,
            threads: 1,
            queue_deadline_slots: 12,
            max_servers: None,
        }
    }
}

/// One admission parked by a `Queue` verdict.
#[derive(Debug, Clone)]
struct QueuedAdmission {
    workload: Workload,
    /// Last slot (inclusive) at which a retry may still admit it.
    deadline: u64,
}

/// The online planner: an [`EngineSession`] plus admission queue, driven
/// by protocol commands. See the module docs for the command semantics.
pub struct Daemon {
    config: DaemonConfig,
    policy: Box<dyn AdmissionPolicy + Send>,
    session: EngineSession,
    queue: VecDeque<QueuedAdmission>,
    slot: u64,
    stats: ServeStats,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("policy", &self.policy.name())
            .field("live", &self.session.len())
            .field("queued", &self.queue.len())
            .field("slot", &self.slot)
            .finish()
    }
}

impl Daemon {
    /// Creates a daemon with the default [`BestFit`] policy.
    pub fn new(config: DaemonConfig) -> Self {
        Daemon::with_policy(config, Box::new(BestFit))
    }

    /// Creates a daemon with an explicit admission policy.
    pub fn with_policy(config: DaemonConfig, policy: Box<dyn AdmissionPolicy + Send>) -> Self {
        let session = EngineSession::new(config.server, config.commitments)
            .with_tolerance(config.tolerance)
            .with_threads(config.threads);
        Daemon {
            config,
            policy,
            session,
            queue: VecDeque::new(),
            slot: 0,
            stats: ServeStats::default(),
        }
    }

    /// The daemon's logical slot (ticks processed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.stats;
        stats.recomputes = self.session.recomputes();
        stats
    }

    /// Names currently waiting in the queue, FIFO order.
    pub fn queued_names(&self) -> Vec<String> {
        self.queue
            .iter()
            .map(|q| q.workload.name().to_string())
            .collect()
    }

    /// The live session (for snapshot comparisons in tests).
    pub fn session_mut(&mut self) -> &mut EngineSession {
        &mut self.session
    }

    /// Translates an offered demand into a placeable workload under the
    /// daemon's QoS and commitments.
    fn translate_demand(
        &self,
        name: &str,
        demand: &DemandSpec,
        obs: ObsCtx<'_>,
    ) -> Result<Workload, String> {
        let trace = match demand {
            DemandSpec::Level(level) => Trace::constant(
                self.config.calendar,
                *level,
                self.config.weeks * self.config.calendar.slots_per_week(),
            ),
            DemandSpec::Samples(samples) => {
                // lint:allow(needless-trace-clone): ownership hand-off — the
                // command keeps its sample vector; the trace needs its own.
                Trace::from_samples(self.config.calendar, samples.clone())
            }
        }
        .map_err(|e| format!("bad demand: {e}"))?;
        let translation = translate(&trace, &self.config.qos, &self.config.commitments.cos2, obs)
            .map_err(|e| format!("translation failed: {e}"))?;
        Ok(Workload::from_translation(name.to_string(), translation))
    }

    /// Probes every touched server and asks the policy for a verdict.
    /// Returns the probes too so callers can answer "what would the
    /// target require?" without forcing a refresh.
    fn decide(&self, workload: &Workload) -> Result<(AdmissionDecision, Vec<ServerProbe>), String> {
        let mut probes = Vec::with_capacity(self.session.server_count());
        for server in 0..self.session.server_count() {
            let required = self
                .session
                .probe(workload, server)
                .map_err(|e| e.to_string())?;
            probes.push(ServerProbe { server, required });
        }
        let servers_open = (0..self.session.server_count())
            .filter(|&s| !self.session.server_members(s).is_empty())
            .count();
        let ctx = AdmissionContext {
            probes: &probes,
            capacity: self.config.server.capacity(),
            servers_open,
            max_servers: self.config.max_servers,
            queue_len: self.queue.len(),
            slot: self.slot,
        };
        let mut decision = self.policy.decide(&ctx);
        if let AdmissionDecision::Accept { server } = decision {
            if self.config.max_servers.is_some_and(|cap| server >= cap) {
                return Err(format!(
                    "policy {} placed on server {server} beyond the pool cap",
                    self.policy.name()
                ));
            }
            // A placement on a fresh (never-probed) server must still
            // fit: a demand that cannot satisfy the commitments alone on
            // an empty server can never be placed, so reject it rather
            // than queueing it forever.
            if server >= probes.len()
                && self
                    .session
                    .probe(workload, server)
                    .map_err(|e| e.to_string())?
                    .is_none()
            {
                decision = AdmissionDecision::Reject {
                    reason: "demand does not fit an empty server".to_string(),
                };
            }
        }
        if matches!(decision, AdmissionDecision::Queue) && self.config.queue_deadline_slots == 0 {
            decision = AdmissionDecision::Reject {
                reason: "no feasible server and queueing is disabled".to_string(),
            };
        }
        Ok((decision, probes))
    }

    /// Handles `admit`: translate, probe, decide, and apply the verdict.
    pub fn admit(&mut self, name: &str, demand: &DemandSpec, obs: ObsCtx<'_>) -> Response {
        let mut response = Response::ok("admit");
        response.name = Some(name.to_string());
        if self.queued_names().iter().any(|n| n == name) {
            return Response::error("admit", format!("{name:?} is already queued"));
        }
        let workload = match self.translate_demand(name, demand, obs) {
            Ok(w) => w,
            Err(e) => return Response::error("admit", e),
        };
        let (decision, probes) = match self.decide(&workload) {
            Ok(d) => d,
            Err(e) => return Response::error("admit", e),
        };
        count_decision(&mut self.stats, &decision);
        match decision {
            AdmissionDecision::Accept { server } => {
                // Answer the post-admission requirement from the probe
                // (recomputing it for a freshly opened server) rather
                // than refreshing the whole pool — the deferred batch
                // recompute stays with `tick`.
                let required = probes
                    .iter()
                    .find(|p| p.server == server)
                    .map(|p| p.required)
                    .unwrap_or_else(|| self.session.probe(&workload, server).ok().flatten());
                if let Err(e) = self.session.admit(workload, server) {
                    return Response::error("admit", e.to_string());
                }
                obs.counter("serve.admit.accepted", 1);
                response.decision = Some("accepted".to_string());
                response.server = Some(server);
                response.required = required;
            }
            AdmissionDecision::Queue => {
                let deadline = self.slot + self.config.queue_deadline_slots;
                self.queue.push_back(QueuedAdmission { workload, deadline });
                obs.counter("serve.admit.queued", 1);
                response.decision = Some("queued".to_string());
                response.deadline_slot = Some(deadline);
            }
            AdmissionDecision::Reject { reason } => {
                obs.counter("serve.admit.rejected", 1);
                response.decision = Some("rejected".to_string());
                response.reason = Some(reason);
            }
        }
        response
    }

    /// Handles `depart`: removes a live application by name.
    pub fn depart(&mut self, name: &str, obs: ObsCtx<'_>) -> Response {
        // A queued (not yet placed) application may also withdraw.
        if let Some(at) = self.queue.iter().position(|q| q.workload.name() == name) {
            self.queue.remove(at);
            self.stats.departed += 1;
            obs.counter("serve.depart.count", 1);
            let mut response = Response::ok("depart");
            response.name = Some(name.to_string());
            return response;
        }
        let Some(id) = self.session.find(name) else {
            return Response::error("depart", format!("{name:?} is not a live application"));
        };
        match self.session.depart(id) {
            Ok(_) => {
                self.stats.departed += 1;
                obs.counter("serve.depart.count", 1);
                let mut response = Response::ok("depart");
                response.name = Some(name.to_string());
                response
            }
            Err(e) => Response::error("depart", e.to_string()),
        }
    }

    /// Handles `tick`: advance `slots` logical slots, retrying and
    /// expiring queued admissions at each one, then recompute exactly the
    /// touched servers.
    pub fn tick(&mut self, slots: u64, obs: ObsCtx<'_>) -> Response {
        let started_ms = obs.now_ms();
        let mut admitted_from_queue = Vec::new();
        let mut expired = Vec::new();
        for _ in 0..slots {
            self.slot += 1;
            self.stats.ticks += 1;
            self.drain_queue(&mut admitted_from_queue, &mut expired);
        }
        let delta = self.session.refresh();
        obs.counter("serve.tick.count", slots);
        obs.counter("serve.queue.admitted", admitted_from_queue.len() as u64);
        obs.counter("serve.queue.expired", expired.len() as u64);
        obs.histogram(
            "serve.tick.latency_ms",
            &TICK_LATENCY_BOUNDS_MS,
            obs.now_ms() - started_ms,
        );
        let mut response = Response::ok("tick");
        response.slot = Some(self.slot);
        response.recomputed = Some(delta.recomputed);
        if !admitted_from_queue.is_empty() {
            response.admitted_from_queue = Some(admitted_from_queue);
        }
        if !expired.is_empty() {
            response.expired = Some(expired);
        }
        response
    }

    /// One slot's queue pass: FIFO retry, then deadline expiry.
    fn drain_queue(&mut self, admitted: &mut Vec<String>, expired: &mut Vec<String>) {
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        while let Some(entry) = self.queue.pop_front() {
            let verdict = match self.decide(&entry.workload) {
                Ok((v, _)) => v,
                // A queued workload can no longer fail validation; treat
                // a probe error as "still waiting".
                Err(_) => AdmissionDecision::Queue,
            };
            match verdict {
                AdmissionDecision::Accept { server }
                    if self.session.admit(entry.workload.clone(), server).is_ok() =>
                {
                    self.stats.admitted += 1;
                    admitted.push(entry.workload.name().to_string());
                }
                _ if self.slot > entry.deadline => {
                    self.stats.expired += 1;
                    expired.push(entry.workload.name().to_string());
                }
                _ => remaining.push_back(entry),
            }
        }
        self.queue = remaining;
    }

    /// Handles `snapshot`: the live plan, queue, and slot.
    pub fn snapshot(&mut self) -> Response {
        let mut response = Response::ok("snapshot");
        response.slot = Some(self.slot);
        response.queue = Some(self.queued_names());
        if !self.session.is_empty() {
            match self.session.report() {
                Ok(plan) => response.plan = Some(plan),
                Err(e) => return Response::error("snapshot", e.to_string()),
            }
        }
        response
    }

    /// Handles `shutdown`: final statistics.
    pub fn shutdown(&mut self) -> Response {
        let mut response = Response::ok("shutdown");
        response.slot = Some(self.slot);
        response.stats = Some(self.stats());
        response
    }

    /// Executes one parsed command. `Shutdown` only reports; stopping the
    /// loop is the caller's job (see [`run`](Self::run)).
    pub fn execute(&mut self, command: &Command, obs: ObsCtx<'_>) -> Response {
        match command {
            Command::Admit { name, demand } => self.admit(name, demand, obs),
            Command::Depart { name } => self.depart(name, obs),
            Command::Tick { slots } => self.tick(*slots, obs),
            Command::Snapshot => self.snapshot(),
            Command::Shutdown => self.shutdown(),
        }
    }

    /// Drives the daemon over line-delimited JSON: one command per input
    /// line, one response per output line. Returns the final statistics
    /// at `shutdown` or end of input.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when reading a command line or
    /// writing a response fails; protocol-level problems (unparseable or
    /// inapplicable commands) are reported in-band as `ok: false`
    /// responses and do not stop the loop.
    pub fn run(
        &mut self,
        reader: impl BufRead,
        mut writer: impl Write,
        obs: ObsCtx<'_>,
    ) -> std::io::Result<ServeStats> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = match parse_command(&line) {
                Ok(command) => {
                    let response = self.execute(&command, obs);
                    writeln!(writer, "{}", response.to_line())?;
                    if matches!(command, Command::Shutdown) {
                        writer.flush()?;
                        return Ok(self.stats());
                    }
                    continue;
                }
                Err(message) => Response::error("error", message),
            };
            writeln!(writer, "{}", response.to_line())?;
        }
        writer.flush()?;
        Ok(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_qos::CosSpec;

    fn config() -> DaemonConfig {
        DaemonConfig::new(
            ServerSpec::sixteen_way(),
            PoolCommitments::new(CosSpec::new(1.0, 60).unwrap()),
            AppQos::paper_default(None),
            Calendar::five_minute(),
        )
    }

    fn admit_level(d: &mut Daemon, name: &str, level: f64) -> Response {
        d.admit(name, &DemandSpec::Level(level), ObsCtx::none())
    }

    #[test]
    fn admissions_fill_then_open_servers() {
        let mut d = Daemon::new(config());
        // The paper-default band turns a constant demand of 4 into an
        // allocation of about 4 / 0.66 ≈ 6.1 capacity units.
        let r = admit_level(&mut d, "a", 4.0);
        assert_eq!(r.decision.as_deref(), Some("accepted"));
        assert_eq!(r.server, Some(0));
        assert!(r.required.is_some());
        // Best-fit keeps packing server 0 while it fits.
        let r = admit_level(&mut d, "b", 4.0);
        assert_eq!(r.server, Some(0));
        // Three at ~6.1 exceed 16: the next one opens server 1.
        let r = admit_level(&mut d, "c", 4.0);
        assert_eq!(r.server, Some(1));
        let snap = d.snapshot();
        let plan = snap.plan.unwrap();
        assert_eq!(plan.servers_used, 2);
        assert_eq!(plan.assignment, vec![0, 0, 1]);
    }

    #[test]
    fn pool_cap_queues_then_admits_after_departure() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 4;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        let r = admit_level(&mut d, "b", 7.0);
        assert_eq!(r.decision.as_deref(), Some("queued"));
        assert_eq!(r.deadline_slot, Some(4));
        assert_eq!(d.queued_names(), vec!["b"]);
        // Still no room: the tick leaves it queued.
        let r = d.tick(1, ObsCtx::none());
        assert!(r.admitted_from_queue.is_none());
        // `a` departs; the next tick admits `b` from the queue.
        d.depart("a", ObsCtx::none());
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.admitted_from_queue, Some(vec!["b".to_string()]));
        assert!(d.queued_names().is_empty());
        let stats = d.stats();
        assert_eq!((stats.admitted, stats.queued, stats.departed), (2, 1, 1));
    }

    #[test]
    fn queued_admissions_expire_at_their_deadline() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 2;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        admit_level(&mut d, "b", 7.0);
        let r = d.tick(2, ObsCtx::none());
        assert!(r.expired.is_none(), "deadline slot itself still waits");
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.expired, Some(vec!["b".to_string()]));
        assert_eq!(d.stats().expired, 1);
    }

    #[test]
    fn zero_deadline_disables_the_queue() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        cfg.queue_deadline_slots = 0;
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        let r = admit_level(&mut d, "b", 7.0);
        assert_eq!(r.decision.as_deref(), Some("rejected"));
        assert!(r.reason.unwrap().contains("queueing is disabled"));
    }

    #[test]
    fn never_fitting_demand_is_rejected_not_queued() {
        let mut d = Daemon::new(config());
        // A constant demand of 12 translates to an allocation beyond one
        // 16-way server, so no pool of these servers can ever host it.
        let r = admit_level(&mut d, "whale", 12.0);
        assert_eq!(r.decision.as_deref(), Some("rejected"));
        assert!(r.reason.unwrap().contains("does not fit an empty server"));
        assert!(d.queued_names().is_empty());
    }

    #[test]
    fn duplicate_names_are_refused_everywhere() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        assert!(!admit_level(&mut d, "a", 1.0).ok, "live duplicate");
        admit_level(&mut d, "b", 7.0);
        assert!(!admit_level(&mut d, "b", 1.0).ok, "queued duplicate");
    }

    #[test]
    fn depart_covers_live_queued_and_unknown() {
        let mut cfg = config();
        cfg.max_servers = Some(1);
        let mut d = Daemon::new(cfg);
        admit_level(&mut d, "a", 7.0);
        admit_level(&mut d, "b", 7.0);
        assert!(d.depart("b", ObsCtx::none()).ok, "queued withdraw");
        assert!(d.depart("a", ObsCtx::none()).ok, "live depart");
        assert!(!d.depart("ghost", ObsCtx::none()).ok);
        assert_eq!(d.stats().departed, 2);
    }

    #[test]
    fn tick_recomputes_only_touched_servers() {
        let mut d = Daemon::new(config());
        admit_level(&mut d, "a", 4.0);
        admit_level(&mut d, "b", 7.0);
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.recomputed, Some(2));
        // Nothing changed: the next tick recomputes nothing.
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.recomputed, Some(0));
        admit_level(&mut d, "c", 1.0);
        let r = d.tick(1, ObsCtx::none());
        assert_eq!(r.recomputed, Some(1));
    }

    #[test]
    fn run_loop_speaks_the_protocol_end_to_end() {
        let script = concat!(
            r#"{"cmd":"admit","name":"a","level":4.0}"#,
            "\n",
            "not json\n",
            "\n",
            r#"{"cmd":"tick"}"#,
            "\n",
            r#"{"cmd":"snapshot"}"#,
            "\n",
            r#"{"cmd":"shutdown"}"#,
            "\n",
            r#"{"cmd":"tick"}"#,
            "\n",
        );
        let mut d = Daemon::new(config());
        let mut out = Vec::new();
        let stats = d.run(script.as_bytes(), &mut out, ObsCtx::none()).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 5, "shutdown stops the loop");
        assert!(lines[0].contains(r#""decision":"accepted""#));
        assert!(lines[1].contains(r#""ok":false"#));
        assert!(lines[2].contains(r#""cmd":"tick""#));
        assert!(lines[3].contains(r#""plan""#));
        assert!(lines[4].contains(r#""stats""#));
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.ticks, 1);
    }

    #[test]
    fn observability_counts_the_admission_flow() {
        let obs = ropus_obs::Obs::deterministic();
        let mut cfg = config();
        cfg.max_servers = Some(1);
        let mut d = Daemon::new(cfg);
        d.admit("a", &DemandSpec::Level(7.0), ObsCtx::from(&obs));
        d.admit("b", &DemandSpec::Level(7.0), ObsCtx::from(&obs));
        d.tick(1, ObsCtx::from(&obs));
        d.depart("a", ObsCtx::from(&obs));
        d.tick(1, ObsCtx::from(&obs));
        let report = obs.report();
        assert_eq!(report.counter("serve.admit.accepted"), 1);
        assert_eq!(report.counter("serve.admit.queued"), 1);
        assert_eq!(report.counter("serve.queue.admitted"), 1);
        assert_eq!(report.counter("serve.depart.count"), 1);
        assert_eq!(report.counter("serve.tick.count"), 2);
        assert!(report.histogram("serve.tick.latency_ms").is_some());
    }
}
