//! The line-delimited JSON command protocol of `ropus serve`.
//!
//! One command per input line, one response per output line. Commands
//! carry a `cmd` discriminator field (the vendored serde implementation
//! has no internally-tagged enums, so dispatch is by hand):
//!
//! ```json
//! {"cmd":"admit","name":"app-1","level":2.0}
//! {"cmd":"admit","name":"app-2","samples":[1.0,2.0, ...]}
//! {"cmd":"depart","name":"app-1"}
//! {"cmd":"migrate","name":"app-1","server":2}
//! {"cmd":"tick"}
//! {"cmd":"tick","slots":4}
//! {"cmd":"snapshot"}
//! {"cmd":"subscribe"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses always carry `ok` and echo `cmd`; the remaining fields
//! depend on the command (see [`Response`]).
//!
//! After a `subscribe`, the daemon interleaves [`StreamLine`] telemetry
//! lines with the responses: each subsequent command's response line is
//! followed by the stream lines it produced. Stream lines carry a `kind`
//! field (never `ok`), so a reader splits the two shapes by looking at
//! the first key.

use serde::{Deserialize, Serialize};

use ropus_obs::{AlertEvent, ObsReport};
use ropus_placement::consolidate::PlacementReport;

/// How an `admit` command describes its demand.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandSpec {
    /// Constant demand at this level over the daemon's whole horizon.
    Level(f64),
    /// An explicit per-slot demand series (must cover whole weeks on the
    /// daemon's calendar).
    Samples(Vec<f64>),
}

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Ask admission for a new application.
    Admit {
        /// Application name (unique among live applications).
        name: String,
        /// The demand to plan for.
        demand: DemandSpec,
    },
    /// Remove a live application from the plan.
    Depart {
        /// Application name.
        name: String,
    },
    /// Move a live application to another server. Under the zero-cost
    /// (teleport) migration config the move commits immediately; under a
    /// paced config it is planned and driven through the migration state
    /// machine by subsequent ticks.
    Migrate {
        /// Application name.
        name: String,
        /// Destination server.
        server: usize,
    },
    /// Advance logical time: retry and expire queued admissions, then
    /// recompute every touched server.
    Tick {
        /// Slots to advance (defaults to 1).
        slots: u64,
    },
    /// Emit the current plan, queue, and slot.
    Snapshot,
    /// Start streaming [`StreamLine`] telemetry after every subsequent
    /// response: lifecycle events, SLO burn-rate alerts, and (when a
    /// collector is attached) per-tick metric snapshot deltas.
    Subscribe,
    /// Emit final statistics and stop the daemon loop.
    Shutdown,
}

/// Wire shape of one input line; `cmd` selects the command and the other
/// fields are its operands.
#[derive(Debug, Clone, Deserialize)]
struct RawCommand {
    cmd: String,
    name: Option<String>,
    level: Option<f64>,
    samples: Option<Vec<f64>>,
    slots: Option<u64>,
    server: Option<usize>,
}

/// Parses one input line into a [`Command`].
///
/// # Errors
///
/// Returns a message naming the malformed part: unparseable JSON, an
/// unknown `cmd`, missing operands, or operands on a command that takes
/// none.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let raw: RawCommand =
        serde_json::from_str(line).map_err(|e| format!("malformed command: {e}"))?;
    match raw.cmd.as_str() {
        "admit" => {
            let name = raw
                .name
                .ok_or_else(|| "admit requires a \"name\"".to_string())?;
            let demand = match (raw.level, raw.samples) {
                (Some(level), None) => DemandSpec::Level(level),
                (None, Some(samples)) => DemandSpec::Samples(samples),
                (None, None) => {
                    return Err("admit requires \"level\" or \"samples\"".to_string());
                }
                (Some(_), Some(_)) => {
                    return Err("admit takes \"level\" or \"samples\", not both".to_string());
                }
            };
            Ok(Command::Admit { name, demand })
        }
        "depart" => {
            let name = raw
                .name
                .ok_or_else(|| "depart requires a \"name\"".to_string())?;
            Ok(Command::Depart { name })
        }
        "migrate" => {
            let name = raw
                .name
                .ok_or_else(|| "migrate requires a \"name\"".to_string())?;
            let server = raw
                .server
                .ok_or_else(|| "migrate requires a \"server\"".to_string())?;
            Ok(Command::Migrate { name, server })
        }
        "tick" => {
            let slots = raw.slots.unwrap_or(1);
            if slots == 0 {
                return Err("tick requires \"slots\" >= 1".to_string());
            }
            Ok(Command::Tick { slots })
        }
        "snapshot" => Ok(Command::Snapshot),
        "subscribe" => Ok(Command::Subscribe),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Aggregate daemon statistics (reported by `shutdown`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Ticks processed.
    pub ticks: u64,
    /// Applications admitted (directly or from the queue).
    pub admitted: u64,
    /// Admissions rejected outright.
    pub rejected: u64,
    /// Admissions parked in the queue (may later admit or expire).
    pub queued: u64,
    /// Queued admissions that passed their deadline and were dropped.
    pub expired: u64,
    /// Applications departed.
    pub departed: u64,
    /// Queued-admission retry attempts (failed re-decides that went back
    /// to the queue under backoff).
    #[serde(default)]
    pub retries: u64,
    /// Migrations committed (immediately under the teleport config, or
    /// by the state machine under a paced one).
    #[serde(default)]
    pub migrations: u64,
    /// Per-server required-capacity recomputations performed.
    pub recomputes: u64,
}

/// One output line: `ok` plus the fields relevant to the echoed `cmd`.
#[derive(Debug, Clone, Serialize)]
pub struct Response {
    /// Whether the command was executed.
    pub ok: bool,
    /// The command this responds to (`"error"` for unparseable lines).
    pub cmd: String,
    /// Error message when `ok` is false.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Echoed application name (`admit`/`depart`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub name: Option<String>,
    /// Admission verdict: `"accepted"`, `"queued"`, or `"rejected"`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub decision: Option<String>,
    /// Server assigned by an accepted admission.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub server: Option<usize>,
    /// Required capacity of the assigned server after admission.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub required: Option<f64>,
    /// Reason attached to a rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
    /// Slot at which a queued admission expires.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub deadline_slot: Option<u64>,
    /// The daemon's logical slot after the command.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub slot: Option<u64>,
    /// Applications admitted out of the queue by this tick.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub admitted_from_queue: Option<Vec<String>>,
    /// Queued applications dropped by this tick (deadline passed).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub expired: Option<Vec<String>>,
    /// Applications whose migration committed during this tick.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub migrated: Option<Vec<String>>,
    /// Servers whose required capacity was recomputed by this tick.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub recomputed: Option<usize>,
    /// Names still waiting in the queue (`snapshot`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub queue: Option<Vec<String>>,
    /// The live plan (`snapshot`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub plan: Option<PlacementReport>,
    /// Aggregate statistics (`shutdown`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub stats: Option<ServeStats>,
}

impl Response {
    /// A bare success response for `cmd`.
    pub fn ok(cmd: &str) -> Response {
        Response {
            ok: true,
            cmd: cmd.to_string(),
            error: None,
            name: None,
            decision: None,
            server: None,
            required: None,
            reason: None,
            deadline_slot: None,
            slot: None,
            admitted_from_queue: None,
            expired: None,
            migrated: None,
            recomputed: None,
            queue: None,
            plan: None,
            stats: None,
        }
    }

    /// An error response for `cmd`.
    pub fn error(cmd: &str, message: impl Into<String>) -> Response {
        let mut r = Response::ok(cmd);
        r.ok = false;
        r.error = Some(message.into());
        r
    }

    /// Serializes to one output line (no trailing newline).
    pub fn to_line(&self) -> String {
        // lint:allow(panic-expect): Response contains only
        // always-serializable fields.
        serde_json::to_string(self).expect("responses always serialize")
    }
}

/// One `subscribe` telemetry line. `kind` is a registry name
/// ([`ropus_obs::names`]): `watch.stream.event` for lifecycle events
/// (admissions, departures, migrations, queue activity), `watch.stream.alert`
/// for SLO burn-rate alerts, and `watch.stream.delta` for per-tick metric
/// snapshot deltas (the deltas [`ObsReport::absorb`] re-sums to the final
/// report bit-exactly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamLine {
    /// Stream line discriminator; always a `watch.stream.*` registry name.
    pub kind: String,
    /// The daemon's logical slot when the line was produced.
    pub slot: u64,
    /// Event verb for `watch.stream.event` lines (`"admitted"`,
    /// `"queued"`, `"rejected"`, `"departed"`, `"migrated"`,
    /// `"queue.admitted"`, `"queue.expired"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub event: Option<String>,
    /// Application the line concerns.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub name: Option<String>,
    /// Server involved (admissions and migrations).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub server: Option<usize>,
    /// The alert payload of a `watch.stream.alert` line.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub alert: Option<AlertEvent>,
    /// The snapshot delta of a `watch.stream.delta` line.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub delta: Option<ObsReport>,
}

impl StreamLine {
    /// A bare stream line of the given kind. `kind` must be a
    /// `ropus_obs::names` constant (enforced by the `obs-name-registry`
    /// lint).
    pub fn new(kind: &'static str, slot: u64) -> StreamLine {
        StreamLine {
            kind: kind.to_string(),
            slot,
            event: None,
            name: None,
            server: None,
            alert: None,
            delta: None,
        }
    }

    /// Serializes to one output line (no trailing newline).
    pub fn to_line(&self) -> String {
        // lint:allow(panic-expect): StreamLine contains only
        // always-serializable fields.
        serde_json::to_string(self).expect("stream lines always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command_shape() {
        assert_eq!(
            parse_command(r#"{"cmd":"admit","name":"a","level":2.0}"#).unwrap(),
            Command::Admit {
                name: "a".to_string(),
                demand: DemandSpec::Level(2.0)
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"admit","name":"a","samples":[1.0,2.0]}"#).unwrap(),
            Command::Admit {
                name: "a".to_string(),
                demand: DemandSpec::Samples(vec![1.0, 2.0])
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"depart","name":"a"}"#).unwrap(),
            Command::Depart {
                name: "a".to_string()
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"migrate","name":"a","server":2}"#).unwrap(),
            Command::Migrate {
                name: "a".to_string(),
                server: 2
            }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"tick"}"#).unwrap(),
            Command::Tick { slots: 1 }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"tick","slots":5}"#).unwrap(),
            Command::Tick { slots: 5 }
        );
        assert_eq!(
            parse_command(r#"{"cmd":"snapshot"}"#).unwrap(),
            Command::Snapshot
        );
        assert_eq!(
            parse_command(r#"{"cmd":"subscribe"}"#).unwrap(),
            Command::Subscribe
        );
        assert_eq!(
            parse_command(r#"{"cmd":"shutdown"}"#).unwrap(),
            Command::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_commands() {
        for (line, needle) in [
            ("not json", "malformed"),
            (r#"{"cmd":"admit","name":"a"}"#, "level"),
            (
                r#"{"cmd":"admit","name":"a","level":1.0,"samples":[1.0]}"#,
                "not both",
            ),
            (r#"{"cmd":"admit","level":1.0}"#, "name"),
            (r#"{"cmd":"depart"}"#, "name"),
            (r#"{"cmd":"migrate","server":1}"#, "name"),
            (r#"{"cmd":"migrate","name":"a"}"#, "server"),
            (r#"{"cmd":"tick","slots":0}"#, "slots"),
            (r#"{"cmd":"resize"}"#, "unknown command"),
        ] {
            let err = parse_command(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn stream_lines_serialize_sparse_and_round_trip() {
        let mut line = StreamLine::new(ropus_obs::names::WATCH_STREAM_EVENT, 3);
        line.event = Some("admitted".to_string());
        line.name = Some("a".to_string());
        line.server = Some(0);
        let text = line.to_line();
        assert_eq!(
            text,
            r#"{"kind":"watch.stream.event","slot":3,"event":"admitted","name":"a","server":0}"#
        );
        let back: StreamLine = serde_json::from_str(&text).unwrap();
        assert_eq!(back, line);
        // The bare shapes never leak empty optional fields either.
        let bare = StreamLine::new(ropus_obs::names::WATCH_STREAM_DELTA, 0).to_line();
        assert_eq!(bare, r#"{"kind":"watch.stream.delta","slot":0}"#);
    }

    #[test]
    fn responses_serialize_sparse_fields_only() {
        let line = Response::ok("tick").to_line();
        assert_eq!(line, r#"{"ok":true,"cmd":"tick"}"#);
        let mut r = Response::error("admit", "nope");
        r.name = Some("a".to_string());
        let line = r.to_line();
        assert!(line.contains(r#""ok":false"#));
        assert!(line.contains(r#""error":"nope""#));
        assert!(line.contains(r#""name":"a""#));
        assert!(!line.contains("decision"));
    }
}
