use std::fmt;

use ropus_chaos::ChaosError;
use ropus_placement::PlacementError;
use ropus_qos::QosError;
use ropus_trace::TraceError;
use ropus_wlm::WlmError;

/// Error raised by the end-to-end framework pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FrameworkError {
    /// A QoS specification or translation failed.
    Qos(QosError),
    /// The placement service failed.
    Placement(PlacementError),
    /// A demand trace was invalid.
    Trace(TraceError),
    /// The workload-manager replay failed.
    Wlm(WlmError),
    /// The fault-injection replay failed.
    Chaos(ChaosError),
    /// No applications were supplied.
    NoApplications,
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::Qos(e) => write!(f, "qos error: {e}"),
            FrameworkError::Placement(e) => write!(f, "placement error: {e}"),
            FrameworkError::Trace(e) => write!(f, "trace error: {e}"),
            FrameworkError::Wlm(e) => write!(f, "wlm error: {e}"),
            FrameworkError::Chaos(e) => write!(f, "chaos error: {e}"),
            FrameworkError::NoApplications => write!(f, "no applications supplied"),
        }
    }
}

impl std::error::Error for FrameworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameworkError::Qos(e) => Some(e),
            FrameworkError::Placement(e) => Some(e),
            FrameworkError::Trace(e) => Some(e),
            FrameworkError::Wlm(e) => Some(e),
            FrameworkError::Chaos(e) => Some(e),
            FrameworkError::NoApplications => None,
        }
    }
}

impl From<QosError> for FrameworkError {
    fn from(err: QosError) -> Self {
        FrameworkError::Qos(err)
    }
}

impl From<PlacementError> for FrameworkError {
    fn from(err: PlacementError) -> Self {
        FrameworkError::Placement(err)
    }
}

impl From<TraceError> for FrameworkError {
    fn from(err: TraceError) -> Self {
        FrameworkError::Trace(err)
    }
}

impl From<WlmError> for FrameworkError {
    fn from(err: WlmError) -> Self {
        FrameworkError::Wlm(err)
    }
}

impl From<ChaosError> for FrameworkError {
    fn from(err: ChaosError) -> Self {
        FrameworkError::Chaos(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let q: FrameworkError = QosError::InvalidAccessProbability { theta: 2.0 }.into();
        assert!(std::error::Error::source(&q).is_some());
        let p: FrameworkError = PlacementError::NoWorkloads.into();
        assert!(std::error::Error::source(&p).is_some());
        let t: FrameworkError = TraceError::Empty.into();
        assert!(std::error::Error::source(&t).is_some());
        let w: FrameworkError = WlmError::InvalidCapacity { capacity: 0.0 }.into();
        assert!(std::error::Error::source(&w).is_some());
        let c: FrameworkError = ChaosError::NoApplications.into();
        assert!(std::error::Error::source(&c).is_some());
        assert!(std::error::Error::source(&FrameworkError::NoApplications).is_none());
    }

    #[test]
    fn display_messages() {
        assert!(!FrameworkError::NoApplications.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<FrameworkError>();
    }
}
