//! The medium-term control loop (§II: "Assignments may be adjusted
//! periodically as service levels are evaluated or as circumstances
//! change") — and with it, an *out-of-sample* test of the paper's core
//! premise that "traces capture past demands and ... future demands will
//! be roughly similar".
//!
//! Each epoch (one week), the controller:
//!
//! 1. plans a placement from the trailing window of demand history,
//! 2. runs the *next, unseen* week of demand through the placed hosts,
//! 3. audits every application's delivered QoS out of sample, and
//! 4. carries the placement forward, counting the migrations each
//!    re-planning step would require.
//!
//! A healthy fleet (slowly changing demands) should show near-total
//! out-of-sample compliance and few migrations — exactly the regime the
//! paper argues trace-based management is sound in.

use ropus_obs::ObsCtx;
use serde::{Deserialize, Serialize};

use ropus_wlm::host::{Host, HostedWorkload};
use ropus_wlm::manager::WlmPolicy;
use ropus_wlm::metrics::audit;

use crate::framework::{AppSpec, Framework};
use crate::FrameworkError;

/// Outcome of one lifecycle epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// The (zero-based) week that was replayed out of sample.
    pub week: usize,
    /// Servers the trailing-window plan used.
    pub servers: usize,
    /// Applications whose delivered QoS violated their requirement
    /// during the unseen week.
    pub violations: usize,
    /// Fraction of applications compliant out of sample.
    pub compliant_fraction: f64,
    /// Workloads that moved servers relative to the previous epoch's
    /// placement (0 for the first epoch).
    pub migrations: usize,
}

/// Result of a lifecycle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleReport {
    /// Trailing-window length used for planning, in weeks.
    pub window_weeks: usize,
    /// One outcome per replayed week.
    pub epochs: Vec<EpochOutcome>,
}

impl LifecycleReport {
    /// Total migrations across all epochs.
    pub fn total_migrations(&self) -> usize {
        self.epochs.iter().map(|e| e.migrations).sum()
    }

    /// Worst per-epoch out-of-sample compliance.
    pub fn worst_compliance(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.compliant_fraction)
            .fold(1.0, f64::min)
    }
}

impl Framework {
    /// Runs the medium-term control loop over the fleet's trace history.
    ///
    /// For every week `w >= window_weeks` of the common history, plans on
    /// weeks `[w - window_weeks, w)` and replays week `w` out of sample.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::NoApplications`] for an empty fleet, a
    /// trace error when histories are shorter than `window_weeks + 1`
    /// whole weeks or misaligned, and propagates planning failures.
    ///
    /// # Panics
    ///
    /// Panics if `window_weeks` is zero.
    pub fn run_lifecycle(
        &self,
        apps: &[AppSpec],
        window_weeks: usize,
    ) -> Result<LifecycleReport, FrameworkError> {
        assert!(window_weeks > 0, "window must cover at least one week");
        let first = apps.first().ok_or(FrameworkError::NoApplications)?;
        let weeks = first.demand().weeks();
        if weeks < window_weeks + 1 {
            return Err(FrameworkError::Trace(
                ropus_trace::TraceError::PartialWeek {
                    len: first.demand().len(),
                    per_week: (window_weeks + 1) * first.demand().calendar().slots_per_week(),
                },
            ));
        }

        let mut epochs = Vec::new();
        let mut previous_assignment: Option<Vec<usize>> = None;

        for week in window_weeks..weeks {
            // Plan on the trailing window.
            let history: Result<Vec<AppSpec>, FrameworkError> = apps
                .iter()
                .map(|app| {
                    let demand = app.demand().weeks_range(week - window_weeks, week).ok_or(
                        FrameworkError::Trace(ropus_trace::TraceError::PartialWeek {
                            len: app.demand().len(),
                            per_week: app.demand().calendar().slots_per_week(),
                        }),
                    )?;
                    Ok(AppSpec::new(app.name(), demand, app.policy()))
                })
                .collect();
            let history = history?;
            let (plans, workloads, _) = self.translate_fleet(&history)?;
            let consolidator = ropus_placement::consolidate::Consolidator::new(
                self.server(),
                self.commitments(),
                self.options(),
            );
            let placement = consolidator.consolidate(&workloads, ObsCtx::none())?;

            // Replay the unseen week through each placed host.
            let mut violations = 0usize;
            for server_placement in &placement.servers {
                let hosted: Vec<HostedWorkload> = server_placement
                    .workloads
                    .iter()
                    .map(|&i| {
                        // lint:allow(panic-slice-index): the consolidator
                        // built this placement over these same apps and
                        // plans, so every index is in range.
                        let (app, plan) = (&apps[i], &plans[i]);
                        let demand = app
                            .demand()
                            .weeks_range(week, week + 1)
                            // lint:allow(panic-expect): `week` iterates
                            // `window_weeks..weeks`, inside the trace.
                            .expect("week bounds checked above");
                        let policy =
                            WlmPolicy::from_translation(&app.policy().normal, &plan.normal);
                        HostedWorkload::new(app.name(), demand, policy)
                    })
                    .collect();
                let host = Host::new(self.server().capacity())?;
                let outcome = host.run(&hosted, ObsCtx::none())?;
                // Host outcomes are returned in hosted order, which is the
                // placement's workload order — pair them back up by zip.
                for (wo, &app_index) in outcome.workloads.iter().zip(&server_placement.workloads) {
                    let a = audit(
                        &wo.utilization,
                        // lint:allow(panic-slice-index): placement indices
                        // are in range (see above).
                        &apps[app_index].policy().normal,
                    );
                    if !a.is_compliant() {
                        violations += 1;
                    }
                }
            }

            let migrations = match &previous_assignment {
                Some(prev) => prev
                    .iter()
                    .zip(&placement.assignment)
                    .filter(|(a, b)| a != b)
                    .count(),
                None => 0,
            };
            previous_assignment = Some(placement.assignment.clone());
            epochs.push(EpochOutcome {
                week,
                servers: placement.servers_used,
                violations,
                compliant_fraction: 1.0 - violations as f64 / apps.len() as f64,
                migrations,
            });
        }

        Ok(LifecycleReport {
            window_weeks,
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_placement::consolidate::ConsolidationOptions;
    use ropus_placement::server::ServerSpec;
    use ropus_qos::{AppQos, CosSpec, PoolCommitments, QosPolicy};
    use ropus_trace::gen::{case_study_fleet, FleetConfig};

    fn framework(seed: u64) -> Framework {
        Framework::builder()
            .server(ServerSpec::sixteen_way())
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(seed))
            .build()
    }

    /// Fleet slice `[from, to)` of a `to`-app case-study fleet; indices
    /// 0-9 are bursty, 10+ smooth.
    fn fleet_specs(from: usize, to: usize, weeks: usize) -> Vec<AppSpec> {
        case_study_fleet(&FleetConfig {
            apps: to,
            weeks,
            ..FleetConfig::paper()
        })
        .into_iter()
        .skip(from)
        .map(|a| {
            AppSpec::new(
                a.name,
                a.trace,
                QosPolicy::uniform(AppQos::paper_default(Some(30))),
            )
        })
        .collect()
    }

    #[test]
    fn smooth_fleet_is_compliant_out_of_sample() {
        // Six *smooth* apps (the regime where the paper's trace-based
        // premise holds): 3 weeks of history, 2-week planning window, one
        // out-of-sample epoch (week 2 replayed on a weeks-0..2 plan).
        let apps = fleet_specs(10, 16, 3);
        let report = framework(1).run_lifecycle(&apps, 2).unwrap();
        assert_eq!(report.epochs.len(), 1);
        let epoch = &report.epochs[0];
        assert_eq!(epoch.week, 2);
        assert_eq!(epoch.migrations, 0, "first epoch has no baseline");
        assert!(
            epoch.compliant_fraction >= 0.8,
            "compliance {} with {} violations",
            epoch.compliant_fraction,
            epoch.violations
        );
        assert_eq!(report.worst_compliance(), epoch.compliant_fraction);
    }

    #[test]
    fn bursty_apps_can_violate_out_of_sample() {
        // The burstiest slice of the fleet: unseen-week spikes can exceed
        // the trailing window's peak, so out-of-sample compliance is NOT
        // guaranteed — the caveat behind the paper's "significant changes
        // in demand ... are best forecast by business units".
        let apps = fleet_specs(0, 6, 3);
        let report = framework(1).run_lifecycle(&apps, 2).unwrap();
        // No assertion that violations occur (seed-dependent), only that
        // the loop reports coherently.
        let epoch = &report.epochs[0];
        assert!(epoch.compliant_fraction >= 0.0 && epoch.compliant_fraction <= 1.0);
        assert_eq!(
            epoch.violations,
            ((1.0 - epoch.compliant_fraction) * apps.len() as f64).round() as usize
        );
    }

    #[test]
    fn multiple_epochs_count_migrations() {
        // 4 weeks, 1-week window: epochs for weeks 1, 2, 3.
        let apps = fleet_specs(10, 15, 4);
        let report = framework(2).run_lifecycle(&apps, 1).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[0].migrations, 0);
        // Determinism: re-running gives identical epochs.
        let again = framework(2).run_lifecycle(&apps, 1).unwrap();
        assert_eq!(report, again);
        assert_eq!(
            report.total_migrations(),
            report.epochs.iter().map(|e| e.migrations).sum::<usize>()
        );
    }

    #[test]
    fn insufficient_history_is_rejected() {
        let apps = fleet_specs(0, 3, 2);
        assert!(matches!(
            framework(0).run_lifecycle(&apps, 2),
            Err(FrameworkError::Trace(_))
        ));
        assert!(matches!(
            framework(0).run_lifecycle(&[], 1),
            Err(FrameworkError::NoApplications)
        ));
    }
}
