//! The medium-term control loop (§II: "Assignments may be adjusted
//! periodically as service levels are evaluated or as circumstances
//! change") — and with it, an *out-of-sample* test of the paper's core
//! premise that "traces capture past demands and ... future demands will
//! be roughly similar".
//!
//! Each epoch (one week), the controller:
//!
//! 1. plans a placement from the trailing window of demand history,
//! 2. runs the *next, unseen* week of demand through the placed hosts,
//! 3. audits every application's delivered QoS out of sample, and
//! 4. carries the placement forward, counting the migrations each
//!    re-planning step would require.
//!
//! A healthy fleet (slowly changing demands) should show near-total
//! out-of-sample compliance and few migrations — exactly the regime the
//! paper argues trace-based management is sound in.

use ropus_obs::{BurnRateRule, ObsCtx, SloEngine, SloSummary};
use serde::{Deserialize, Serialize};

use ropus_placement::migration::{
    MigrationConfig, MigrationOrchestrator, MigrationPhase, MigrationReport, MoveRecord,
};
use ropus_trace::Trace;
use ropus_wlm::host::{Host, HostedWorkload};
use ropus_wlm::manager::WlmPolicy;
use ropus_wlm::metrics::{audit, slo_contract};

use crate::framework::{AppPlan, AppSpec, Framework};
use crate::FrameworkError;

/// Outcome of one lifecycle epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// The (zero-based) week that was replayed out of sample.
    pub week: usize,
    /// Servers the trailing-window plan used.
    pub servers: usize,
    /// Applications whose delivered QoS violated their requirement
    /// during the unseen week.
    pub violations: usize,
    /// Fraction of applications compliant out of sample.
    pub compliant_fraction: f64,
    /// Workloads that changed servers relative to the previous epoch's
    /// placement (0 for the first epoch). Under a paced migration config
    /// this counts moves the state machine actually *committed*, not
    /// re-plan deltas.
    pub migrations: usize,
    /// Rollbacks the epoch's migration machine performed (always 0 under
    /// the teleport config).
    #[serde(default)]
    pub rolled_back: usize,
    /// Moves abandoned after exhausting retries (always 0 under the
    /// teleport config).
    #[serde(default)]
    pub failed: usize,
    /// Burn-rate alert transitions (fires + clears) the streaming SLO
    /// engine produced during this epoch's out-of-sample week.
    #[serde(default)]
    pub slo_alerts: usize,
}

/// Result of a lifecycle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleReport {
    /// Trailing-window length used for planning, in weeks.
    pub window_weeks: usize,
    /// One outcome per replayed week.
    pub epochs: Vec<EpochOutcome>,
    /// Whole-run SLO attainment and alert log from the streaming engine,
    /// fed every epoch's out-of-sample utilization at global slot
    /// offsets (`week × slots_per_week + t`). `None` only in reports
    /// deserialized from older runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slo: Option<SloSummary>,
}

impl LifecycleReport {
    /// Total migrations across all epochs.
    pub fn total_migrations(&self) -> usize {
        self.epochs.iter().map(|e| e.migrations).sum()
    }

    /// Worst per-epoch out-of-sample compliance.
    pub fn worst_compliance(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.compliant_fraction)
            .fold(1.0, f64::min)
    }
}

impl Framework {
    /// Runs the medium-term control loop over the fleet's trace history.
    ///
    /// For every week `w >= window_weeks` of the common history, plans on
    /// weeks `[w - window_weeks, w)` and replays week `w` out of sample.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::NoApplications`] for an empty fleet, a
    /// trace error when histories are shorter than `window_weeks + 1`
    /// whole weeks or misaligned, and propagates planning failures.
    ///
    /// # Panics
    ///
    /// Panics if `window_weeks` is zero.
    pub fn run_lifecycle(
        &self,
        apps: &[AppSpec],
        window_weeks: usize,
    ) -> Result<LifecycleReport, FrameworkError> {
        self.run_lifecycle_with(apps, window_weeks, MigrationConfig::teleport())
    }

    /// [`run_lifecycle`](Self::run_lifecycle) under an explicit migration
    /// cost model.
    ///
    /// With the zero-cost [`MigrationConfig::teleport`] (what
    /// `run_lifecycle` uses) each epoch's re-plan takes effect instantly
    /// and `migrations` counts assignment deltas — the historical
    /// behavior, bit for bit. A paced config drives every epoch
    /// adjustment through the migration state machine instead: moves
    /// start under the storm caps, the source serves until cutover, the
    /// destination is double-booked while a move is in flight, and the
    /// out-of-sample replay models all of it with residency windows and
    /// reservation pressure on each host. `migrations` then counts
    /// *committed* moves, and `rolled_back`/`failed` surface the machine's
    /// failures.
    ///
    /// # Errors and panics
    ///
    /// As for [`run_lifecycle`](Self::run_lifecycle).
    pub fn run_lifecycle_with(
        &self,
        apps: &[AppSpec],
        window_weeks: usize,
        migration: MigrationConfig,
    ) -> Result<LifecycleReport, FrameworkError> {
        assert!(window_weeks > 0, "window must cover at least one week");
        let first = apps.first().ok_or(FrameworkError::NoApplications)?;
        let weeks = first.demand().weeks();
        if weeks < window_weeks + 1 {
            return Err(FrameworkError::Trace(
                ropus_trace::TraceError::PartialWeek {
                    len: first.demand().len(),
                    per_week: (window_weeks + 1) * first.demand().calendar().slots_per_week(),
                },
            ));
        }

        let mut epochs = Vec::new();
        let mut previous_assignment: Option<Vec<usize>> = None;
        let calendar = first.demand().calendar();

        // One streaming SLO engine across the whole run, so burn-rate
        // windows and error budgets carry over epoch boundaries.
        let mut slo = SloEngine::new(BurnRateRule::default_rules());
        for app in apps {
            slo.register(slo_contract(
                app.name(),
                &app.policy().normal,
                calendar.slot_minutes(),
            ));
        }

        for week in window_weeks..weeks {
            // Plan on the trailing window.
            let history: Result<Vec<AppSpec>, FrameworkError> = apps
                .iter()
                .map(|app| {
                    let demand = app.demand().weeks_range(week - window_weeks, week).ok_or(
                        FrameworkError::Trace(ropus_trace::TraceError::PartialWeek {
                            len: app.demand().len(),
                            per_week: app.demand().calendar().slots_per_week(),
                        }),
                    )?;
                    Ok(AppSpec::new(app.name(), demand, app.policy()))
                })
                .collect();
            let history = history?;
            let (plans, workloads, _) = self.translate_fleet(&history)?;
            let consolidator = ropus_placement::consolidate::Consolidator::new(
                self.server(),
                self.commitments(),
                self.options(),
            );
            let placement = consolidator.consolidate(&workloads, ObsCtx::none())?;
            let slots_per_week = first.demand().calendar().slots_per_week();

            // Under a paced config (and once a baseline exists), walk the
            // epoch's adjustment through the migration state machine.
            let machine = match &previous_assignment {
                Some(prev) if !migration.is_teleport() => {
                    let names: Vec<&str> = apps.iter().map(AppSpec::name).collect();
                    Some(drive_epoch_moves(
                        prev,
                        &placement.assignment,
                        migration,
                        slots_per_week,
                        &names,
                    ))
                }
                _ => None,
            };

            // Replay the unseen week through each placed host, collecting
            // every app's delivered utilization-of-allocation row.
            let util: Vec<Vec<f64>> =
                if let (Some(report), Some(prev)) = (&machine, &previous_assignment) {
                    self.replay_week_with_moves(
                        apps,
                        &plans,
                        &placement.assignment,
                        prev,
                        report,
                        week,
                        slots_per_week,
                    )?
                } else {
                    let mut util: Vec<Vec<f64>> = vec![Vec::new(); apps.len()];
                    for server_placement in &placement.servers {
                        let hosted: Vec<HostedWorkload> = server_placement
                            .workloads
                            .iter()
                            .map(|&i| {
                                // lint:allow(panic-slice-index): the consolidator
                                // built this placement over these same apps and
                                // plans, so every index is in range.
                                let (app, plan) = (&apps[i], &plans[i]);
                                let demand = app
                                    .demand()
                                    .weeks_range(week, week + 1)
                                    // lint:allow(panic-expect): `week` iterates
                                    // `window_weeks..weeks`, inside the trace.
                                    .expect("week bounds checked above");
                                let policy =
                                    WlmPolicy::from_translation(&app.policy().normal, &plan.normal);
                                HostedWorkload::new(app.name(), demand, policy)
                            })
                            .collect();
                        let host = Host::new(self.server().capacity())?;
                        let outcome = host.run(&hosted, ObsCtx::none())?;
                        // Host outcomes are returned in hosted order, which is
                        // the placement's workload order — pair them back up
                        // by zip.
                        for (wo, &app_index) in
                            outcome.workloads.iter().zip(&server_placement.workloads)
                        {
                            // lint:allow(panic-slice-index): placement indices
                            // are in range (see above).
                            // lint:allow(needless-trace-clone): the row is moved
                            // into the shared util table, which outlives the
                            // per-server outcome.
                            util[app_index] = wo.utilization.samples().to_vec();
                        }
                    }
                    util
                };

            // Audit each stitched row against the normal contract and
            // stream it through the SLO engine slot-major, so the alert
            // log interleaves apps in global slot order.
            let mut violations = 0usize;
            for (row, app) in util.iter().zip(apps) {
                let stitched =
                    Trace::from_samples(calendar, row.clone()).map_err(FrameworkError::Trace)?;
                if !audit(&stitched, &app.policy().normal).is_compliant() {
                    violations += 1;
                }
            }
            let base = week * slots_per_week;
            for t in 0..slots_per_week {
                for (i, row) in util.iter().enumerate() {
                    if let Some(&u) = row.get(t) {
                        slo.observe(i, base + t, u, ObsCtx::none());
                    }
                }
            }
            let slo_alerts = slo.drain_alerts().len();

            let (migrations, rolled_back, failed) = match (&machine, &previous_assignment) {
                (Some(report), _) => (report.committed, report.rolled_back, report.failed),
                (None, Some(prev)) => (
                    prev.iter()
                        .zip(&placement.assignment)
                        .filter(|(a, b)| a != b)
                        .count(),
                    0,
                    0,
                ),
                (None, None) => (0, 0, 0),
            };
            previous_assignment = Some(placement.assignment.clone());
            epochs.push(EpochOutcome {
                week,
                servers: placement.servers_used,
                violations,
                compliant_fraction: 1.0 - violations as f64 / apps.len() as f64,
                migrations,
                rolled_back,
                failed,
                slo_alerts,
            });
        }

        Ok(LifecycleReport {
            window_weeks,
            epochs,
            slo: Some(slo.summary()),
        })
    }

    /// Replays the unseen week with the epoch's committed moves modeled
    /// as residency windows and its in-flight phases as capacity
    /// reservations. Returns every application's stitched
    /// utilization-of-allocation row for the week, in fleet order.
    #[allow(clippy::too_many_arguments)]
    fn replay_week_with_moves(
        &self,
        apps: &[AppSpec],
        plans: &[AppPlan],
        assignment: &[usize],
        prev: &[usize],
        report: &MigrationReport,
        week: usize,
        slots_per_week: usize,
    ) -> Result<Vec<Vec<f64>>, FrameworkError> {
        let server_count = prev
            .iter()
            .chain(assignment.iter())
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        // Per-server residency (member) and reservation windows, as
        // `(app, start, end)` half-open slot ranges.
        let mut member_segs: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); server_count];
        let mut reserve_segs: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); server_count];
        let mut moved = vec![false; apps.len()];
        for m in &report.moves {
            if m.app >= apps.len() || m.to >= server_count {
                continue;
            }
            // lint:allow(panic-slice-index): m.app < apps.len() checked
            // above; moved has one entry per app.
            moved[m.app] = true;
            segment_move(m, slots_per_week, &mut member_segs, &mut reserve_segs);
        }
        for (app, &server) in prev.iter().enumerate() {
            // lint:allow(panic-slice-index): prev and moved both have
            // one entry per app.
            if !moved[app] && server < server_count {
                // lint:allow(panic-slice-index): server < server_count.
                member_segs[server].push((app, 0, slots_per_week));
            }
        }

        let mut util: Vec<Vec<f64>> = vec![vec![0.0; slots_per_week]; apps.len()];
        for server in 0..server_count {
            // lint:allow(panic-slice-index): server < server_count.
            let segs: Vec<(usize, usize, usize)> = member_segs[server]
                .iter()
                .copied()
                .filter(|&(_, s, e)| s < e)
                .collect();
            if segs.is_empty() {
                continue;
            }
            let build = |&(app, start, end): &(usize, usize, usize)| {
                // lint:allow(panic-slice-index): move records and prev
                // were bounds-checked against apps above.
                let (a, plan) = (&apps[app], &plans[app]);
                let demand = a
                    .demand()
                    .weeks_range(week, week + 1)
                    // lint:allow(panic-expect): `week` iterates
                    // `window_weeks..weeks`, inside the trace.
                    .expect("week bounds checked by run_lifecycle_with");
                let policy = WlmPolicy::from_translation(&a.policy().normal, &plan.normal);
                HostedWorkload::new(a.name(), demand, policy).with_window(start, end)
            };
            let hosted: Vec<HostedWorkload> = segs.iter().map(build).collect();
            // lint:allow(panic-slice-index): server < server_count.
            let reserved: Vec<HostedWorkload> = reserve_segs[server]
                .iter()
                .filter(|&&(_, s, e)| s < e)
                .map(build)
                .collect();
            let host = Host::new(self.server().capacity())?;
            let outcome = host.run_with_reservations(&hosted, &reserved, ObsCtx::none())?;
            // Stitch: each member window's utilization belongs to its
            // app for exactly those slots.
            for (wo, &(app, start, end)) in outcome.workloads.iter().zip(&segs) {
                let u = wo.utilization.samples();
                // lint:allow(panic-slice-index): windows are clamped to
                // `slots_per_week`, the length of both buffers.
                util[app][start..end].copy_from_slice(&u[start..end]);
            }
        }

        Ok(util)
    }
}

/// Drives one epoch's assignment delta through the migration state
/// machine over an idealized week — no contention, healthy destinations
/// — bounded by the week's slot count. The storm caps, drain/transfer
/// costs, and backoffs still pace the wave; the caller's replay then
/// models the capacity impact of the resulting windows.
fn drive_epoch_moves(
    prev: &[usize],
    next: &[usize],
    config: MigrationConfig,
    max_slots: usize,
    names: &[&str],
) -> MigrationReport {
    let initial: Vec<Option<usize>> = prev.iter().map(|&s| Some(s)).collect();
    let target: Vec<Option<usize>> = next.iter().map(|&s| Some(s)).collect();
    let mut orch = MigrationOrchestrator::new(config, initial);
    orch.retarget(&target, &[], 0, None, ObsCtx::none());
    for slot in 0..max_slots {
        if orch.is_idle() {
            break;
        }
        orch.begin_slot(slot, ObsCtx::none());
        orch.complete_slot(slot, &[], &[], ObsCtx::none());
    }
    orch.report(names)
}

/// Converts one move's timeline into residency and reservation windows,
/// clamped to the week: the source serves until the cutover slot ends,
/// the destination is booked from drain start through cutover, and the
/// source stays booked through the health check (rollbacks hand serving
/// back and release both ends).
fn segment_move(
    m: &MoveRecord,
    slots_per_week: usize,
    member_segs: &mut [Vec<(usize, usize, usize)>],
    reserve_segs: &mut [Vec<(usize, usize, usize)>],
) {
    let clamp = |slot: usize| slot.min(slots_per_week);
    let mut serving = m.from;
    let mut seg_start = 0usize;
    let mut dest_res: Option<usize> = None;
    let mut src_res: Option<usize> = None;
    for p in &m.timeline {
        match p.phase {
            MigrationPhase::Draining | MigrationPhase::Transferring => {
                dest_res = dest_res.or(Some(p.slot));
            }
            MigrationPhase::Cutover => {
                let end = clamp(p.slot + 1);
                if let Some(s) = dest_res.take() {
                    // lint:allow(panic-slice-index): caller checked
                    // `m.to < server_count`.
                    reserve_segs[m.to].push((m.app, s, end));
                }
                if let Some(srv) = serving {
                    // lint:allow(panic-slice-index): `from` servers are
                    // drawn from the previous assignment.
                    member_segs[srv].push((m.app, seg_start, end));
                }
                if m.from.is_some() {
                    src_res = Some(end);
                }
                serving = Some(m.to);
                seg_start = end;
            }
            MigrationPhase::Committed => {
                if let (Some(s), Some(src)) = (src_res.take(), m.from) {
                    // lint:allow(panic-slice-index): see above.
                    reserve_segs[src].push((m.app, s, clamp(p.slot + 1)));
                }
            }
            MigrationPhase::RolledBack => {
                let end = clamp(p.slot + 1);
                if let Some(s) = dest_res.take() {
                    // lint:allow(panic-slice-index): see above.
                    reserve_segs[m.to].push((m.app, s, end));
                }
                if let Some(s) = src_res.take() {
                    if let Some(src) = m.from {
                        // lint:allow(panic-slice-index): see above.
                        reserve_segs[src].push((m.app, s, end));
                    }
                    // The destination served since cutover; rollback
                    // hands the app back to its source.
                    if let Some(srv) = serving {
                        // lint:allow(panic-slice-index): see above.
                        member_segs[srv].push((m.app, seg_start, end));
                    }
                    serving = m.from;
                    seg_start = end;
                }
            }
            _ => {}
        }
    }
    if let Some(s) = dest_res {
        // lint:allow(panic-slice-index): see above.
        reserve_segs[m.to].push((m.app, s, slots_per_week));
    }
    if let (Some(s), Some(src)) = (src_res, m.from) {
        // lint:allow(panic-slice-index): see above.
        reserve_segs[src].push((m.app, s, slots_per_week));
    }
    if let Some(srv) = serving {
        if seg_start < slots_per_week {
            // lint:allow(panic-slice-index): see above.
            member_segs[srv].push((m.app, seg_start, slots_per_week));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropus_placement::consolidate::ConsolidationOptions;
    use ropus_placement::server::ServerSpec;
    use ropus_qos::{AppQos, CosSpec, PoolCommitments, QosPolicy};
    use ropus_trace::gen::{case_study_fleet, FleetConfig};

    fn framework(seed: u64) -> Framework {
        Framework::builder()
            .server(ServerSpec::sixteen_way())
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(seed))
            .build()
    }

    /// Fleet slice `[from, to)` of a `to`-app case-study fleet; indices
    /// 0-9 are bursty, 10+ smooth.
    fn fleet_specs(from: usize, to: usize, weeks: usize) -> Vec<AppSpec> {
        case_study_fleet(&FleetConfig {
            apps: to,
            weeks,
            ..FleetConfig::paper()
        })
        .into_iter()
        .skip(from)
        .map(|a| {
            AppSpec::new(
                a.name,
                a.trace,
                QosPolicy::uniform(AppQos::paper_default(Some(30))),
            )
        })
        .collect()
    }

    #[test]
    fn smooth_fleet_is_compliant_out_of_sample() {
        // Six *smooth* apps (the regime where the paper's trace-based
        // premise holds): 3 weeks of history, 2-week planning window, one
        // out-of-sample epoch (week 2 replayed on a weeks-0..2 plan).
        let apps = fleet_specs(10, 16, 3);
        let report = framework(1).run_lifecycle(&apps, 2).unwrap();
        assert_eq!(report.epochs.len(), 1);
        let epoch = &report.epochs[0];
        assert_eq!(epoch.week, 2);
        assert_eq!(epoch.migrations, 0, "first epoch has no baseline");
        assert!(
            epoch.compliant_fraction >= 0.8,
            "compliance {} with {} violations",
            epoch.compliant_fraction,
            epoch.violations
        );
        assert_eq!(report.worst_compliance(), epoch.compliant_fraction);
    }

    #[test]
    fn bursty_apps_can_violate_out_of_sample() {
        // The burstiest slice of the fleet: unseen-week spikes can exceed
        // the trailing window's peak, so out-of-sample compliance is NOT
        // guaranteed — the caveat behind the paper's "significant changes
        // in demand ... are best forecast by business units".
        let apps = fleet_specs(0, 6, 3);
        let report = framework(1).run_lifecycle(&apps, 2).unwrap();
        // No assertion that violations occur (seed-dependent), only that
        // the loop reports coherently.
        let epoch = &report.epochs[0];
        assert!(epoch.compliant_fraction >= 0.0 && epoch.compliant_fraction <= 1.0);
        assert_eq!(
            epoch.violations,
            ((1.0 - epoch.compliant_fraction) * apps.len() as f64).round() as usize
        );
    }

    #[test]
    fn multiple_epochs_count_migrations() {
        // 4 weeks, 1-week window: epochs for weeks 1, 2, 3.
        let apps = fleet_specs(10, 15, 4);
        let report = framework(2).run_lifecycle(&apps, 1).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[0].migrations, 0);
        // Determinism: re-running gives identical epochs.
        let again = framework(2).run_lifecycle(&apps, 1).unwrap();
        assert_eq!(report, again);
        assert_eq!(
            report.total_migrations(),
            report.epochs.iter().map(|e| e.migrations).sum::<usize>()
        );
    }

    #[test]
    fn teleport_config_reproduces_run_lifecycle_exactly() {
        let apps = fleet_specs(10, 15, 4);
        let plain = framework(2).run_lifecycle(&apps, 1).unwrap();
        let teleport = framework(2)
            .run_lifecycle_with(&apps, 1, MigrationConfig::teleport())
            .unwrap();
        assert_eq!(plain, teleport);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&teleport).unwrap()
        );
        assert!(plain
            .epochs
            .iter()
            .all(|e| e.rolled_back == 0 && e.failed == 0));
    }

    #[test]
    fn paced_config_drives_epoch_moves_through_the_machine() {
        let apps = fleet_specs(0, 8, 4);
        let plain = framework(2).run_lifecycle(&apps, 1).unwrap();
        let paced = framework(2)
            .run_lifecycle_with(&apps, 1, MigrationConfig::paced().with_max_in_flight(1))
            .unwrap();
        assert_eq!(paced.epochs.len(), plain.epochs.len());
        // Same plans are produced either way, so committed moves can
        // never exceed the re-plan deltas the teleport path counts.
        for (p, t) in paced.epochs.iter().zip(&plain.epochs) {
            assert_eq!(p.week, t.week);
            assert_eq!(p.servers, t.servers);
            assert!(
                p.migrations + p.failed <= t.migrations,
                "week {}: {} committed + {} failed > {} deltas",
                p.week,
                p.migrations,
                p.failed,
                t.migrations
            );
        }
        // Determinism of the paced path.
        let again = framework(2)
            .run_lifecycle_with(&apps, 1, MigrationConfig::paced().with_max_in_flight(1))
            .unwrap();
        assert_eq!(paced, again);
    }

    #[test]
    fn lifecycle_reports_streaming_slo_attainment() {
        let apps = fleet_specs(10, 15, 4);
        let report = framework(2).run_lifecycle(&apps, 1).unwrap();
        let slo = report.slo.as_ref().expect("replay always attaches slo");
        assert_eq!(slo.apps.len(), apps.len());
        let slots_per_week = 2016; // five-minute calendar
        for a in &slo.apps {
            assert_eq!(
                a.samples,
                report.epochs.len() * slots_per_week,
                "every out-of-sample slot is observed"
            );
        }
        assert_eq!(
            report.epochs.iter().map(|e| e.slo_alerts).sum::<usize>(),
            slo.alerts.len(),
            "per-epoch alert counts partition the alert log"
        );
    }

    #[test]
    fn insufficient_history_is_rejected() {
        let apps = fleet_specs(0, 3, 2);
        assert!(matches!(
            framework(0).run_lifecycle(&apps, 2),
            Err(FrameworkError::Trace(_))
        ));
        assert!(matches!(
            framework(0).run_lifecycle(&[], 1),
            Err(FrameworkError::NoApplications)
        ));
    }
}
