//! Runtime validation of a capacity plan: replay the placed fleet through
//! the workload-manager host scheduler and audit the QoS each application
//! actually receives.
//!
//! The translation and placement promise that, as long as the pool honours
//! its CoS commitments, every application's utilization of allocation
//! stays inside its acceptable/degraded envelope. This module *checks*
//! that promise: it instantiates each server of a
//! [`PlacementReport`](ropus_placement::consolidate::PlacementReport) as a
//! two-priority [`Host`], drives it with the raw
//! demand traces, and audits every application's delivered
//! utilization-of-allocation series against its requirement. This is the
//! "service levels are evaluated" step of the paper's medium-term control
//! loop (§II).

use serde::{Deserialize, Serialize};

use ropus_wlm::host::{Host, HostedWorkload};
use ropus_wlm::manager::WlmPolicy;
use ropus_wlm::metrics::{audit, SloAudit};

use crate::framework::{CapacityPlan, Framework, PlanRequest};
use crate::FrameworkError;

/// Delivered-QoS outcome for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRuntimeOutcome {
    /// Application name.
    pub name: String,
    /// Server (index in the placement report) hosting the application.
    pub server: usize,
    /// The SLO audit of the delivered utilization of allocation.
    pub audit: SloAudit,
    /// Fraction of total demand that found no capacity in its slot.
    pub unmet_demand_fraction: f64,
}

/// Runtime summary for one server of the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerRuntimeOutcome {
    /// Server index in the placement report.
    pub server: usize,
    /// Slots in which some allocation request had to be cut.
    pub contended_slots: usize,
    /// Peak of the total granted allocation across the replay.
    pub peak_granted: f64,
}

/// Whole-pool runtime validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolRuntimeReport {
    /// Per-application delivered-QoS outcomes, in fleet order.
    pub apps: Vec<AppRuntimeOutcome>,
    /// Per-server contention summaries.
    pub servers: Vec<ServerRuntimeOutcome>,
}

impl PoolRuntimeReport {
    /// Whether every application's delivered QoS met its requirement.
    pub fn all_compliant(&self) -> bool {
        self.apps.iter().all(|a| a.audit.is_compliant())
    }

    /// Names of applications whose delivered QoS violated the requirement.
    pub fn violators(&self) -> Vec<&str> {
        self.apps
            .iter()
            .filter(|a| !a.audit.is_compliant())
            .map(|a| a.name.as_str())
            .collect()
    }
}

impl Framework {
    /// Replays a capacity plan's normal-mode placement against the raw
    /// demand traces and audits the delivered QoS per application.
    ///
    /// The request's fleet must be the same fleet (same order) the plan
    /// was built from. When the request carries an observability context,
    /// the replay runs under a `pipeline.runtime_validation` span and
    /// every host fills the `wlm.host.saturation` histogram plus the
    /// unmet/scaled slot counters.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::NoApplications`] for an empty fleet, a
    /// trace error for misaligned inputs, and propagates translation
    /// errors when recomputing the per-workload manager policies.
    pub fn validate_runtime<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
        plan: &CapacityPlan,
    ) -> Result<PoolRuntimeReport, FrameworkError> {
        let request = request.into();
        let (apps, obs) = (request.apps(), request.obs());
        if apps.is_empty() {
            return Err(FrameworkError::NoApplications);
        }
        let _span = obs.span("pipeline.runtime_validation");
        let mut app_outcomes: Vec<Option<AppRuntimeOutcome>> = vec![None; apps.len()];
        let mut server_outcomes = Vec::new();

        for server_placement in &plan.normal_placement.servers {
            let hosted: Vec<HostedWorkload> = server_placement
                .workloads
                .iter()
                .map(|&i| {
                    // lint:allow(panic-slice-index): the plan's placement
                    // was computed over these same apps, so `i` indexes
                    // both `apps` and `plan.apps` in range.
                    let (spec, app_plan) = (&apps[i], &plan.apps[i]);
                    let policy =
                        WlmPolicy::from_translation(&spec.policy().normal, &app_plan.normal);
                    HostedWorkload::new(spec.name(), spec.demand().clone(), policy)
                })
                .collect();
            let host = Host::new(self.server().capacity())?;
            let outcome = host.run(&hosted, obs)?;

            // Host outcomes come back in hosted order — the placement's
            // workload order — so zip instead of indexing by slot.
            for (wo, &app_index) in outcome.workloads.iter().zip(&server_placement.workloads) {
                // lint:allow(panic-slice-index): placement indices are in
                // range of `apps` (see above).
                let spec = &apps[app_index];
                let demand_total: f64 = spec.demand().iter().sum();
                let unmet_total: f64 = wo.unmet.iter().sum();
                let unmet_demand_fraction = if demand_total > 0.0 {
                    unmet_total / demand_total
                } else {
                    0.0
                };
                // lint:allow(panic-slice-index): same in-range invariant
                // for the per-app outcome slot.
                app_outcomes[app_index] = Some(AppRuntimeOutcome {
                    name: wo.name.clone(),
                    server: server_placement.server,
                    audit: audit(&wo.utilization, &spec.policy().normal),
                    unmet_demand_fraction,
                });
            }
            server_outcomes.push(ServerRuntimeOutcome {
                server: server_placement.server,
                contended_slots: outcome.contended_slots,
                peak_granted: outcome.total_granted.peak(),
            });
        }

        let apps_flat: Vec<AppRuntimeOutcome> = app_outcomes
            .into_iter()
            // lint:allow(panic-expect): the placement partitions all app
            // indices across servers, so every slot was filled above.
            .map(|o| o.expect("every application is placed on exactly one server"))
            .collect();
        Ok(PoolRuntimeReport {
            apps: apps_flat,
            servers: server_outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::AppSpec;
    use ropus_placement::consolidate::ConsolidationOptions;
    use ropus_placement::server::ServerSpec;
    use ropus_qos::{AppQos, CosSpec, PoolCommitments, QosPolicy};
    use ropus_trace::gen::{case_study_fleet, FleetConfig};
    use ropus_trace::{Calendar, Trace};

    fn framework(seed: u64) -> Framework {
        Framework::builder()
            .server(ServerSpec::sixteen_way())
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(seed))
            .build()
    }

    fn policy() -> QosPolicy {
        QosPolicy {
            normal: AppQos::paper_default(Some(30)),
            failure: AppQos::paper_default(None),
        }
    }

    #[test]
    fn delivered_qos_is_compliant_for_the_case_study_fleet() {
        let fleet = case_study_fleet(&FleetConfig {
            apps: 8,
            weeks: 1,
            ..FleetConfig::paper()
        });
        let apps: Vec<AppSpec> = fleet
            .into_iter()
            .map(|a| AppSpec::new(a.name, a.trace, policy()))
            .collect();
        let fw = framework(1);
        let plan = fw.plan(&apps).unwrap();
        let runtime = fw.validate_runtime(&apps, &plan).unwrap();

        assert_eq!(runtime.apps.len(), apps.len());
        assert_eq!(runtime.servers.len(), plan.normal_servers());
        // The delivered QoS keeps the translation's promise end to end.
        assert!(
            runtime.all_compliant(),
            "violators: {:?}",
            runtime.violators()
        );
        // Grants never exceed server capacity.
        for s in &runtime.servers {
            assert!(
                s.peak_granted <= 16.0 + 1e-9,
                "server {}: {}",
                s.server,
                s.peak_granted
            );
        }
        // Unmet demand is rare: the placement sized capacity for it.
        for a in &runtime.apps {
            assert!(
                a.unmet_demand_fraction < 0.02,
                "{}: {:.3}% unmet",
                a.name,
                100.0 * a.unmet_demand_fraction
            );
        }
    }

    #[test]
    fn overloaded_plan_is_caught_by_the_runtime_audit() {
        // Build a plan, then replay it against demand 3x higher than what
        // the plan was sized for — the audit must flag violations.
        let cal = Calendar::five_minute();
        let fleet = case_study_fleet(&FleetConfig {
            apps: 4,
            weeks: 1,
            ..FleetConfig::paper()
        });
        let apps: Vec<AppSpec> = fleet
            .iter()
            .map(|a| AppSpec::new(a.name.clone(), a.trace.clone(), policy()))
            .collect();
        let fw = framework(2);
        let plan = fw.plan(&apps).unwrap();
        let inflated: Vec<AppSpec> = fleet
            .into_iter()
            .map(|a| {
                let demand = a.trace.scaled(3.0).unwrap();
                assert_eq!(demand.calendar(), cal);
                AppSpec::new(a.name, demand, policy())
            })
            .collect();
        let runtime = fw.validate_runtime(&inflated, &plan).unwrap();
        assert!(
            !runtime.all_compliant() || runtime.apps.iter().any(|a| a.unmet_demand_fraction > 0.05),
            "a 3x overload must be visible in the audit"
        );
    }

    #[test]
    fn empty_fleet_rejected() {
        let fw = framework(0);
        let fleet = case_study_fleet(&FleetConfig {
            apps: 2,
            weeks: 1,
            ..FleetConfig::paper()
        });
        let apps: Vec<AppSpec> = fleet
            .into_iter()
            .map(|a| AppSpec::new(a.name, a.trace, policy()))
            .collect();
        let plan = fw.plan(&apps).unwrap();
        assert!(matches!(
            fw.validate_runtime(&[], &plan),
            Err(FrameworkError::NoApplications)
        ));
        let _ = Trace::constant(Calendar::five_minute(), 1.0, 1).unwrap();
    }
}
