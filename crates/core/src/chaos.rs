//! Fault injection against a planned pool.
//!
//! Bridges the static pipeline ([`Framework::plan`]) to the dynamic
//! fault-injection simulator in `ropus-chaos`: the fleet's translations
//! become [`ChaosApp`]s (demand trace + per-mode manager policies,
//! contracts, and placement workloads), and the replay inherits the
//! framework's server type, commitments, search options, and failure
//! scope, so its verdicts are directly comparable with the planner's
//! single-failure sweep.

use ropus_chaos::{
    replay, ChaosApp, ChaosReport, DegradationPolicy, FailureSchedule, ReplayOptions,
};
use ropus_placement::consolidate::{Consolidator, PlacementReport};
use ropus_placement::migration::MigrationConfig;
use ropus_wlm::manager::WlmPolicy;

use crate::framework::{Framework, PlanRequest};
use crate::FrameworkError;

impl Framework {
    /// Translates the fleet into replay-ready applications: demand plus
    /// both modes' manager policies, QoS contracts, and workloads.
    ///
    /// # Errors
    ///
    /// As for [`translate_fleet`](Self::translate_fleet).
    pub fn chaos_fleet<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
    ) -> Result<Vec<ChaosApp>, FrameworkError> {
        let request = request.into();
        let apps = request.apps();
        let (plans, normal_wl, failure_wl) = self.translate_fleet(request)?;
        let mut fleet = Vec::with_capacity(apps.len());
        for (((spec, plan), normal_workload), failure_workload) in
            apps.iter().zip(&plans).zip(normal_wl).zip(failure_wl)
        {
            let policy = spec.policy();
            fleet.push(ChaosApp {
                name: spec.name().to_string(),
                demand: spec.demand().clone(),
                normal_policy: WlmPolicy::from_translation(&policy.normal, &plan.normal),
                failure_policy: WlmPolicy::from_translation(&policy.failure, &plan.failure),
                normal_qos: policy.normal,
                failure_qos: policy.failure,
                normal_workload,
                failure_workload,
            });
        }
        Ok(fleet)
    }

    /// Replays the fleet's demand over `schedule`, starting from an
    /// existing normal-mode placement.
    ///
    /// The failure scope configured on the framework decides which
    /// applications relax to failure-mode QoS during an outage;
    /// `degradation` decides what happens to demand the survivors cannot
    /// absorb.
    ///
    /// # Errors
    ///
    /// Propagates translation errors and [`ChaosError`]s from the replay
    /// (wrapped as [`FrameworkError::Chaos`]).
    ///
    /// [`ChaosError`]: ropus_chaos::ChaosError
    pub fn chaos_replay_on<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
        normal_placement: &PlacementReport,
        schedule: &FailureSchedule,
        degradation: DegradationPolicy,
    ) -> Result<ChaosReport, FrameworkError> {
        self.chaos_replay_on_with(request, normal_placement, schedule, degradation, None)
    }

    /// [`chaos_replay_on`](Self::chaos_replay_on) with an explicit
    /// migration lifecycle model.
    ///
    /// `Some(config)` drives every re-placement through the migration
    /// state machine (drain → transfer → cutover → health check, storm
    /// caps) and attaches a
    /// [`MigrationReport`](ropus_placement::migration::MigrationReport)
    /// to the output; `None` keeps the historical teleport behavior.
    ///
    /// # Errors
    ///
    /// As for [`chaos_replay_on`](Self::chaos_replay_on).
    pub fn chaos_replay_on_with<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
        normal_placement: &PlacementReport,
        schedule: &FailureSchedule,
        degradation: DegradationPolicy,
        migration: Option<MigrationConfig>,
    ) -> Result<ChaosReport, FrameworkError> {
        let request = request.into();
        let obs = request.obs();
        let fleet = self.chaos_fleet(request)?;
        let consolidator = Consolidator::new(self.server(), self.commitments(), self.options());
        let options = ReplayOptions {
            scope: self.failure_scope(),
            degradation,
            migration,
        };
        let _span = obs.span("pipeline.chaos_replay");
        Ok(replay(
            &consolidator,
            normal_placement,
            &fleet,
            schedule,
            &options,
            obs,
        )?)
    }

    /// Consolidates the fleet in normal mode, then replays `schedule`
    /// against that placement.
    ///
    /// # Errors
    ///
    /// As for [`plan_normal_only`](Self::plan_normal_only) and
    /// [`chaos_replay_on`](Self::chaos_replay_on).
    pub fn chaos_replay<'a>(
        &self,
        request: impl Into<PlanRequest<'a>>,
        schedule: &FailureSchedule,
        degradation: DegradationPolicy,
    ) -> Result<ChaosReport, FrameworkError> {
        let request = request.into();
        let placement = self.plan_normal_only(request)?;
        self.chaos_replay_on(request, &placement, schedule, degradation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::AppSpec;
    use ropus_chaos::FailureEvent;
    use ropus_placement::consolidate::ConsolidationOptions;
    use ropus_qos::{AppQos, CosSpec, PoolCommitments, QosPolicy};
    use ropus_trace::gen::{case_study_fleet, FleetConfig};

    fn framework(seed: u64) -> Framework {
        Framework::builder()
            .commitments(PoolCommitments::new(CosSpec::new(0.9, 60).unwrap()))
            .options(ConsolidationOptions::fast(seed))
            .build()
    }

    fn fleet(apps: usize) -> Vec<AppSpec> {
        let policy = QosPolicy {
            normal: AppQos::paper_default(Some(30)),
            failure: AppQos::paper_default(None),
        };
        case_study_fleet(&FleetConfig {
            apps,
            weeks: 1,
            ..FleetConfig::paper()
        })
        .into_iter()
        .map(|a| AppSpec::new(a.name, a.trace, policy))
        .collect()
    }

    #[test]
    fn chaos_replay_runs_on_the_case_study_fleet() {
        let apps = fleet(4);
        let fw = framework(7);
        let placement = fw.plan_normal_only(&apps).unwrap();
        let horizon = apps[0].demand().len();
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: horizon / 4,
            duration: horizon / 8,
        }])
        .unwrap();
        let report = fw
            .chaos_replay_on(&apps, &placement, &schedule, DegradationPolicy::default())
            .unwrap();
        assert_eq!(report.slots, horizon);
        assert_eq!(report.windows.len(), 1);
        assert_eq!(report.degraded_slots, horizon / 8);
        // The balance sheet closes for every application.
        for a in &report.apps {
            let balance = a.served_total() + a.shed + a.backlog_remaining;
            assert!((balance - a.demand_total).abs() < 1e-6);
        }
    }

    #[test]
    fn chaos_replay_without_failures_matches_normal_operation() {
        let apps = fleet(3);
        let fw = framework(3);
        let report = fw
            .chaos_replay(
                &apps,
                &FailureSchedule::none(),
                DegradationPolicy::default(),
            )
            .unwrap();
        assert_eq!(report.degraded_slots, 0);
        assert!(report.windows.is_empty());
        assert_eq!(report.migrations_total, 0);
        for a in &report.apps {
            assert!(a.degraded_audit.is_none());
        }
    }
}
