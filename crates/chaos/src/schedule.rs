//! Failure/repair timelines: when servers go down and come back.
//!
//! A [`FailureSchedule`] is an explicit list of outages over the replay
//! horizon, built either from a fixed script (regression scenarios, the
//! §VII case study) or from a seeded stochastic MTBF/MTTR profile drawn
//! from the workspace's deterministic RNG facade. Both constructions are
//! pure functions of their inputs, so a schedule — and everything replayed
//! against it — is bit-identical run to run.

use serde::{Deserialize, Serialize};

use ropus_trace::rng::Rng;

use crate::error::ChaosError;

/// One server outage: the server is down for `duration` slots starting at
/// `start` (repair completes at `start + duration`, exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Index of the failed server in the normal-mode placement's pool.
    pub server: usize,
    /// First slot of the outage.
    pub start: usize,
    /// Outage length in slots (must be positive).
    pub duration: usize,
}

impl FailureEvent {
    /// First slot after the repair completes.
    pub fn end(&self) -> usize {
        self.start.saturating_add(self.duration)
    }
}

/// Seeded stochastic outage model: per-server independent alternating
/// renewal process with geometric up- and down-times.
///
/// Each server draws from its own forked RNG stream
/// (`seed_from_u64(seed).fork(server)`), so adding a server to the pool
/// never perturbs the outage history of the others.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticProfile {
    /// Seed of the outage process.
    pub seed: u64,
    /// Mean time between failures, in slots (≥ 1).
    pub mtbf_slots: usize,
    /// Mean time to repair, in slots (≥ 1).
    pub mttr_slots: usize,
}

/// A contiguous run of slots over which the set of failed servers is
/// constant. Produced by [`FailureSchedule::segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// First slot of the segment.
    pub start: usize,
    /// One past the last slot of the segment.
    pub end: usize,
    /// Failed servers during the segment, sorted ascending.
    pub failed: Vec<usize>,
}

impl Segment {
    /// Whether some server is down during this segment.
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }
}

/// A validated failure/repair timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// A schedule with no outages: the replay degenerates to a pure
    /// normal-mode run.
    pub fn none() -> Self {
        FailureSchedule { events: Vec::new() }
    }

    /// Builds a schedule from an explicit outage script.
    ///
    /// Events are sorted by `(start, server)`; per-server overlaps are
    /// rejected (a server cannot fail while already failed). Back-to-back
    /// outages (`next.start == prev.end`) are allowed and behave as one
    /// longer outage.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::ZeroDuration`] or
    /// [`ChaosError::OverlappingEvents`].
    pub fn scripted(mut events: Vec<FailureEvent>) -> Result<Self, ChaosError> {
        for e in &events {
            if e.duration == 0 {
                return Err(ChaosError::ZeroDuration {
                    server: e.server,
                    start: e.start,
                });
            }
        }
        events.sort_by_key(|e| (e.start, e.server, e.duration));
        let mut open_until: Vec<(usize, usize)> = Vec::new(); // (server, end)
        for e in &events {
            if let Some(&(_, end)) = open_until.iter().find(|&&(s, _)| s == e.server) {
                if e.start < end {
                    return Err(ChaosError::OverlappingEvents {
                        server: e.server,
                        slot: e.start,
                    });
                }
            }
            open_until.retain(|&(s, _)| s != e.server);
            open_until.push((e.server, e.end()));
        }
        Ok(FailureSchedule { events })
    }

    /// Draws a schedule from a seeded MTBF/MTTR profile for a pool of
    /// `servers` servers over `horizon` slots.
    ///
    /// Up- and down-times are geometric with means `mtbf_slots` and
    /// `mttr_slots`; outages running past the horizon are clipped to it.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::InvalidProfile`] when either mean is zero.
    pub fn stochastic(
        profile: &StochasticProfile,
        servers: usize,
        horizon: usize,
    ) -> Result<Self, ChaosError> {
        if profile.mtbf_slots == 0 || profile.mttr_slots == 0 {
            return Err(ChaosError::InvalidProfile {
                message: format!(
                    "mtbf ({}) and mttr ({}) must be at least one slot",
                    profile.mtbf_slots, profile.mttr_slots
                ),
            });
        }
        let p_fail = 1.0 / ropus_qos::units::count(profile.mtbf_slots);
        let p_repair = 1.0 / ropus_qos::units::count(profile.mttr_slots);
        let root = Rng::seed_from_u64(profile.seed);
        let mut events = Vec::new();
        for server in 0..servers {
            let mut rng = root.fork(server as u64);
            let mut t = 0usize;
            loop {
                // geometric() has support 1, 2, ... — a server is up for at
                // least one slot between outages.
                t = t.saturating_add(rng.geometric(p_fail));
                if t >= horizon {
                    break;
                }
                let duration = rng.geometric(p_repair).min(horizon - t);
                events.push(FailureEvent {
                    server,
                    start: t,
                    duration,
                });
                t = t.saturating_add(duration);
            }
        }
        // Per-server streams never overlap themselves, so scripted()'s
        // validation is a no-op here — reuse it for the canonical ordering.
        FailureSchedule::scripted(events)
    }

    /// The outages, sorted by `(start, server)`.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// The largest server index any event names.
    pub fn max_server(&self) -> Option<usize> {
        self.events.iter().map(|e| e.server).max()
    }

    /// Number of slots in `0..horizon` during which at least one server is
    /// down.
    pub fn degraded_slots(&self, horizon: usize) -> usize {
        self.segments(horizon)
            .iter()
            .filter(|s| s.is_degraded())
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Splits `0..horizon` into maximal runs of constant failed-server
    /// sets, in time order. Adjacent runs always differ in their failed
    /// set; the segments exactly tile the horizon.
    pub fn segments(&self, horizon: usize) -> Vec<Segment> {
        if horizon == 0 {
            return Vec::new();
        }
        let mut boundaries: Vec<usize> = vec![0, horizon];
        for e in &self.events {
            if e.start < horizon {
                boundaries.push(e.start);
            }
            if e.end() < horizon {
                boundaries.push(e.end());
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut segments: Vec<Segment> = Vec::new();
        for pair in boundaries.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            let mut failed: Vec<usize> = self
                .events
                .iter()
                .filter(|e| e.start <= start && start < e.end())
                .map(|e| e.server)
                .collect();
            failed.sort_unstable();
            failed.dedup();
            match segments.last_mut() {
                Some(prev) if prev.failed == failed => prev.end = end,
                _ => segments.push(Segment { start, end, failed }),
            }
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(server: usize, start: usize, duration: usize) -> FailureEvent {
        FailureEvent {
            server,
            start,
            duration,
        }
    }

    #[test]
    fn scripted_sorts_and_validates() {
        let s = FailureSchedule::scripted(vec![ev(1, 50, 10), ev(0, 10, 20)]).unwrap();
        assert_eq!(s.events()[0], ev(0, 10, 20));
        assert_eq!(s.max_server(), Some(1));
        assert!(matches!(
            FailureSchedule::scripted(vec![ev(0, 5, 0)]),
            Err(ChaosError::ZeroDuration {
                server: 0,
                start: 5
            })
        ));
        assert!(matches!(
            FailureSchedule::scripted(vec![ev(0, 10, 20), ev(0, 15, 5)]),
            Err(ChaosError::OverlappingEvents {
                server: 0,
                slot: 15
            })
        ));
        // Back-to-back outages of one server are fine.
        assert!(FailureSchedule::scripted(vec![ev(0, 10, 5), ev(0, 15, 5)]).is_ok());
        // Different servers may overlap freely.
        assert!(FailureSchedule::scripted(vec![ev(0, 10, 20), ev(1, 15, 20)]).is_ok());
    }

    #[test]
    fn segments_tile_the_horizon() {
        let s = FailureSchedule::scripted(vec![ev(0, 10, 20), ev(1, 20, 20)]).unwrap();
        let segs = s.segments(100);
        assert_eq!(segs.first().map(|s| s.start), Some(0));
        assert_eq!(segs.last().map(|s| s.end), Some(100));
        for pair in segs.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
            assert_ne!(pair[0].failed, pair[1].failed);
        }
        let expected: Vec<(usize, usize, Vec<usize>)> = vec![
            (0, 10, vec![]),
            (10, 20, vec![0]),
            (20, 30, vec![0, 1]),
            (30, 40, vec![1]),
            (40, 100, vec![]),
        ];
        let got: Vec<(usize, usize, Vec<usize>)> = segs
            .iter()
            .map(|s| (s.start, s.end, s.failed.clone()))
            .collect();
        assert_eq!(got, expected);
        assert_eq!(s.degraded_slots(100), 30);
    }

    #[test]
    fn events_past_the_horizon_are_invisible() {
        let s = FailureSchedule::scripted(vec![ev(0, 200, 10)]).unwrap();
        let segs = s.segments(100);
        assert_eq!(segs.len(), 1);
        assert!(!segs[0].is_degraded());
        assert_eq!(s.degraded_slots(100), 0);
    }

    #[test]
    fn empty_schedule_is_one_normal_segment() {
        let s = FailureSchedule::none();
        let segs = s.segments(50);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].start, segs[0].end), (0, 50));
        assert!(s.segments(0).is_empty());
    }

    #[test]
    fn stochastic_is_deterministic_and_bounded() {
        let profile = StochasticProfile {
            seed: 7,
            mtbf_slots: 100,
            mttr_slots: 12,
        };
        let a = FailureSchedule::stochastic(&profile, 4, 2016).unwrap();
        let b = FailureSchedule::stochastic(&profile, 4, 2016).unwrap();
        assert_eq!(a, b);
        assert!(!a.events().is_empty(), "mtbf 100 over 2016 slots must fire");
        for e in a.events() {
            assert!(e.server < 4);
            assert!(e.end() <= 2016);
            assert!(e.duration >= 1);
        }
    }

    #[test]
    fn stochastic_streams_are_per_server() {
        let profile = StochasticProfile {
            seed: 7,
            mtbf_slots: 100,
            mttr_slots: 12,
        };
        let small = FailureSchedule::stochastic(&profile, 2, 2016).unwrap();
        let large = FailureSchedule::stochastic(&profile, 4, 2016).unwrap();
        // The first two servers' outage histories are unchanged by growing
        // the pool.
        let first_two = |s: &FailureSchedule| -> Vec<FailureEvent> {
            s.events()
                .iter()
                .copied()
                .filter(|e| e.server < 2)
                .collect()
        };
        assert_eq!(first_two(&small), first_two(&large));
    }

    #[test]
    fn stochastic_rejects_zero_rates() {
        let bad = StochasticProfile {
            seed: 0,
            mtbf_slots: 0,
            mttr_slots: 5,
        };
        assert!(matches!(
            FailureSchedule::stochastic(&bad, 2, 100),
            Err(ChaosError::InvalidProfile { .. })
        ));
    }
}
