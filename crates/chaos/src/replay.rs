//! The degraded-mode replay engine.
//!
//! [`replay`] walks a fleet's demand traces slot by slot over a
//! [`FailureSchedule`], re-placing displaced applications onto the
//! surviving servers at every change of the failed-server set and
//! emulating each server's two-priority scheduler (CoS1 granted first,
//! CoS2 shares the remainder proportionally). Unserved demand is either
//! shed immediately or carried over as deferred CoS2 work with a
//! deadline, per the [`DegradationPolicy`].
//!
//! # Determinism
//!
//! The replay is a pure function of its inputs. Re-placements reuse the
//! failure-sweep worker discipline: when the consolidator is configured
//! with more than one thread, the distinct failed-server sets are solved
//! through the order-preserving
//! [`parallel_map`](ropus_placement::engine::parallel_map()) while each
//! inner search runs single-threaded, so results are bit-identical across
//! `--threads` settings. The slot loop itself is serial.

use std::collections::VecDeque;

use ropus_obs::{BurnRateRule, ObsCtx, SloEngine};
use ropus_placement::consolidate::{Consolidator, PlacementReport};
use ropus_placement::engine::parallel_map;
use ropus_placement::failure::FailureScope;
use ropus_placement::migration::{MigrationConfig, MigrationOrchestrator, MigrationPhase};
use ropus_placement::server::Pool;
use ropus_placement::workload::Workload;
use ropus_qos::AppQos;
use ropus_trace::{Trace, TraceError};
use ropus_wlm::manager::{WlmPolicy, WorkloadManager};
use ropus_wlm::metrics::{audit, slo_contract};
use ropus_wlm::WlmError;

use crate::error::ChaosError;
use crate::report::{AppChaosOutcome, ChaosReport, DegradedWindow};
use crate::schedule::FailureSchedule;

/// Amounts below this are treated as fully served/drained.
const EPSILON: f64 = 1e-9;

/// Everything the replay needs to know about one application.
#[derive(Debug, Clone)]
pub struct ChaosApp {
    /// Application name (report key).
    pub name: String,
    /// Raw demand trace.
    pub demand: Trace,
    /// Manager policy derived from the normal-mode translation.
    pub normal_policy: WlmPolicy,
    /// Manager policy derived from the failure-mode translation.
    pub failure_policy: WlmPolicy,
    /// Normal-mode QoS contract (audited outside degraded windows).
    pub normal_qos: AppQos,
    /// Failure-mode QoS contract (audited inside degraded windows).
    pub failure_qos: AppQos,
    /// Normal-mode workload (drives placement when the app keeps its
    /// normal contract during an outage).
    pub normal_workload: Workload,
    /// Failure-mode workload (drives placement when the app is relaxed
    /// to its failure contract).
    pub failure_workload: Workload,
}

/// What happens to demand the survivors cannot absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Defer unserved demand as CoS2 carry-over work instead of shedding
    /// it immediately.
    pub carry_over: bool,
    /// Slots deferred demand may wait before it is shed. `None` uses the
    /// pool's CoS2 carry-forward deadline `s` from its commitments.
    pub deadline_slots: Option<usize>,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            carry_over: true,
            deadline_slots: None,
        }
    }
}

impl DegradationPolicy {
    /// Sheds unserved demand immediately instead of deferring it.
    pub fn shed_immediately() -> Self {
        DegradationPolicy {
            carry_over: false,
            deadline_slots: Some(0),
        }
    }
}

/// Knobs of a chaos replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOptions {
    /// Which applications relax to failure-mode QoS during an outage.
    pub scope: FailureScope,
    /// Graceful-degradation policy for demand the survivors cannot
    /// absorb.
    pub degradation: DegradationPolicy,
    /// Migration lifecycle model. `None` teleports workloads between
    /// servers at segment boundaries (the historical behavior);
    /// `Some(config)` drives every re-placement through the
    /// [`MigrationOrchestrator`] state machine — with
    /// [`MigrationConfig::teleport`] the replay is bit-identical to
    /// `None` except for the extra [`MigrationReport`] in the output.
    ///
    /// [`MigrationReport`]: ropus_placement::migration::MigrationReport
    pub migration: Option<MigrationConfig>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            scope: FailureScope::AffectedOnly,
            degradation: DegradationPolicy::default(),
            migration: None,
        }
    }
}

impl ReplayOptions {
    /// Sets the failure scope.
    pub fn with_scope(mut self, scope: FailureScope) -> Self {
        self.scope = scope;
        self
    }

    /// Sets the graceful-degradation policy.
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = degradation;
        self
    }

    /// Routes re-placements through the migration state machine.
    pub fn with_migration(mut self, migration: MigrationConfig) -> Self {
        self.migration = Some(migration);
        self
    }
}

/// Per-segment execution plan: where every app runs and under which
/// contract.
#[derive(Debug, Clone)]
struct SegmentPlan {
    /// App → physical server (`None` = nowhere to run, blackout).
    assignment: Vec<Option<usize>>,
    /// App → whether it runs under its failure-mode policy/contract.
    use_failure: Vec<bool>,
    /// Apps displaced from a failed server (relative to normal mode).
    affected: Vec<usize>,
    /// Whether the consolidator found this placement (vs. best-effort).
    feasible: bool,
    /// Whether some server is down.
    degraded: bool,
}

/// Replays the fleet's demand over `schedule`, starting from
/// `normal_placement`.
///
/// `consolidator` supplies the server type, pool commitments, and search
/// options used to re-place displaced workloads onto survivors; its
/// thread count also parallelizes the per-failed-set placements.
///
/// When `obs` carries an enabled handle the replay emits
/// `chaos.segment.replan` events as each degraded segment's execution
/// plan is fixed, `chaos.window.recovery` events when the per-window
/// metrics are assembled, and counters for shed / carried / contended
/// slots plus `chaos.replay.infeasible_segments` — degraded segments
/// whose re-placement fell back to best-effort packing, an outcome
/// previous versions dropped silently. All spans and events come from
/// the serial slot loop, so the collector's report is bit-identical
/// across `--threads` settings when timings are suppressed.
///
/// # Errors
///
/// Returns [`ChaosError::NoApplications`] for an empty fleet,
/// [`ChaosError::UnknownServer`] when an event names a server the normal
/// placement does not use, [`ChaosError::Wlm`] for a degenerate server
/// capacity, and [`ChaosError::Trace`] for misaligned demand traces.
pub fn replay(
    consolidator: &Consolidator,
    normal_placement: &PlacementReport,
    apps: &[ChaosApp],
    schedule: &FailureSchedule,
    options: &ReplayOptions,
    obs: ObsCtx<'_>,
) -> Result<ChaosReport, ChaosError> {
    let n = apps.len();
    if n == 0 {
        return Err(ChaosError::NoApplications);
    }
    let capacity = consolidator.server().capacity();
    if !capacity.is_finite() || capacity <= 0.0 {
        return Err(ChaosError::Wlm(WlmError::InvalidCapacity { capacity }));
    }
    let calendar = apps[0].demand.calendar();
    let horizon = apps[0].demand.len();
    for app in apps {
        if app.demand.calendar() != calendar || app.demand.len() != horizon {
            return Err(ChaosError::Trace(TraceError::Misaligned {
                left: horizon,
                right: app.demand.len(),
            }));
        }
    }
    if normal_placement.assignment.len() != n {
        return Err(ChaosError::Trace(TraceError::Misaligned {
            left: n,
            right: normal_placement.assignment.len(),
        }));
    }
    let pool_ids: Vec<usize> = normal_placement.servers.iter().map(|s| s.server).collect();
    for e in schedule.events() {
        if !pool_ids.contains(&e.server) {
            return Err(ChaosError::UnknownServer {
                server: e.server,
                pool: pool_ids.len(),
            });
        }
    }
    let deadline_slots = match options.degradation.deadline_slots {
        Some(s) => s,
        None => calendar.slots_in_minutes(consolidator.commitments().cos2.deadline_minutes()),
    };
    let carry_over = options.degradation.carry_over && deadline_slots > 0;

    let segments = schedule.segments(horizon);
    let plans = {
        let _span = obs.span("chaos.replay.plan_segments");
        segment_plans(
            consolidator,
            normal_placement,
            apps,
            &segments,
            options,
            obs,
        )?
    };
    let infeasible = plans.iter().filter(|p| p.degraded && !p.feasible).count();
    obs.counter("chaos.replay.infeasible_segments", infeasible as u64);

    // Windows: maximal runs of degraded segments, as inclusive segment
    // index ranges.
    let mut window_ranges: Vec<(usize, usize)> = Vec::new();
    for (k, seg) in segments.iter().enumerate() {
        if seg.is_degraded() {
            match window_ranges.last_mut() {
                Some((_, hi)) if *hi + 1 == k => *hi = k,
                _ => window_ranges.push((k, k)),
            }
        }
    }
    let window_of = |k: usize| -> Option<usize> {
        window_ranges
            .iter()
            .position(|&(lo, hi)| lo <= k && k <= hi)
    };

    let id_cap = pool_ids.iter().max().map_or(0, |m| m + 1);
    let samples: Vec<&[f64]> = apps.iter().map(|a| a.demand.samples()).collect();

    // Per-app running state.
    let mut backlog: Vec<VecDeque<(usize, f64)>> = vec![VecDeque::new(); n];
    let mut util_normal: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut util_degraded: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut demand_total = vec![0.0f64; n];
    let mut served_on_time = vec![0.0f64; n];
    let mut served_late = vec![0.0f64; n];
    let mut shed = vec![0.0f64; n];
    let mut migrations_per_app = vec![0usize; n];
    // Fleet-wide series and counters.
    let mut backlog_series: Vec<f64> = Vec::with_capacity(horizon);
    let mut window_migrations = vec![0usize; window_ranges.len()];
    let mut window_shed = vec![0.0f64; window_ranges.len()];
    let mut contended_slots = 0usize;
    let mut migrations_total = 0usize;
    let mut prev_assignment: Vec<Option<usize>> = normal_placement
        .assignment
        .iter()
        .map(|&s| Some(s))
        .collect();

    // Migration machine (when enabled): the authoritative serving
    // assignment `eff` replaces the segment plan's instantaneous one,
    // moving only as the orchestrator commits cutovers.
    let mut orch = options
        .migration
        .map(|config| MigrationOrchestrator::new(config, prev_assignment.clone()));
    let mut eff: Vec<Option<usize>> = prev_assignment.clone();
    let mut hosted: Vec<Vec<usize>> = vec![Vec::new(); id_cap];
    let mut reserved: Vec<Vec<usize>> = vec![Vec::new(); id_cap];
    let mut contended_flags = vec![false; id_cap];
    let mut healthy = vec![true; n];
    let mut band_high = vec![0.0f64; n];

    // Streaming SLO attainment against the *normal* contract for the
    // whole replay: planned degradation during an outage still spends
    // the app's error budget, which is exactly what the burn-rate
    // alerts should surface.
    let mut slo = SloEngine::new(BurnRateRule::default_rules());
    for app in apps {
        slo.register(slo_contract(
            app.name.clone(),
            &app.normal_qos,
            calendar.slot_minutes(),
        ));
    }

    // Scratch buffers reused across slots.
    let mut demand = vec![0.0f64; n];
    let mut requests = vec![(0.0f64, 0.0f64); n];
    let mut extra = vec![0.0f64; n];
    let mut grant_base = vec![0.0f64; n];
    let mut grant_extra = vec![0.0f64; n];
    // Per-app request columns for the current segment, replayed
    // workload-major before the slot loop (managers restart at segment
    // boundaries and only ever see their own demand, so running each
    // column to completion is bit-identical to the old interleaved
    // per-slot observe).
    let mut req_cos1: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut req_cos2: Vec<Vec<f64>> = vec![Vec::new(); n];

    let slots_span = obs.span("chaos.replay.slots");
    for (k, seg) in segments.iter().enumerate() {
        let plan = &plans[k];
        // Attribute boundary moves to the window they enter, or — for
        // the moves back home at repair — to the window that just ended.
        let attributed = if plan.degraded {
            window_of(k)
        } else if k > 0 && plans[k - 1].degraded {
            window_of(k - 1)
        } else {
            None
        };
        match orch.as_mut() {
            None => {
                // Teleport: an app moved if it now runs on a different
                // server (losing its server entirely is displacement,
                // not a migration).
                let mut moved = 0usize;
                for i in 0..n {
                    if plan.assignment[i] != prev_assignment[i] && plan.assignment[i].is_some() {
                        migrations_per_app[i] += 1;
                        moved += 1;
                    }
                }
                prev_assignment.clone_from(&plan.assignment);
                migrations_total += moved;
                if let Some(w) = attributed {
                    window_migrations[w] += moved;
                }
            }
            Some(orch) => {
                // The new plan becomes the machine's target; moves count
                // only when they commit (inside the slot loop below).
                orch.retarget(&plan.assignment, &seg.failed, seg.start, attributed, obs);
                for (i, app) in apps.iter().enumerate() {
                    band_high[i] = if plan.use_failure[i] {
                        app.failure_qos.band().high()
                    } else {
                        app.normal_qos.band().high()
                    };
                }
            }
        }

        // Managers restart at the segment boundary under the active
        // policy; with smoothing 1.0 the estimate equals current demand,
        // so the reset is seamless. Each manager replays its whole
        // segment column up front, so the slot loop reads precomputed
        // request columns instead of stepping n managers per slot.
        for (i, series) in samples.iter().enumerate() {
            let mut manager = WorkloadManager::new(if plan.use_failure[i] {
                apps[i].failure_policy
            } else {
                apps[i].normal_policy
            });
            req_cos1[i].clear();
            req_cos2[i].clear();
            for &d in &series[seg.start..seg.end] {
                let request = manager.observe(d);
                req_cos1[i].push(request.cos1);
                req_cos2[i].push(request.cos2);
            }
        }
        if orch.is_none() {
            // Teleport: the plan's assignment takes effect instantly.
            eff.clone_from(&plan.assignment);
            for list in hosted.iter_mut() {
                list.clear();
            }
            for i in 0..n {
                if let Some(s) = plan.assignment[i] {
                    hosted[s].push(i);
                }
            }
        }

        for slot in seg.start..seg.end {
            // Migration machine, slot start: begin eligible moves under
            // the storm caps, then refresh the serving/reservation views
            // if anything changed (including the segment's retarget).
            if let Some(orch) = orch.as_mut() {
                let transitions = orch.begin_slot(slot, obs);
                count_commits(
                    &transitions,
                    &mut migrations_per_app,
                    &mut migrations_total,
                    &mut window_migrations,
                );
                if orch.take_dirty() {
                    rebuild_views(
                        orch.serving(),
                        &orch.reservations(),
                        &mut eff,
                        &mut hosted,
                        &mut reserved,
                    );
                }
            }
            // Pass 1: read each app's precomputed request for this slot;
            // outstanding backlog rides along as extra CoS2.
            let off = slot - seg.start;
            for (i, series) in samples.iter().enumerate() {
                demand[i] = series[slot];
                requests[i] = (req_cos1[i][off], req_cos2[i][off]);
                extra[i] = backlog[i].iter().map(|e| e.1).sum();
            }
            // Pass 2: each server grants CoS1 first (scaled down
            // proportionally on overflow), then CoS2 shares the
            // remainder proportionally. Migrating apps' reserved demand
            // presses on the destination's scales (capacity
            // double-booked mid-move) without drawing grants there.
            let mut contended = false;
            contended_flags.fill(false);
            for (s, ids) in hosted.iter().enumerate() {
                // lint:allow(panic-slice-index): reserved has id_cap
                // entries, like hosted.
                let resv = &reserved[s];
                if ids.is_empty() && resv.is_empty() {
                    continue;
                }
                let mut cos1_sum: f64 = ids.iter().map(|&i| requests[i].0).sum();
                let mut cos2_sum: f64 = ids.iter().map(|&i| requests[i].1 + extra[i]).sum();
                if !resv.is_empty() {
                    cos1_sum += resv.iter().map(|&i| requests[i].0).sum::<f64>();
                    cos2_sum += resv.iter().map(|&i| requests[i].1).sum::<f64>();
                }
                let cos1_scale = if cos1_sum > capacity {
                    capacity / cos1_sum
                } else {
                    1.0
                };
                let remaining = (capacity - cos1_sum * cos1_scale).max(0.0);
                let cos2_scale = if cos2_sum > remaining && cos2_sum > 0.0 {
                    remaining / cos2_sum
                } else {
                    1.0
                };
                if cos1_scale < 1.0 || cos2_scale < 1.0 {
                    contended = true;
                    contended_flags[s] = true;
                }
                for &i in ids {
                    grant_base[i] = requests[i].0 * cos1_scale + requests[i].1 * cos2_scale;
                    grant_extra[i] = extra[i] * cos2_scale;
                }
            }
            if contended {
                contended_slots += 1;
                obs.counter("chaos.replay.contended_slots", 1);
            }
            // Pass 3: serve current demand first, drain backlog FIFO with
            // whatever grant is left, then defer or shed the shortfall.
            let mut slot_backlog = 0.0f64;
            let mut slot_shed = 0.0f64;
            let mut slot_carried = false;
            for i in 0..n {
                let recovering = !backlog[i].is_empty();
                let (g_base, g_extra) = if eff[i].is_some() {
                    (grant_base[i], grant_extra[i])
                } else {
                    (0.0, 0.0)
                };
                let g_total = g_base + g_extra;
                let d = demand[i];
                let serve_now = d.min(g_total);
                let mut leftover = (g_total - serve_now).max(0.0);
                let mut late = 0.0f64;
                while leftover > EPSILON {
                    let Some(front) = backlog[i].front_mut() else {
                        break;
                    };
                    let take = front.1.min(leftover);
                    front.1 -= take;
                    late += take;
                    leftover -= take;
                    if front.1 <= EPSILON {
                        backlog[i].pop_front();
                    }
                }
                demand_total[i] += d;
                served_on_time[i] += serve_now;
                served_late[i] += late;
                let shortfall = d - serve_now;
                if shortfall > EPSILON {
                    if carry_over {
                        backlog[i].push_back((slot, shortfall));
                        slot_carried = true;
                    } else {
                        shed[i] += shortfall;
                        slot_shed += shortfall;
                    }
                }
                // Expire deferred work past its deadline. Entries are in
                // arrival order, so the front is always the oldest.
                while let Some(&(arrival, amount)) = backlog[i].front() {
                    if slot >= arrival + deadline_slots {
                        shed[i] += amount;
                        slot_shed += amount;
                        backlog[i].pop_front();
                    } else {
                        break;
                    }
                }
                slot_backlog += backlog[i].iter().map(|e| e.1).sum::<f64>();
                // Utilization of (own) allocation for current demand —
                // backlog drain uses headroom and is not charged against
                // the band.
                let u = if g_base > EPSILON {
                    serve_now.min(g_base) / g_base
                } else {
                    0.0
                };
                if plan.degraded || recovering {
                    util_degraded[i].push(u);
                } else {
                    util_normal[i].push(u);
                }
                slo.observe(i, slot, u, obs);
                // Health verdict for the migration machine: the slot is
                // healthy when current demand was fully served within
                // the app's utilization band.
                if orch.is_some() {
                    healthy[i] = shortfall <= EPSILON && u <= band_high[i] + EPSILON;
                }
            }
            // Migration machine, slot end: apply drain/health progress.
            if let Some(orch) = orch.as_mut() {
                let transitions = orch.complete_slot(slot, &contended_flags, &healthy, obs);
                count_commits(
                    &transitions,
                    &mut migrations_per_app,
                    &mut migrations_total,
                    &mut window_migrations,
                );
            }
            backlog_series.push(slot_backlog);
            if slot_shed > EPSILON {
                obs.counter("chaos.replay.shed_slots", 1);
            }
            if slot_carried {
                obs.counter("chaos.replay.carried_slots", 1);
            }
            if plan.degraded {
                if let Some(w) = window_of(k) {
                    window_shed[w] += slot_shed;
                }
            }
        }
    }
    drop(slots_span);

    // Assemble per-window metrics.
    let mut windows = Vec::with_capacity(window_ranges.len());
    for (w, &(lo, hi)) in window_ranges.iter().enumerate() {
        let start = segments[lo].start;
        let end = segments[hi].end;
        let mut failed: Vec<usize> = Vec::new();
        let mut displaced: Vec<usize> = Vec::new();
        let mut feasible = true;
        for k in lo..=hi {
            failed.extend_from_slice(&segments[k].failed);
            displaced.extend_from_slice(&plans[k].affected);
            feasible &= plans[k].feasible;
        }
        failed.sort_unstable();
        failed.dedup();
        displaced.sort_unstable();
        displaced.dedup();
        let mut recovery_slots = None;
        for (t, &outstanding) in backlog_series.iter().enumerate().skip(end - 1) {
            if outstanding <= EPSILON {
                recovery_slots = Some((t + 1).saturating_sub(end));
                break;
            }
        }
        let mut recovery_event = obs
            .event("chaos.window.recovery")
            .with_u64("start", start as u64)
            .with_u64("end", end as u64)
            .with_str("feasible", if feasible { "true" } else { "false" })
            .with_u64("displaced", displaced.len() as u64)
            .with_u64("migrations", window_migrations[w] as u64)
            .with_f64("shed", window_shed[w]);
        if let Some(r) = recovery_slots {
            recovery_event = recovery_event.with_u64("recovery_slots", r as u64);
        }
        recovery_event.emit();
        windows.push(DegradedWindow {
            start,
            end,
            failed,
            feasible,
            displaced: displaced.len(),
            migrations: window_migrations[w],
            shed: window_shed[w],
            recovery_slots,
        });
    }

    // Assemble per-app outcomes.
    let mut out_apps = Vec::with_capacity(n);
    for (i, app) in apps.iter().enumerate() {
        let normal_audit = if util_normal[i].is_empty() {
            None
        } else {
            let trace = Trace::from_samples(calendar, std::mem::take(&mut util_normal[i]))?;
            Some(audit(&trace, &app.normal_qos))
        };
        let degraded_audit = if util_degraded[i].is_empty() {
            None
        } else {
            let trace = Trace::from_samples(calendar, std::mem::take(&mut util_degraded[i]))?;
            Some(audit(&trace, &app.failure_qos))
        };
        let backlog_remaining: f64 = backlog[i].iter().map(|e| e.1).sum();
        let served = served_on_time[i] + served_late[i];
        let unserved_fraction = if demand_total[i] > 0.0 {
            ((demand_total[i] - served) / demand_total[i]).max(0.0)
        } else {
            0.0
        };
        out_apps.push(AppChaosOutcome {
            name: app.name.clone(),
            home_server: normal_placement.assignment[i],
            demand_total: demand_total[i],
            served_on_time: served_on_time[i],
            served_late: served_late[i],
            shed: shed[i],
            backlog_remaining,
            unserved_fraction,
            migrations: migrations_per_app[i],
            normal_audit,
            degraded_audit,
        });
    }

    // Per-move timelines and recovery metrics when the machine ran.
    let migration = orch.map(|o| {
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        o.report(&names)
    });

    slo.record_counters(obs);
    let slo = Some(slo.summary());

    Ok(ChaosReport {
        slots: horizon,
        slot_minutes: calendar.slot_minutes(),
        scope: options.scope,
        carry_over,
        deadline_slots,
        degraded_slots: segments
            .iter()
            .filter(|s| s.is_degraded())
            .map(|s| s.end - s.start)
            .sum(),
        contended_slots,
        migrations_total,
        demand_total: demand_total.iter().sum(),
        served_total: served_on_time.iter().sum::<f64>() + served_late.iter().sum::<f64>(),
        served_late_total: served_late.iter().sum(),
        shed_total: shed.iter().sum(),
        apps: out_apps,
        windows,
        migration,
        slo,
        obs: None,
    })
}

/// Books committed transitions into the per-app / fleet / per-window
/// migration tallies — the machine-driven twin of the teleport path's
/// boundary counting.
fn count_commits(
    transitions: &[ropus_placement::migration::Transition],
    migrations_per_app: &mut [usize],
    migrations_total: &mut usize,
    window_migrations: &mut [usize],
) {
    for t in transitions {
        if t.phase != MigrationPhase::Committed {
            continue;
        }
        if let Some(per_app) = migrations_per_app.get_mut(t.app) {
            *per_app += 1;
        }
        *migrations_total += 1;
        if let Some(w) = t.window {
            if let Some(count) = window_migrations.get_mut(w) {
                *count += 1;
            }
        }
    }
}

/// Rebuilds the slot loop's serving and reservation views from the
/// migration machine's authoritative state.
fn rebuild_views(
    serving: &[Option<usize>],
    reservations: &[(usize, usize)],
    eff: &mut Vec<Option<usize>>,
    hosted: &mut [Vec<usize>],
    reserved: &mut [Vec<usize>],
) {
    eff.clear();
    eff.extend_from_slice(serving);
    for list in hosted.iter_mut() {
        list.clear();
    }
    for (i, &s) in serving.iter().enumerate() {
        if let Some(list) = s.and_then(|s| hosted.get_mut(s)) {
            list.push(i);
        }
    }
    for list in reserved.iter_mut() {
        list.clear();
    }
    for &(app, server) in reservations {
        if let Some(list) = reserved.get_mut(server) {
            list.push(app);
        }
    }
}

/// Builds the per-segment execution plans, re-placing displaced
/// workloads for every distinct failed-server set.
fn segment_plans(
    consolidator: &Consolidator,
    normal_placement: &PlacementReport,
    apps: &[ChaosApp],
    segments: &[crate::schedule::Segment],
    options: &ReplayOptions,
    obs: ObsCtx<'_>,
) -> Result<Vec<SegmentPlan>, ChaosError> {
    let n = apps.len();
    let pool_ids: Vec<usize> = normal_placement.servers.iter().map(|s| s.server).collect();

    // Distinct failed sets in first-appearance order; every segment maps
    // to its set's index (usize::MAX sentinel is never read for normal
    // segments).
    let mut distinct: Vec<Vec<usize>> = Vec::new();
    for seg in segments {
        if seg.is_degraded() && !distinct.contains(&seg.failed) {
            distinct.push(seg.failed.clone());
        }
    }

    // One re-placement input per distinct failed set.
    struct SetInput {
        affected: Vec<usize>,
        mixed: Vec<Workload>,
        survivors: Vec<usize>,
    }
    let inputs: Vec<SetInput> = distinct
        .iter()
        .map(|failed| {
            let affected: Vec<usize> = (0..n)
                .filter(|&i| failed.contains(&normal_placement.assignment[i]))
                .collect();
            let mixed: Vec<Workload> = (0..n)
                .map(|i| match options.scope {
                    FailureScope::AllApplications => apps[i].failure_workload.clone(),
                    FailureScope::AffectedOnly => {
                        if affected.contains(&i) {
                            apps[i].failure_workload.clone()
                        } else {
                            apps[i].normal_workload.clone()
                        }
                    }
                })
                .collect();
            let survivors: Vec<usize> = pool_ids
                .iter()
                .copied()
                .filter(|s| !failed.contains(s))
                .collect();
            SetInput {
                affected,
                mixed,
                survivors,
            }
        })
        .collect();

    // Solve the distinct sets in parallel; each inner search runs
    // single-threaded so worker pools do not nest and results stay
    // bit-identical across `--threads` settings.
    let threads = consolidator.options().ga.threads;
    let worker = if threads > 1 {
        Consolidator::new(
            consolidator.server(),
            consolidator.commitments(),
            consolidator.options().with_threads(1),
        )
    } else {
        *consolidator
    };
    let server = consolidator.server();
    let placements: Vec<(bool, Vec<Option<usize>>)> = parallel_map(threads, &inputs, |input| {
        if input.survivors.is_empty() {
            // Blackout: nowhere to run anything.
            return (false, vec![None; n]);
        }
        let pool = Pool::homogeneous(server, input.survivors.len());
        match worker.consolidate_onto(&input.mixed, pool, ObsCtx::none()) {
            Ok(report) => {
                let assignment = report
                    .assignment
                    .iter()
                    .map(|&s| Some(input.survivors[s]))
                    .collect();
                (true, assignment)
            }
            // The survivors cannot absorb the fleet within commitments:
            // fall back to deterministic best-effort packing and let the
            // slot loop degrade gracefully.
            Err(_) => (
                false,
                best_effort_assignment(&input.mixed, &input.survivors),
            ),
        }
    });

    let mut plans = Vec::with_capacity(segments.len());
    for seg in segments {
        if !seg.is_degraded() {
            plans.push(SegmentPlan {
                assignment: normal_placement
                    .assignment
                    .iter()
                    .map(|&s| Some(s))
                    .collect(),
                use_failure: vec![false; n],
                affected: Vec::new(),
                feasible: true,
                degraded: false,
            });
            continue;
        }
        let ix = distinct
            .iter()
            .position(|f| *f == seg.failed)
            .unwrap_or_default();
        let input = &inputs[ix];
        let (feasible, ref assignment) = placements[ix];
        // The re-placements above ran in parallel workers; this assembly
        // loop is serial, so events keep their deterministic order.
        obs.event("chaos.segment.replan")
            .with_u64("start", seg.start as u64)
            .with_u64("end", seg.end as u64)
            .with_u64("failed", seg.failed.len() as u64)
            .with_u64("displaced", input.affected.len() as u64)
            .with_str("feasible", if feasible { "true" } else { "false" })
            .emit();
        let use_failure: Vec<bool> = (0..n)
            .map(|i| match options.scope {
                FailureScope::AllApplications => true,
                FailureScope::AffectedOnly => input.affected.contains(&i),
            })
            .collect();
        plans.push(SegmentPlan {
            assignment: assignment.clone(),
            use_failure,
            affected: input.affected.clone(),
            feasible,
            degraded: true,
        });
    }
    Ok(plans)
}

/// Deterministic greedy fallback: largest workloads first, each onto the
/// least-loaded survivor (ties break to the lowest server id).
fn best_effort_assignment(mixed: &[Workload], survivors: &[usize]) -> Vec<Option<usize>> {
    let mut order: Vec<usize> = (0..mixed.len()).collect();
    order.sort_by(|&a, &b| {
        mixed[b]
            .total_peak()
            .partial_cmp(&mixed[a].total_peak())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut load = vec![0.0f64; survivors.len()];
    let mut assignment = vec![None; mixed.len()];
    for i in order {
        let mut best = 0usize;
        for (j, &l) in load.iter().enumerate() {
            if l < load[best] {
                best = j;
            }
        }
        assignment[i] = Some(survivors[best]);
        load[best] += mixed[i].total_peak();
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FailureEvent;
    use ropus_placement::consolidate::ConsolidationOptions;
    use ropus_placement::server::ServerSpec;
    use ropus_qos::translation::translate;
    use ropus_qos::{CosSpec, PoolCommitments};
    use ropus_trace::Calendar;

    /// One week on the five-minute calendar; the consolidator requires
    /// whole-week traces.
    const WEEK: usize = 2016;

    fn commitments() -> PoolCommitments {
        PoolCommitments::new(CosSpec::new(0.9, 60).unwrap())
    }

    fn consolidator(threads: usize) -> Consolidator {
        Consolidator::new(
            ServerSpec::new(4, 4.0),
            commitments(),
            ConsolidationOptions::fast(11).with_threads(threads),
        )
    }

    /// Builds an app with constant demand plus its translations.
    fn app(name: &str, level: f64, slots: usize) -> ChaosApp {
        let calendar = Calendar::five_minute();
        let demand = Trace::constant(calendar, level, slots).unwrap();
        let normal_qos = AppQos::paper_default(Some(30));
        let failure_qos = AppQos::paper_default(None);
        let normal = translate(&demand, &normal_qos, &commitments().cos2, ObsCtx::none()).unwrap();
        let failure =
            translate(&demand, &failure_qos, &commitments().cos2, ObsCtx::none()).unwrap();
        ChaosApp {
            name: name.to_string(),
            demand,
            normal_policy: WlmPolicy::from_translation(&normal_qos, &normal.report),
            failure_policy: WlmPolicy::from_translation(&failure_qos, &failure.report),
            normal_qos,
            failure_qos,
            normal_workload: Workload::from_translation(name, normal),
            failure_workload: Workload::from_translation(name, failure),
        }
    }

    fn fleet(levels: &[f64], slots: usize) -> Vec<ChaosApp> {
        levels
            .iter()
            .enumerate()
            .map(|(i, &l)| app(&format!("app-{i}"), l, slots))
            .collect()
    }

    fn normal_placement(cons: &Consolidator, apps: &[ChaosApp]) -> PlacementReport {
        let workloads: Vec<Workload> = apps.iter().map(|a| a.normal_workload.clone()).collect();
        cons.consolidate(&workloads, ObsCtx::none()).unwrap()
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let cons = consolidator(1);
        let apps = fleet(&[1.0], WEEK);
        let placement = normal_placement(&cons, &apps);
        let err = replay(
            &cons,
            &placement,
            &[],
            &FailureSchedule::none(),
            &ReplayOptions::default(),
            ObsCtx::none(),
        );
        assert!(matches!(err, Err(ChaosError::NoApplications)));
    }

    #[test]
    fn unknown_server_is_rejected() {
        let cons = consolidator(1);
        let apps = fleet(&[1.0, 1.2], WEEK);
        let placement = normal_placement(&cons, &apps);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: 40,
            start: 0,
            duration: 4,
        }])
        .unwrap();
        let err = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default(),
            ObsCtx::none(),
        );
        assert!(matches!(
            err,
            Err(ChaosError::UnknownServer { server: 40, .. })
        ));
    }

    #[test]
    fn no_failures_replays_clean() {
        let cons = consolidator(1);
        let apps = fleet(&[1.0, 1.2, 0.8], WEEK);
        let placement = normal_placement(&cons, &apps);
        let report = replay(
            &cons,
            &placement,
            &apps,
            &FailureSchedule::none(),
            &ReplayOptions::default(),
            ObsCtx::none(),
        )
        .unwrap();
        assert_eq!(report.degraded_slots, 0);
        assert_eq!(report.migrations_total, 0);
        assert!(report.windows.is_empty());
        assert!(report.shed_total.abs() < 1e-9);
        assert!(report.all_compliant(), "clean replay must be compliant");
        for a in &report.apps {
            assert!(a.degraded_audit.is_none());
            assert!((a.served_total() - a.demand_total).abs() < 1e-6);
        }
    }

    #[test]
    fn accounting_identity_holds() {
        // Demand = served + shed + backlog for every app, whatever the
        // degradation policy.
        let cons = consolidator(1);
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2], WEEK);
        let placement = normal_placement(&cons, &apps);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 8,
            duration: 16,
        }])
        .unwrap();
        for degradation in [
            DegradationPolicy::default(),
            DegradationPolicy::shed_immediately(),
            DegradationPolicy {
                carry_over: true,
                deadline_slots: Some(2),
            },
        ] {
            let report = replay(
                &cons,
                &placement,
                &apps,
                &schedule,
                &ReplayOptions::default().with_degradation(degradation),
                ObsCtx::none(),
            )
            .unwrap();
            for a in &report.apps {
                let balance = a.served_total() + a.shed + a.backlog_remaining;
                assert!(
                    (balance - a.demand_total).abs() < 1e-6,
                    "{}: demand {} vs balance {balance}",
                    a.name,
                    a.demand_total
                );
            }
            assert_eq!(report.windows.len(), 1);
            assert_eq!(report.degraded_slots, 16);
        }
    }

    #[test]
    fn blackout_shreds_or_carries_everything() {
        let cons = consolidator(1);
        let apps = fleet(&[1.5], WEEK);
        let placement = normal_placement(&cons, &apps);
        assert_eq!(placement.servers_used, 1);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 4,
            duration: 4,
        }])
        .unwrap();
        let report = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_degradation(DegradationPolicy::shed_immediately()),
            ObsCtx::none(),
        )
        .unwrap();
        // 4 slots × 1.5 CPU shed, the rest served.
        assert!((report.shed_total - 6.0).abs() < 1e-6);
        assert!(!report.windows[0].feasible);
        assert_eq!(report.windows[0].displaced, 1);
        assert_eq!(report.windows[0].recovery_slots, Some(0));
    }

    #[test]
    fn carried_demand_recovers_after_repair() {
        let cons = consolidator(1);
        let apps = fleet(&[1.5], WEEK);
        let placement = normal_placement(&cons, &apps);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 4,
            duration: 4,
        }])
        .unwrap();
        let report = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_degradation(DegradationPolicy {
                carry_over: true,
                deadline_slots: Some(100),
            }),
            ObsCtx::none(),
        )
        .unwrap();
        let recovery = report.windows[0].recovery_slots.expect("must recover");
        assert!(recovery > 0, "backlog must take time to drain");
        // Deferred outage demand is eventually served late, not shed.
        assert!(report.shed_total.abs() < 1e-9);
        assert!(report.served_late_total > 0.0);
        let a = &report.apps[0];
        assert!((a.served_total() - a.demand_total).abs() < 1e-6);
    }

    #[test]
    fn deadline_zero_disables_carry_over() {
        let cons = consolidator(1);
        let apps = fleet(&[1.5], WEEK);
        let placement = normal_placement(&cons, &apps);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 4,
            duration: 4,
        }])
        .unwrap();
        let report = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_degradation(DegradationPolicy {
                carry_over: true,
                deadline_slots: Some(0),
            }),
            ObsCtx::none(),
        )
        .unwrap();
        assert!(!report.carry_over);
        assert!((report.shed_total - 6.0).abs() < 1e-6);
    }

    #[test]
    fn default_deadline_comes_from_commitments() {
        let cons = consolidator(1);
        let apps = fleet(&[1.0], WEEK);
        let placement = normal_placement(&cons, &apps);
        let report = replay(
            &cons,
            &placement,
            &apps,
            &FailureSchedule::none(),
            &ReplayOptions::default(),
            ObsCtx::none(),
        )
        .unwrap();
        // 60-minute deadline on a 5-minute calendar.
        assert_eq!(report.deadline_slots, 12);
        assert!(report.carry_over);
    }

    #[test]
    fn displaced_apps_migrate_and_return() {
        let cons = consolidator(1);
        // Two servers' worth of load.
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2], WEEK);
        let placement = normal_placement(&cons, &apps);
        assert!(placement.servers_used >= 2, "fixture must span servers");
        let failed = placement.servers[0].server;
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: failed,
            start: 8,
            duration: 16,
        }])
        .unwrap();
        let report = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default(),
            ObsCtx::none(),
        )
        .unwrap();
        let displaced = report.windows[0].displaced;
        assert!(displaced > 0);
        // Each displaced app moves out and back home.
        assert_eq!(report.migrations_total, 2 * displaced);
        assert_eq!(report.windows[0].migrations, report.migrations_total);
        for a in &report.apps {
            assert!(a.migrations == 0 || a.migrations == 2);
        }
    }

    #[test]
    fn replay_is_deterministic_across_threads() {
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2, 1.9], WEEK);
        let schedule = FailureSchedule::stochastic(
            &crate::schedule::StochasticProfile {
                seed: 5,
                mtbf_slots: 30,
                mttr_slots: 6,
            },
            2,
            WEEK,
        )
        .unwrap();
        let run = |threads: usize| {
            let cons = consolidator(threads);
            let placement = normal_placement(&consolidator(1), &apps);
            replay(
                &cons,
                &placement,
                &apps,
                &schedule,
                &ReplayOptions::default(),
                ObsCtx::none(),
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn teleport_migration_reproduces_legacy_replay_byte_for_byte() {
        let cons = consolidator(1);
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2], WEEK);
        let placement = normal_placement(&cons, &apps);
        let failed = placement.servers[0].server;
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: failed,
            start: 8,
            duration: 16,
        }])
        .unwrap();
        let legacy = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default(),
            ObsCtx::none(),
        )
        .unwrap();
        let mut machine = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_migration(MigrationConfig::teleport()),
            ObsCtx::none(),
        )
        .unwrap();
        let report = machine.migration.take().expect("machine report attached");
        assert!(report.committed > 0);
        assert_eq!(report.rolled_back, 0);
        assert_eq!(report.deferred_slots, 0);
        // Modulo the attached migration report, the zero-cost machine is
        // the teleport replay, byte for byte.
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            serde_json::to_string(&machine).unwrap()
        );
    }

    #[test]
    fn paced_migration_walks_phases_and_lands_in_band() {
        let cons = consolidator(1);
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2], WEEK);
        let placement = normal_placement(&cons, &apps);
        let failed = placement.servers[0].server;
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: failed,
            start: 8,
            duration: 30,
        }])
        .unwrap();
        let report = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_migration(MigrationConfig::paced()),
            ObsCtx::none(),
        )
        .unwrap();
        let migration = report.migration.as_ref().expect("paced report attached");
        assert!(migration.committed > 0);
        // Paced moves take real slots: nothing commits in the planning
        // slot, and transfers double-book live sources along the way.
        assert!(migration.first_commit_slot.unwrap() > 8);
        assert!(migration.double_booked_slots > 0);
        for mov in &migration.moves {
            assert!(!mov.timeline.is_empty());
        }
        // Report-level migration totals come from committed cutovers.
        let per_app: usize = report.apps.iter().map(|a| a.migrations).sum();
        assert_eq!(per_app, report.migrations_total);
        assert_eq!(migration.committed, report.migrations_total);
    }

    #[test]
    fn storm_cap_defers_moves_in_replay() {
        let cons = consolidator(1);
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2, 1.9, 2.1], WEEK);
        let placement = normal_placement(&cons, &apps);
        assert!(placement.servers_used >= 2, "fixture must span servers");
        let failed = placement.servers[0].server;
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: failed,
            start: 8,
            duration: 40,
        }])
        .unwrap();
        let run = |config: MigrationConfig| {
            replay(
                &cons,
                &placement,
                &apps,
                &schedule,
                &ReplayOptions::default().with_migration(config),
                ObsCtx::none(),
            )
            .unwrap()
            .migration
            .unwrap()
        };
        let unlimited = run(MigrationConfig::paced());
        let capped = run(MigrationConfig::paced().with_max_in_flight(1));
        assert!(capped.peak_in_flight <= 1);
        assert!(capped.committed > 0);
        if unlimited.peak_in_flight > 1 {
            assert!(capped.deferred_slots > 0);
        }
    }

    #[test]
    fn observed_blackout_counts_infeasible_segments_and_window_events() {
        let cons = consolidator(1);
        let apps = fleet(&[1.5], WEEK);
        let placement = normal_placement(&cons, &apps);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 4,
            duration: 4,
        }])
        .unwrap();
        let obs = ropus_obs::Obs::deterministic();
        let report = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_degradation(DegradationPolicy::shed_immediately()),
            ObsCtx::from(&obs),
        )
        .unwrap();
        assert!(report.obs.is_none(), "replay itself never attaches obs");
        let snapshot = obs.report();
        // The blackout segment has no survivors: its re-placement is the
        // silent best-effort fallback, now surfaced as a counter.
        assert_eq!(snapshot.counter("chaos.replay.infeasible_segments"), 1);
        // All four outage slots shed the whole demand.
        assert_eq!(snapshot.counter("chaos.replay.shed_slots"), 4);
        assert_eq!(snapshot.counter("chaos.replay.carried_slots"), 0);
        assert_eq!(snapshot.events_named("chaos.segment.replan").count(), 1);
        let recovery: Vec<_> = snapshot.events_named("chaos.window.recovery").collect();
        assert_eq!(recovery.len(), 1);
        assert!(recovery[0]
            .attrs
            .iter()
            .any(|a| a.key == "feasible" && a.value == "false"));
        // NullClock suppresses durations on the replay spans.
        assert_eq!(snapshot.spans_named("chaos.replay.slots").count(), 1);
        assert!(snapshot.spans.iter().all(|s| s.wall_ms == 0.0));
    }

    #[test]
    fn scope_all_relaxes_every_app() {
        let cons = consolidator(1);
        let apps = fleet(&[2.6, 2.4, 2.8, 2.2], WEEK);
        let placement = normal_placement(&cons, &apps);
        let schedule = FailureSchedule::scripted(vec![FailureEvent {
            server: placement.servers[0].server,
            start: 8,
            duration: 16,
        }])
        .unwrap();
        let all = replay(
            &cons,
            &placement,
            &apps,
            &schedule,
            &ReplayOptions::default().with_scope(FailureScope::AllApplications),
            ObsCtx::none(),
        )
        .unwrap();
        assert_eq!(all.scope, FailureScope::AllApplications);
        // Under AllApplications every app has degraded-window samples.
        for a in &all.apps {
            assert!(a.degraded_audit.is_some(), "{} must be degraded", a.name);
        }
    }
}
