//! Deterministic fault injection for R-Opus resource pools.
//!
//! The static planner (§VII of the paper) answers "would the pool still
//! satisfy failure-mode QoS if server *k* died?" by re-consolidating
//! workload *envelopes* onto the survivors. This crate answers the
//! complementary dynamic question: it **replays** the raw demand traces
//! over an explicit failure/repair timeline and measures what the fleet
//! actually experiences — per-application compliance against the
//! `(U_low, U_high)` band and the `(M_degr, U_degr, T_degr)` degraded
//! contract, time-to-recover, migrations triggered, and demand shed or
//! carried over.
//!
//! The pipeline is:
//!
//! 1. [`FailureSchedule`] — a validated outage
//!    timeline, scripted or drawn from a seeded MTBF/MTTR profile.
//! 2. [`replay`](replay::replay) — splits the horizon into segments of
//!    constant failed-server sets, re-places displaced applications onto
//!    survivors via the consolidator, then walks the demand traces slot
//!    by slot emulating each server's two-priority scheduler with a
//!    configurable graceful-degradation policy.
//! 3. [`ChaosReport`] — a pure value; the same
//!    inputs always serialize to byte-identical JSON, regardless of
//!    thread count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod error;
pub mod replay;
pub mod report;
pub mod schedule;

pub use error::ChaosError;
pub use replay::{replay, ChaosApp, DegradationPolicy, ReplayOptions};
pub use report::{AppChaosOutcome, ChaosReport, DegradedWindow};
pub use schedule::{FailureEvent, FailureSchedule, Segment, StochasticProfile};
