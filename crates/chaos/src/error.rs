//! Typed errors for the fault-injection subsystem.

use std::fmt;

use ropus_placement::PlacementError;
use ropus_trace::TraceError;
use ropus_wlm::WlmError;

/// Error raised while building a failure schedule or replaying it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChaosError {
    /// No applications were supplied to the replay.
    NoApplications,
    /// A failure event had a zero-slot duration.
    ZeroDuration {
        /// The event's server.
        server: usize,
        /// The event's start slot.
        start: usize,
    },
    /// Two failure events of the same server overlap in time.
    OverlappingEvents {
        /// The server with overlapping outages.
        server: usize,
        /// The slot at which the second outage starts while the first is
        /// still open.
        slot: usize,
    },
    /// A failure event names a server outside the normal-mode pool.
    UnknownServer {
        /// The event's server index.
        server: usize,
        /// Servers used by the normal-mode placement.
        pool: usize,
    },
    /// A stochastic profile parameter was not a usable rate.
    InvalidProfile {
        /// What was wrong.
        message: String,
    },
    /// The placement layer failed while re-placing survivors.
    Placement(PlacementError),
    /// The workload-manager layer rejected the replay configuration.
    Wlm(WlmError),
    /// A demand trace was invalid or misaligned.
    Trace(TraceError),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::NoApplications => write!(f, "no applications supplied"),
            ChaosError::ZeroDuration { server, start } => {
                write!(
                    f,
                    "failure of server {server} at slot {start} has zero duration"
                )
            }
            ChaosError::OverlappingEvents { server, slot } => write!(
                f,
                "server {server} fails again at slot {slot} while already failed"
            ),
            ChaosError::UnknownServer { server, pool } => write!(
                f,
                "failure event names server {server}, but the placement uses {pool} servers"
            ),
            ChaosError::InvalidProfile { message } => {
                write!(f, "invalid stochastic profile: {message}")
            }
            ChaosError::Placement(e) => write!(f, "placement error: {e}"),
            ChaosError::Wlm(e) => write!(f, "wlm error: {e}"),
            ChaosError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::Placement(e) => Some(e),
            ChaosError::Wlm(e) => Some(e),
            ChaosError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlacementError> for ChaosError {
    fn from(err: PlacementError) -> Self {
        ChaosError::Placement(err)
    }
}

impl From<WlmError> for ChaosError {
    fn from(err: WlmError) -> Self {
        ChaosError::Wlm(err)
    }
}

impl From<TraceError> for ChaosError {
    fn from(err: TraceError) -> Self {
        ChaosError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let p: ChaosError = PlacementError::NoWorkloads.into();
        assert!(std::error::Error::source(&p).is_some());
        let w: ChaosError = WlmError::InvalidCapacity { capacity: 0.0 }.into();
        assert!(std::error::Error::source(&w).is_some());
        let t: ChaosError = TraceError::Empty.into();
        assert!(std::error::Error::source(&t).is_some());
        assert!(std::error::Error::source(&ChaosError::NoApplications).is_none());
        assert!(!ChaosError::NoApplications.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ChaosError>();
    }
}
