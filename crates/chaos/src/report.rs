//! Performability metrics of a chaos replay.
//!
//! A [`ChaosReport`] is a pure value: every field is a deterministic
//! function of the demand traces, the placement, the schedule, and the
//! replay options, so serializing the same replay twice yields
//! byte-identical JSON.

use serde::{Deserialize, Serialize};

use ropus_obs::SloSummary;
use ropus_placement::failure::FailureScope;
use ropus_placement::migration::MigrationReport;
use ropus_wlm::metrics::SloAudit;

/// Per-application performability outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppChaosOutcome {
    /// Application name.
    pub name: String,
    /// Server hosting the application in normal mode.
    pub home_server: usize,
    /// Total demand over the replay (CPU × slots).
    pub demand_total: f64,
    /// Demand served in its own slot.
    pub served_on_time: f64,
    /// Deferred demand served late, within the carry-over deadline.
    pub served_late: f64,
    /// Demand shed: dropped immediately (no carry-over) or expired past
    /// the deadline.
    pub shed: f64,
    /// Deferred demand still outstanding when the replay ended.
    pub backlog_remaining: f64,
    /// `1 − served/demand` (0 for an idle application).
    pub unserved_fraction: f64,
    /// Times the application changed servers across the replay.
    pub migrations: usize,
    /// Audit of the normal-operation slots against the normal-mode QoS
    /// (`None` when the whole replay was degraded).
    pub normal_audit: Option<SloAudit>,
    /// Audit of the degraded-window slots against the failure-mode QoS
    /// (`None` when no window degraded this application).
    pub degraded_audit: Option<SloAudit>,
}

impl AppChaosOutcome {
    /// Demand served, on time or late.
    pub fn served_total(&self) -> f64 {
        self.served_on_time + self.served_late
    }

    /// Whether the degraded windows stayed inside the failure-mode QoS
    /// contract (vacuously true when never degraded).
    pub fn degraded_compliant(&self) -> bool {
        self.degraded_audit
            .as_ref()
            .is_none_or(SloAudit::is_compliant)
    }

    /// Whether both operation modes met their contracts.
    pub fn is_compliant(&self) -> bool {
        self.normal_audit
            .as_ref()
            .is_none_or(SloAudit::is_compliant)
            && self.degraded_compliant()
    }
}

/// One maximal run of slots during which at least one server was down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedWindow {
    /// First degraded slot.
    pub start: usize,
    /// One past the last degraded slot.
    pub end: usize,
    /// Every server down at some point during the window, sorted.
    pub failed: Vec<usize>,
    /// Whether every re-placement inside the window was found by the
    /// consolidator (false = best-effort packing had to take over).
    pub feasible: bool,
    /// Applications displaced from a failed server at some point.
    pub displaced: usize,
    /// Application-server moves triggered by this window, including the
    /// moves back home at repair time.
    pub migrations: usize,
    /// Demand shed during the window.
    pub shed: f64,
    /// Slots after repair until all carried-over demand drained
    /// (`Some(0)` when nothing was outstanding, `None` when the backlog
    /// never drained before the replay ended).
    pub recovery_slots: Option<usize>,
}

/// The full output of a chaos replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Slots replayed.
    pub slots: usize,
    /// Slot length in minutes.
    pub slot_minutes: u32,
    /// Which applications relaxed to failure-mode QoS during outages.
    pub scope: FailureScope,
    /// Whether unserved demand was deferred rather than dropped.
    pub carry_over: bool,
    /// Deadline (slots) deferred demand may wait before it is shed.
    pub deadline_slots: usize,
    /// Slots during which at least one server was down.
    pub degraded_slots: usize,
    /// Slots in which some allocation request had to be cut on some
    /// server.
    pub contended_slots: usize,
    /// Application-server moves across the whole replay.
    pub migrations_total: usize,
    /// Fleet-wide demand total.
    pub demand_total: f64,
    /// Fleet-wide demand served (on time or late).
    pub served_total: f64,
    /// Fleet-wide demand served late.
    pub served_late_total: f64,
    /// Fleet-wide demand shed.
    pub shed_total: f64,
    /// Per-application outcomes, in fleet order.
    pub apps: Vec<AppChaosOutcome>,
    /// Degraded windows, in time order.
    pub windows: Vec<DegradedWindow>,
    /// Per-move timelines and fleet recovery metrics from the migration
    /// state machine. `None` (and omitted from JSON) when the replay ran
    /// with instantaneous teleport re-placement, so legacy reports
    /// serialize exactly as before.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub migration: Option<MigrationReport>,
    /// Streaming SLO attainment against each app's normal contract, with
    /// the multi-window burn-rate alert log ([`ropus_obs::slo`]). `None`
    /// (and omitted from JSON) only in reports deserialized from older
    /// replays; [`crate::replay::replay`] always attaches one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slo: Option<SloSummary>,
    /// Observability snapshot captured during the replay. `None` (and
    /// omitted from JSON) unless the caller attached one, so reports
    /// produced without instrumentation serialize exactly as before.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub obs: Option<ropus_obs::ObsReport>,
}

impl ChaosReport {
    /// Whether every application met the failure-mode QoS contract during
    /// every degraded window.
    pub fn all_degraded_compliant(&self) -> bool {
        self.apps.iter().all(AppChaosOutcome::degraded_compliant)
    }

    /// Whether every application met its contract in both modes.
    pub fn all_compliant(&self) -> bool {
        self.apps.iter().all(AppChaosOutcome::is_compliant)
    }

    /// Names of applications that violated the failure-mode contract
    /// during a degraded window.
    pub fn degraded_violators(&self) -> Vec<&str> {
        self.apps
            .iter()
            .filter(|a| !a.degraded_compliant())
            .map(|a| a.name.as_str())
            .collect()
    }

    /// Fraction of fleet demand that was shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.demand_total > 0.0 {
            self.shed_total / self.demand_total
        } else {
            0.0
        }
    }

    /// The longest time-to-recover across windows, in slots (`None` when
    /// some window never recovered).
    pub fn worst_recovery_slots(&self) -> Option<usize> {
        let mut worst = 0usize;
        for w in &self.windows {
            match w.recovery_slots {
                Some(r) => worst = worst.max(r),
                None => return None,
            }
        }
        Some(worst)
    }
}
